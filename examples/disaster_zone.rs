//! Disaster-zone deployment: an irregular field with collapsed
//! structures and debris — the kind of environment the paper's
//! introduction motivates (where manual sensor placement is unsafe).
//!
//! Compares CPVF and FLOOR on the same scenario. CPVF struggles to
//! push sensors through the narrow corridors between debris; FLOOR's
//! boundary-guided expansion crawls around them.
//!
//! ```text
//! cargo run --release --example disaster_zone
//! ```

use msn_deploy::{cpvf, floor};
use msn_field::{
    ascii_layout, disaster_zone_field, free_space_connected, scatter_clustered, AsciiOptions,
};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Two collapsed buildings, a debris pile and a flooded area — the
    // same layout `scenarios/disaster-zone.toml` drives declaratively.
    let field = disaster_zone_field();
    assert!(
        free_space_connected(&field, 10.0),
        "the debris must not seal off any region"
    );

    // Rescue teams drop 120 sensors near the command post at the
    // south-west corner.
    let mut rng = SmallRng::seed_from_u64(3);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 300.0, 300.0), 120, &mut rng);
    let cfg = SimConfig::paper(55.0, 38.0)
        .with_duration(600.0)
        .with_coverage_cell(4.0);

    println!("disaster zone: {field}\n");
    for (name, result) in [
        (
            "CPVF",
            cpvf::run(&field, &initial, &cpvf::CpvfParams::default(), &cfg),
        ),
        (
            "FLOOR",
            floor::run(&field, &initial, &floor::FloorParams::default(), &cfg),
        ),
    ] {
        println!(
            "{name}: coverage {:.1}%, avg move {:.0} m, connected: {}",
            result.coverage * 100.0,
            result.avg_move,
            result.connected
        );
        println!(
            "{}",
            ascii_layout(&field, &result.positions, cfg.rs, &AsciiOptions::default())
        );
        println!();
    }
}
