//! Quickstart: deploy a small mobile sensor network with FLOOR and
//! print the resulting layout.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use msn_deploy::floor::{run, FloorParams};
use msn_field::{ascii_layout, scatter_clustered, AsciiOptions, Field};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A 400 m x 400 m obstacle-free field with the base station at the
    // origin.
    let field = Field::open(400.0, 400.0);

    // 60 sensors dropped in the lower-left corner.
    let mut rng = SmallRng::seed_from_u64(7);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 150.0, 150.0), 60, &mut rng);

    // Communication range 50 m, sensing range 35 m, 5 simulated
    // minutes.
    let cfg = SimConfig::paper(50.0, 35.0)
        .with_duration(300.0)
        .with_coverage_cell(4.0);

    let result = run(&field, &initial, &FloorParams::default(), &cfg);

    println!("scheme:            {}", result.scheme);
    println!("coverage:          {:.1}%", result.coverage * 100.0);
    println!("connected to base: {}", result.connected);
    println!("avg moving dist:   {:.1} m", result.avg_move);
    println!("messages sent:     {}", result.messages.total());
    if let Some(t) = result.convergence_time {
        println!("95% convergence:   {t:.0} s");
    }
    println!();
    println!(
        "{}",
        ascii_layout(&field, &result.positions, cfg.rs, &AsciiOptions::default())
    );
}
