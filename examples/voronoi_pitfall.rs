//! Reproduces the paper's Figure 1: the impact of communication range
//! on Voronoi cell construction.
//!
//! A sensor can only build its Voronoi cell from the neighbors it
//! hears. With a large `rc` the cell is exact; shrink `rc` and the
//! restricted cell balloons — VOR/Minimax then chase phantom coverage
//! holes (the root cause of their Figure 10 collapse).
//!
//! ```text
//! cargo run --release --example voronoi_pitfall
//! ```

use msn_field::{scatter_uniform, Field};
use msn_geom::Rect;
use msn_metrics::Table;
use msn_net::DiskGraph;
use msn_voronoi::{cells_match, restricted_cell, VoronoiDiagram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let field = Field::open(1000.0, 1000.0);
    let bounds: Rect = field.bounds();
    let mut rng = SmallRng::seed_from_u64(5);
    let sites = scatter_uniform(&field, 120, &mut rng);
    let full = VoronoiDiagram::compute(&sites, bounds);

    println!("120 sensors uniformly deployed; rs = 60 m\n");
    let mut table = Table::new(vec![
        "rc/rs",
        "rc (m)",
        "correct cells",
        "avg cell inflation",
    ]);
    for ratio in [0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0] {
        let rc = 60.0 * ratio;
        let graph = DiskGraph::build(&sites, rc);
        let mut correct = 0usize;
        let mut inflation = 0.0;
        for i in 0..sites.len() {
            let restricted = restricted_cell(i, &sites, graph.neighbors(i), bounds);
            if cells_match(&restricted, full.cell(i), 1e-3) {
                correct += 1;
            }
            let true_area = full.cell(i).area().max(1.0);
            inflation += restricted.area() / true_area;
        }
        table.row(vec![
            format!("{ratio:.1}"),
            format!("{rc:.0}"),
            format!("{correct}/{}", sites.len()),
            format!("{:.2}x", inflation / sites.len() as f64),
        ]);
    }
    println!("{table}");
    println!(
        "\nBelow rc/rs ≈ 3 many sensors compute wrong cells (the paper's\n\
         'Incorrect VD' regime); the average restricted cell can be\n\
         several times the true cell, sending sensors to phantom holes."
    );
}
