//! Driving the scenario engine from code: declare an experiment as a
//! [`ScenarioSpec`], execute its matrix in parallel with the
//! [`BatchRunner`], and consume the aggregated result — the same path
//! `scenario run <spec.toml>` takes, minus the TOML file.
//!
//! ```text
//! cargo run --release --example scenario_batch
//! ```

use msn_deploy::SchemeKind;
use msn_field::CorridorParams;
use msn_scenario::{BatchRunner, FieldSpec, ScatterSpec, ScenarioSpec};

fn main() {
    // A corridor shootout at reduced scale so the example runs in
    // seconds; bump duration/counts for paper-scale numbers.
    let spec = ScenarioSpec::new("corridor-shootout")
        .with_description("CPVF vs FLOOR in a serpentine corridor, 3 seeds per cell")
        .with_field(FieldSpec::Corridor(CorridorParams::default()))
        .with_scatter(ScatterSpec::Clustered {
            x0: 0.0,
            y0: 0.0,
            x1: 200.0,
            y1: 600.0,
        })
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![60, 100])
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(150.0)
        .with_coverage_cell(10.0)
        .with_repetitions(3)
        .with_seed(5);

    println!(
        "running {} simulations on {} threads...\n",
        spec.matrix().len(),
        rayon::current_num_threads()
    );
    let result = BatchRunner::new().run(&spec).expect("spec is valid");
    println!("{}", result.report());

    // The same spec as TOML — paste into scenarios/ to rerun via the CLI.
    println!("--- equivalent TOML spec ---\n{}", spec.to_toml_string());
}
