//! Campus monitoring: a metropolitan block grid (the paper's "urban
//! region with buildings") where FLOOR must thread sensors through the
//! street canyons, and the operator wants to tune the invitation TTL
//! for message budget vs. deployment speed.
//!
//! ```text
//! cargo run --release --example campus_grid
//! ```

use msn_deploy::floor::{run, FloorParams};
use msn_field::{campus_grid_field, scatter_clustered, CampusGridParams};
use msn_geom::Rect;
use msn_metrics::Table;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // A 3x3 grid of buildings with 80 m streets between them — the
    // same layout `scenarios/campus-grid.toml` drives declaratively.
    let field = campus_grid_field(&CampusGridParams::default());
    let mut rng = SmallRng::seed_from_u64(11);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 130.0, 130.0), 100, &mut rng);
    let cfg = SimConfig::paper(55.0, 35.0)
        .with_duration(500.0)
        .with_coverage_cell(4.0);

    println!("campus with {} buildings\n", field.obstacles().len());
    println!("Tuning the invitation TTL (fraction of N = 100 sensors):\n");
    let mut table = Table::new(vec![
        "TTL",
        "coverage",
        "messages (x1000)",
        "msgs/node/s",
        "avg move (m)",
    ]);
    for ttl in [5usize, 10, 20, 40] {
        let params = FloorParams {
            invitation_ttl: Some(ttl),
            ..FloorParams::default()
        };
        let r = run(&field, &initial, &params, &cfg);
        let per_node_per_s = r.messages.total() as f64 / 100.0 / cfg.duration;
        table.row(vec![
            ttl.to_string(),
            format!("{:.1}%", r.coverage * 100.0),
            format!("{:.0}", r.messages.total() as f64 / 1000.0),
            format!("{per_node_per_s:.1}"),
            format!("{:.0}", r.avg_move),
        ]);
    }
    println!("{table}");
    println!(
        "\nShort TTLs starve distant frontier tips of recruits; long TTLs\n\
         pay linearly more messages for the same walks (Table 1's trend)."
    );
}
