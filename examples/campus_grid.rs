//! Campus monitoring: a metropolitan block grid (the paper's "urban
//! region with buildings") where FLOOR must thread sensors through the
//! street canyons, and the operator wants to tune the invitation TTL
//! for message budget vs. deployment speed.
//!
//! The sweep itself is the bundled `scenarios/campus-ttl-sweep.toml`
//! spec — the TTL settings are parameter variants, so every TTL faces
//! the identical drop — and this example just runs it through the
//! scenario engine and reads off the trade-off:
//!
//! ```text
//! cargo run --release --example campus_grid
//! # equivalently:
//! cargo run --release -p msn-scenario -- run scenarios/campus-ttl-sweep.toml
//! ```

use msn_metrics::Table;
use msn_scenario::{BatchRunner, ScenarioSpec};

fn main() {
    let text = std::fs::read_to_string("scenarios/campus-ttl-sweep.toml")
        .expect("run from the repository root so scenarios/ is visible");
    let spec = ScenarioSpec::from_toml_str(&text).expect("bundled spec parses");
    let n = spec.sensor_counts[0] as f64;
    let duration = spec.duration;

    println!("campus TTL sweep: {} runs\n", spec.matrix().len());
    println!("Tuning the invitation TTL (N = {n} sensors):\n");
    let result = BatchRunner::new()
        .run(&spec)
        .expect("bundled spec is valid");
    let mut table = Table::new(vec![
        "TTL",
        "coverage",
        "messages (x1000)",
        "msgs/node/s",
        "avg move (m)",
    ]);
    for cell in result.cell_stats() {
        let msgs = cell.messages.mean();
        table.row(vec![
            cell.variant_label
                .strip_prefix("ttl-")
                .unwrap_or(&cell.variant_label)
                .to_string(),
            format!("{:.1}%", cell.coverage.mean() * 100.0),
            format!("{:.0}", msgs / 1000.0),
            format!("{:.1}", msgs / n / duration),
            format!("{:.0}", cell.avg_move.mean()),
        ]);
    }
    println!("{table}");
    println!(
        "\nShort TTLs starve distant frontier tips of recruits; long TTLs\n\
         pay linearly more messages for the same walks (Table 1's trend)."
    );
}
