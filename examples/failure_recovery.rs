//! Failure recovery (the paper's §7 future work): after a FLOOR
//! deployment converges, a fraction of the deployed sensors dies.
//! Because FLOOR's machinery is restartable — classification and
//! expansion only need the surviving positions — running the scheme
//! again over the survivors heals the holes with the remaining
//! redundancy.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use msn_deploy::floor::{run, FloorParams};
use msn_field::{scatter_clustered, CoverageGrid, Field};
use msn_geom::Rect;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let field = Field::open(500.0, 500.0);
    let mut rng = SmallRng::seed_from_u64(21);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 200.0, 200.0), 100, &mut rng);
    let cfg = SimConfig::paper(50.0, 35.0)
        .with_duration(400.0)
        .with_coverage_cell(4.0);
    let grid = CoverageGrid::new(&field, 4.0);

    // Initial deployment.
    let deployed = run(&field, &initial, &FloorParams::default(), &cfg);
    println!(
        "deployed: coverage {:.1}%, connected: {}",
        deployed.coverage * 100.0,
        deployed.connected
    );

    // 25% of the sensors fail at random.
    let mut survivors = deployed.positions.clone();
    survivors.shuffle(&mut rng);
    survivors.truncate(75);
    let after_failure = grid.coverage(&survivors, cfg.rs);
    println!("after 25% failures: coverage {:.1}%", after_failure * 100.0);

    // Recovery: rerun FLOOR from the surviving layout. Phase 1 is a
    // no-op for already-connected sensors; classification frees the
    // redundant ones and expansion re-fills the holes.
    let recovery_cfg = cfg.clone().with_duration(300.0);
    let healed = run(&field, &survivors, &FloorParams::default(), &recovery_cfg);
    println!(
        "after recovery: coverage {:.1}%, connected: {} (moved {:.0} m per survivor)",
        healed.coverage * 100.0,
        healed.connected,
        healed.avg_move
    );
    assert!(
        healed.coverage >= after_failure - 0.02,
        "recovery must not lose coverage"
    );
}
