//! Failure recovery (the paper's §7 future work), now first-class:
//! the dynamics engine schedules a 25 % die-off mid-run, restarts
//! FLOOR over the survivors — classification and expansion only need
//! the surviving positions, so the remaining redundancy heals the
//! holes — and the recovery metrics quantify the dip. The same
//! workload ships as `scenarios/failure-recovery.toml` with a
//! committed golden fixture; this example is the single-run,
//! narrated form.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use msn_deploy::{run_scheme_dynamic, SchemeKind, SchemeOverrides};
use msn_field::{scatter_clustered, Field};
use msn_geom::Rect;
use msn_metrics::{recovery_stats, EventMark};
use msn_sim::{DynEvent, EventAction, EventSchedule, FailCount, FailMode, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let field = Field::open(500.0, 500.0);
    let mut rng = SmallRng::seed_from_u64(21);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 200.0, 200.0), 100, &mut rng);
    let cfg = SimConfig::paper(50.0, 35.0)
        .with_duration(700.0)
        .with_coverage_cell(4.0);

    // 25% of the fleet dies at t=400, after the deployment converges;
    // the engine parks the victims and restarts FLOOR over the
    // survivors from a seeded event stream.
    let schedule = EventSchedule::new(vec![DynEvent {
        time: 400.0,
        action: EventAction::Fail {
            count: FailCount::Frac(0.25),
            mode: FailMode::Random,
        },
    }]);
    let outcome = run_scheme_dynamic(
        SchemeKind::Floor,
        &field,
        &initial,
        &cfg,
        &SchemeOverrides::default(),
        None,
        &schedule,
        21,
    );

    let event = &outcome.events[0];
    println!(
        "deployed: coverage {:.1}% before the event",
        event.pre_coverage * 100.0
    );
    println!(
        "after 25% failures: coverage {:.1}%",
        event.post_coverage * 100.0
    );

    let marks: Vec<EventMark> = outcome
        .events
        .iter()
        .map(|e| EventMark {
            time: e.time,
            kind: e.kind.clone(),
            pre_coverage: e.pre_coverage,
            post_coverage: e.post_coverage,
            post_move_dist: e.post_move_dist,
        })
        .collect();
    let stats = recovery_stats(
        &outcome.result.coverage_timeline,
        &marks,
        schedule.recovery_frac,
    );
    let stat = &stats[0];
    match stat.recovery_time {
        Some(t) => println!(
            "recovered to {:.0}% of pre-event coverage in {:.0} s (dip floor {:.1}%)",
            schedule.recovery_frac * 100.0,
            t,
            stat.min_coverage * 100.0
        ),
        None => println!(
            "not recovered by the horizon (dip floor {:.1}%)",
            stat.min_coverage * 100.0
        ),
    }
    println!(
        "after recovery: coverage {:.1}%, connected: {} ({:.0} m moved after the event)",
        outcome.result.coverage * 100.0,
        outcome.result.connected,
        stat.post_move_dist
    );
    assert!(
        outcome.result.coverage >= event.post_coverage - 0.02,
        "recovery must not lose coverage"
    );
}
