//! Runs all five deployment schemes of the paper on one scenario and
//! prints a comparison table — the quickest way to see the trade-offs
//! of §6 end to end.
//!
//! ```text
//! cargo run --release --example scheme_shootout
//! ```

use msn_deploy::{run_scheme, SchemeKind};
use msn_field::{paper_field, scatter_clustered};
use msn_geom::Rect;
use msn_metrics::Table;
use msn_sim::SimConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let field = paper_field();
    let mut rng = SmallRng::seed_from_u64(42);
    let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 160, &mut rng);
    let cfg = SimConfig::paper(90.0, 60.0)
        .with_duration(750.0)
        .with_coverage_cell(4.0);

    println!(
        "160 sensors, rc = {} m, rs = {} m, clustered start, {}\n",
        cfg.rc, cfg.rs, field
    );
    let mut table = Table::new(vec![
        "scheme",
        "coverage",
        "avg move (m)",
        "connected",
        "messages",
        "flags",
    ]);
    for kind in [
        SchemeKind::Cpvf,
        SchemeKind::Floor,
        SchemeKind::Vor,
        SchemeKind::Minimax,
        SchemeKind::Opt,
    ] {
        let r = run_scheme(kind, &field, &initial, &cfg);
        table.row(vec![
            r.scheme.clone(),
            format!("{:.1}%", r.coverage * 100.0),
            format!("{:.0}", r.avg_move),
            r.connected.to_string(),
            r.messages.total().to_string(),
            r.flags.join("+"),
        ]);
    }
    println!("{table}");
    println!(
        "\nVOR/Minimax ignore connectivity (watch the flags); OPT is the\n\
         centralized upper bound; CPVF pays for oscillation; FLOOR\n\
         balances coverage against moving distance."
    );
}
