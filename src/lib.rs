//! Workspace façade crate.
//!
//! Exists so the repository-level `tests/` (cross-crate integration
//! tests) and `examples/` directories build as part of the workspace;
//! as a library it simply re-exports every member crate under one
//! roof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use msn_assign as assign;
pub use msn_bench as bench;
pub use msn_deploy as deploy;
pub use msn_field as field;
pub use msn_geom as geom;
pub use msn_metrics as metrics;
pub use msn_nav as nav;
pub use msn_net as net;
pub use msn_scenario as scenario;
pub use msn_sim as sim;
pub use msn_voronoi as voronoi;
