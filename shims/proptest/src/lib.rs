//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this
//! workspace-local crate implements the subset of proptest the
//! repository's property tests use: the [`Strategy`] trait with
//! `prop_map`, range and tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, the `prop_oneof!` weighted union,
//! [`ProptestConfig`] and the `proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!` macros.
//!
//! Differences from real proptest: cases are sampled from a
//! deterministic per-test generator (seeded from the test name), and
//! failing cases are reported but **not shrunk**.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic generator driving test-case sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically from the test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// `prop_assert*!` failed; the test fails with this message.
    Fail(String),
}

/// Test-runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; many tests here drive full
        // simulations per case, so keep the offline default moderate.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type (subset of proptest's trait;
/// sampling only, no shrinking).
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy drawing each value from one of several weighted
/// alternatives (built by the [`prop_oneof!`] macro).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `arms`; each `(weight, strategy)` arm is chosen
    /// with probability proportional to its weight.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut r = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            let w = *w as u64;
            if r < w {
                return s.sample(rng);
            }
            r -= w;
        }
        unreachable!("weighted draw exceeded total weight")
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy always producing clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, i64, i32, u8, u16);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Strategy combinators namespace (subset of proptest's `prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// A size specification for [`vec()`]: a fixed length or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy producing `Vec`s of values from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy producing uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Builds a [`Union`] strategy over weighted (`weight => strategy`) or
/// unweighted alternatives, mirroring proptest's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (re-drawn, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        $crate::prop_assume!($cond)
    };
}

/// Declares property tests (subset of proptest's macro: named
/// strategy arguments, optional `#![proptest_config(..)]`, no
/// shrinking on failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest '{}': too many rejected cases ({} passed of {} wanted)",
                        stringify!($name), passed, config.cases
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest '{}' failed at case {}: {}", stringify!($name), passed, msg)
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((x, y) in (0.0..10.0f64, 1usize..5), b in prop::bool::ANY) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((1..5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 100);
            }
        }

        #[test]
        fn fixed_len_and_map(v in prop::collection::vec((0.0..1.0f64).prop_map(|f| f * 2.0), 3)) {
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(v.len(), 4);
            for e in v {
                prop_assert!((0.0..2.0).contains(&e));
            }
        }

        #[test]
        fn assume_rejects(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn oneof_draws_only_from_arms(n in prop_oneof![3 => 0usize..10, 1 => 100usize..110]) {
            prop_assert!(n < 10 || (100..110).contains(&n));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let s = prop_oneof![9 => Just(0u8), 1 => Just(1u8)];
        let mut rng = crate::TestRng::deterministic("oneof_respects_weights");
        let ones: usize = (0..1000).filter(|_| s.sample(&mut rng) == 1).count();
        // ~10% expected; allow generous slack for the small sample.
        assert!((40..250).contains(&ones), "ones = {ones}");
    }
}
