//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's API the workspace uses —
//! `vec.into_par_iter().map(f).collect::<Vec<_>>()` and
//! slice `par_iter().map(f).collect()` — on top of `std::thread::scope`
//! with a shared work queue. Results are written back by input index,
//! so **collect order always equals input order**, regardless of the
//! number of worker threads: parallel output is byte-identical to
//! sequential output for deterministic work functions.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like rayon's default
//! pool) or `std::thread::available_parallelism`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::Mutex;

/// The worker-thread count: `RAYON_NUM_THREADS` if set and positive,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f` over `items` on `threads` workers, preserving input order
/// in the output.
fn run_indexed<I, O, F>(items: Vec<I>, f: &F, threads: usize) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let job = queue.lock().unwrap().pop_front();
                match job {
                    Some((i, item)) => {
                        let out = f(item);
                        *slots[i].lock().unwrap() = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every job")
        })
        .collect()
}

/// An order-preserving parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, O, F> {
        ParMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

/// A mapped parallel iterator, executed on `collect`.
#[derive(Debug)]
pub struct ParMap<I, O, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<I: Send, O: Send, F: Fn(I) -> O + Sync> ParMap<I, O, F> {
    /// Executes the map on the shared pool; output preserves input order.
    pub fn collect<C: FromParOutput<O>>(self) -> C {
        C::from_par_output(run_indexed(self.items, &self.f, current_num_threads()))
    }
}

/// Conversion from the ordered output vector of a parallel map.
pub trait FromParOutput<O> {
    /// Builds the collection from in-order outputs.
    fn from_par_output(v: Vec<O>) -> Self;
}

impl<O> FromParOutput<O> for Vec<O> {
    fn from_par_output(v: Vec<O>) -> Self {
        v
    }
}

/// Conversion into a parallel iterator (subset of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion (subset of rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// Common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let v: Vec<u64> = (0..257).collect();
        let seq = super::run_indexed(v.clone(), &|x| x + 1, 1);
        let par = super::run_indexed(v, &|x| x + 1, 8);
        assert_eq!(seq, par);
    }
}
