//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's API the workspace uses —
//! `vec.into_par_iter().map(f).collect::<Vec<_>>()`, slice
//! `par_iter().map(f).collect()` and the [`run_indexed`] seam the
//! scenario batch runner schedules on — on top of a **persistent
//! work-stealing pool**. Results are written back by input index, so
//! **collect order always equals input order**, regardless of the
//! number of worker threads: parallel output is byte-identical to
//! sequential output for deterministic work functions.
//!
//! # Pool architecture
//!
//! Worker threads are spawned once, on first parallel call, and kept
//! parked between batches (rayon's global-pool model; the old shim
//! spawned fresh scoped threads per batch, which at 10k-sensor batch
//! sizes spent measurable time in thread setup). A batch splits its
//! index range into chunks of roughly `n / (4 * participants)` items;
//! each participant seeds a private deque with a contiguous stripe of
//! chunks, pops its own work from the front and, when empty, steals
//! from the *back* of a victim's deque — the classic chunked-deque
//! discipline that keeps each thread on cache-adjacent items until
//! load imbalance actually materializes.
//!
//! The submitting thread is always participant 0 of its own batch and
//! drains it alongside the pool. That rule makes nested parallelism
//! deadlock-free by construction: a worker that submits an inner
//! batch while every other worker is busy simply executes the inner
//! batch itself.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like rayon's default
//! pool) or `std::thread::available_parallelism`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

/// The worker-thread count: `RAYON_NUM_THREADS` if set and positive,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

mod pool {
    //! The persistent work-stealing pool behind every parallel call.

    use std::any::Any;
    use std::collections::VecDeque;
    use std::ops::Range;
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// One submitted batch: an index-addressed job plus the stealing
    /// state its participants share.
    struct BatchState {
        /// The job, lifetime-erased for the 'static worker threads.
        /// See the SAFETY argument in [`run`]: it is never invoked
        /// after `pending` reaches zero, and [`run`] does not return
        /// before that.
        job: &'static (dyn Fn(usize) + Sync),
        /// One chunk deque per participant; owners pop from the
        /// front, thieves steal from the back.
        queues: Vec<Mutex<VecDeque<Range<usize>>>>,
        /// Worker participation slots still unclaimed (the submitter
        /// holds slot 0 implicitly).
        tickets: Mutex<usize>,
        /// Chunks not yet fully executed; the completion latch.
        pending: Mutex<usize>,
        /// Signalled when `pending` reaches zero.
        done: Condvar,
        /// First panic payload raised by any chunk, re-raised on the
        /// submitting thread.
        panic: Mutex<Option<Box<dyn Any + Send>>>,
    }

    impl BatchState {
        /// Claims the next free participant slot, if any remain.
        fn claim(&self) -> Option<usize> {
            let mut t = self.tickets.lock().unwrap();
            if *t == 0 {
                None
            } else {
                let slot = self.queues.len() - *t;
                *t -= 1;
                Some(slot)
            }
        }

        fn has_tickets(&self) -> bool {
            *self.tickets.lock().unwrap() > 0
        }
    }

    /// Pool state shared between the injector and the workers.
    struct PoolInner {
        /// Batches with unclaimed participation tickets.
        injector: Mutex<VecDeque<Arc<BatchState>>>,
        /// Signalled when a batch is submitted.
        work_ready: Condvar,
    }

    /// The process-wide pool, spawned on first use and kept for the
    /// process lifetime (workers park between batches).
    fn global() -> &'static Arc<PoolInner> {
        static POOL: OnceLock<Arc<PoolInner>> = OnceLock::new();
        POOL.get_or_init(|| {
            let inner = Arc::new(PoolInner {
                injector: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
            });
            for w in 0..crate::current_num_threads().max(1) {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("msn-par-{w}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn pool worker");
            }
            inner
        })
    }

    /// A pool worker: park until a batch has a free slot, drain it,
    /// repeat forever.
    fn worker_loop(inner: &PoolInner) {
        loop {
            let (batch, slot) = {
                let mut q = inner.injector.lock().unwrap();
                loop {
                    q.retain(|b| b.has_tickets());
                    let claimed = q
                        .iter()
                        .find_map(|b| b.claim().map(|slot| (Arc::clone(b), slot)));
                    match claimed {
                        Some(c) => break c,
                        None => q = inner.work_ready.wait(q).unwrap(),
                    }
                }
            };
            participate(&batch, slot);
        }
    }

    /// Drains `state` as participant `slot`: own deque first, then
    /// steal from the back of the other participants' deques.
    fn participate(state: &BatchState, slot: usize) {
        let p = state.queues.len();
        loop {
            let chunk = state.queues[slot].lock().unwrap().pop_front().or_else(|| {
                (1..p).find_map(|off| state.queues[(slot + off) % p].lock().unwrap().pop_back())
            });
            let Some(r) = chunk else { break };
            // A panicking chunk must still release the latch, or the
            // submitter would wait forever; the payload is re-raised
            // on the submitting thread instead.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in r {
                    (state.job)(i);
                }
            }));
            if let Err(payload) = outcome {
                let mut first = state.panic.lock().unwrap();
                if first.is_none() {
                    *first = Some(payload);
                }
            }
            let mut pending = state.pending.lock().unwrap();
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        }
    }

    /// Erases the job's lifetime so 'static workers can share it.
    ///
    /// SAFETY: callers must guarantee the returned reference is never
    /// used after the original borrow ends. [`run`] upholds this: it
    /// blocks until `pending == 0`, `pending` only reaches zero after
    /// the last chunk execution returns, and chunk execution is the
    /// only place the job is invoked — a worker finding every deque
    /// empty exits without touching the job again.
    #[allow(unsafe_code)]
    fn erase<'a>(job: &'a (dyn Fn(usize) + Sync)) -> &'static (dyn Fn(usize) + Sync) {
        unsafe {
            std::mem::transmute::<&'a (dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(job)
        }
    }

    /// Runs `job(i)` for every `i in 0..n` on up to `limit`
    /// participants (the calling thread plus pool workers), returning
    /// once every index has executed. `limit <= 1` runs inline.
    pub fn run(n: usize, limit: usize, job: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if limit <= 1 || n == 1 {
            for i in 0..n {
                job(i);
            }
            return;
        }
        let p = limit.min(n);
        let chunk = n.div_ceil(p * 4).max(1);
        let chunks: Vec<Range<usize>> = (0..n.div_ceil(chunk))
            .map(|c| c * chunk..((c + 1) * chunk).min(n))
            .collect();
        let m = chunks.len();
        let queues: Vec<Mutex<VecDeque<Range<usize>>>> = (0..p)
            .map(|k| Mutex::new(chunks[k * m / p..(k + 1) * m / p].iter().cloned().collect()))
            .collect();
        let state = Arc::new(BatchState {
            job: erase(job),
            queues,
            tickets: Mutex::new(p - 1),
            pending: Mutex::new(m),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        let pool = global();
        {
            let mut q = pool.injector.lock().unwrap();
            q.push_back(Arc::clone(&state));
            pool.work_ready.notify_all();
        }
        participate(&state, 0);
        let mut pending = state.pending.lock().unwrap();
        while *pending > 0 {
            pending = state.done.wait(pending).unwrap();
        }
        drop(pending);
        // Retire unclaimed tickets so the injector's next sweep drops
        // its reference to this (finished) batch.
        *state.tickets.lock().unwrap() = 0;
        let payload = state.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `f` over `items` on up to `threads` participants of the
/// shared pool (the calling thread included), preserving input order
/// in the output. This is the scheduling seam the scenario batch
/// runner and the `par_iter` adapters share; `threads <= 1` runs
/// fully sequential on the calling thread.
pub fn run_indexed<I, O, F>(items: Vec<I>, f: &F, threads: usize) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool::run(n, threads, &|i| {
        let item = inputs[i]
            .lock()
            .unwrap()
            .take()
            .expect("each index dispatched once");
        let out = f(item);
        *slots[i].lock().unwrap() = Some(out);
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker completed every job")
        })
        .collect()
}

/// An order-preserving parallel iterator over owned items.
#[derive(Debug)]
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Maps every item through `f` in parallel.
    pub fn map<O: Send, F: Fn(I) -> O + Sync>(self, f: F) -> ParMap<I, O, F> {
        ParMap {
            items: self.items,
            f,
            _out: std::marker::PhantomData,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        self.map(f).collect::<Vec<()>>();
    }
}

/// A mapped parallel iterator, executed on `collect`.
#[derive(Debug)]
pub struct ParMap<I, O, F> {
    items: Vec<I>,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<I: Send, O: Send, F: Fn(I) -> O + Sync> ParMap<I, O, F> {
    /// Executes the map on the shared pool; output preserves input order.
    pub fn collect<C: FromParOutput<O>>(self) -> C {
        C::from_par_output(run_indexed(self.items, &self.f, current_num_threads()))
    }
}

/// Conversion from the ordered output vector of a parallel map.
pub trait FromParOutput<O> {
    /// Builds the collection from in-order outputs.
    fn from_par_output(v: Vec<O>) -> Self;
}

impl<O> FromParOutput<O> for Vec<O> {
    fn from_par_output(v: Vec<O>) -> Self {
        v
    }
}

/// Conversion into a parallel iterator (subset of rayon's trait).
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Borrowing conversion (subset of rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type (a reference).
    type Item: Send;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// Common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let v: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = v.par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[99], 2);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let v: Vec<u64> = (0..257).collect();
        let seq = super::run_indexed(v.clone(), &|x| x + 1, 1);
        let par = super::run_indexed(v, &|x| x + 1, 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn pool_survives_many_batches() {
        // The persistent pool must serve back-to-back batches of
        // assorted sizes (including ones smaller than the chunk
        // granularity) without wedging or dropping indices.
        for round in 0..50u64 {
            let n = (round as usize % 7) * 13 + 1;
            let v: Vec<u64> = (0..n as u64).collect();
            let out: Vec<u64> = v.clone().into_par_iter().map(|x| x + round).collect();
            assert_eq!(out, v.iter().map(|x| x + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_parallelism_does_not_deadlock() {
        // Submitters participate in their own batches, so an inner
        // collect issued from a pool worker always makes progress
        // even when every other worker is busy with the outer batch.
        let outer: Vec<u64> = (0..32).collect();
        let sums: Vec<u64> = outer
            .into_par_iter()
            .map(|base| {
                let inner: Vec<u64> = (0..64).collect();
                let mapped: Vec<u64> = inner.into_par_iter().map(move |x| x + base).collect();
                mapped.iter().sum()
            })
            .collect();
        for (base, sum) in sums.iter().enumerate() {
            assert_eq!(*sum, (0..64).sum::<u64>() + 64 * base as u64);
        }
    }

    #[test]
    fn uneven_work_is_stolen_to_completion() {
        // Front-loaded heavy items force thieves onto the early
        // stripes; every index must still complete exactly once.
        let v: Vec<usize> = (0..400).collect();
        let out: Vec<u64> = v
            .into_par_iter()
            .map(|i| {
                let spins = if i < 8 { 20_000 } else { 10 };
                (0..spins).fold(i as u64, |a, _| a.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(out.len(), 400);
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let caught = std::panic::catch_unwind(|| {
            let v: Vec<u64> = (0..100).collect();
            let _: Vec<u64> = v
                .into_par_iter()
                .map(|x| {
                    assert!(x != 57, "boom at 57");
                    x
                })
                .collect();
        });
        assert!(caught.is_err(), "panic in a job must reach the caller");
    }
}
