//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough API for the workspace's bench targets to
//! compile and run without crates.io access: [`Criterion`] with
//! `bench_function`, a [`Bencher`] with `iter` / `iter_batched`,
//! [`BatchSize`] and the `criterion_group!` / `criterion_main!`
//! macros. Timing is a simple best-of-runs wall clock — adequate for
//! spotting order-of-magnitude regressions, without criterion's
//! statistics, warm-up tuning or HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Runs one benchmark body repeatedly and tracks elapsed time.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this measurement's iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// One completed measurement of [`Criterion::bench_function`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations of the measured pass.
    pub iters: u64,
}

/// Benchmark driver (subset of criterion's). Unlike the real crate it
/// also exposes the collected measurements
/// ([`Criterion::results`]), so harnesses can export machine-readable
/// perf records (`BENCH_*.json`).
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Measures `f`, printing and recording a per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Calibration pass, then a measured pass sized to ~0.2 s.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(200).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000);
        let mut b = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let nanos = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("{name:<40} {:>12.1} ns/iter  ({} iters)", nanos, b.iters);
        self.results.push(BenchResult {
            name: name.to_string(),
            ns_per_iter: nanos,
            iters: b.iters,
        });
        self
    }

    /// The measurements recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        let results = c.results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "noop");
        assert!(results[0].ns_per_iter >= 0.0);
        assert!(results[0].iters > 0);
    }

    #[test]
    fn iter_batched_uses_setup_per_iteration() {
        let mut b = Bencher {
            iters: 5,
            elapsed: Duration::ZERO,
        };
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8; 8]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
    }
}
