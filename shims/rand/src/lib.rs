//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the (small) subset of the `rand 0.8`
//! API the repository actually uses: the [`Rng`] sampling trait,
//! [`SeedableRng::seed_from_u64`], a deterministic
//! [`rngs::SmallRng`] (xoshiro256++ seeded through SplitMix64) and
//! [`seq::SliceRandom`] for shuffling/choosing.
//!
//! Streams differ numerically from the real `rand` crate, but every
//! consumer in this workspace relies only on *determinism per seed*,
//! which this implementation guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Samples a value of type `T` from a generator.
pub trait SampleValue: Sized {
    /// Draws one value from `rng`.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for usize {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleValue for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a value can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_from(rng) * (hi - lo)
    }
}

/// Random-number sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of type `T`.
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample_from(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seeding and cheap derived streams.
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix_64, Rng, SeedableRng};

    /// Small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix_64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Shuffle and choose on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-2.0..=2.0f64);
            assert!((-2.0..=2.0).contains(&y));
            let z = rng.gen_range(5u64..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
