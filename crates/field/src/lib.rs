//! Sensing fields, obstacles, coverage measurement and workloads.
//!
//! This crate models the paper's deployment environment (§3.1): a
//! rectangular 2-D field containing polygonal obstacles of arbitrary
//! shape, connected free space, and a reference point `O = (0, 0)`
//! where the base station sits. It also provides the measurement and
//! workload machinery the evaluation needs:
//!
//! * [`Field`] — geometry queries (free-space tests, motion blocking,
//!   first-obstacle-hit sweeps);
//! * [`CoverageGrid`] — raster coverage measurement over free area
//!   (the paper's *coverage* metric);
//! * [`CoverageTracker`] — incremental per-sensor coverage counts that
//!   match the raster oracle bit-for-bit at `O(disk)` per move;
//! * [`free_space_connected`] — flood-fill check that obstacles do not
//!   partition the field (required by §3.1 and by the random-obstacle
//!   workload of §6.4);
//! * [`scatter_clustered`] / [`scatter_uniform`] — the two initial
//!   distributions of §6;
//! * [`random_obstacle_field`] — the 1–4 random rectangles workload of
//!   §6.4;
//! * [`campus_grid_field`] / [`corridor_field`] /
//!   [`disaster_zone_field`] — parametric layouts for the scenario
//!   engine's declarative field specs;
//! * [`ascii_layout`] — terminal rendering of layouts (our stand-in for
//!   the paper's layout figures 3 and 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod coverage;
mod distributions;
mod field;
mod freespace;
mod layouts;
mod random_obstacles;
mod tracker;

pub use ascii::{ascii_layout, AsciiOptions};
pub use coverage::CoverageGrid;
pub use distributions::{scatter_clustered, scatter_uniform};
pub use field::{Field, Hit};
pub use freespace::free_space_connected;
pub use layouts::{
    campus_grid_field, corridor_field, disaster_zone_field, CampusGridParams, CorridorParams,
};
pub use random_obstacles::{random_obstacle_field, RandomObstacleParams};
pub use tracker::CoverageTracker;

/// Standard field used throughout the paper's evaluation:
/// 1000 m × 1000 m, obstacle-free.
pub fn paper_field() -> Field {
    Field::open(1000.0, 1000.0)
}

/// The two-obstacle field of Figures 3(c) and 8(c): two rectangular
/// walls around the clustered start area, leaving three exits to the
/// vacant area — two at the top and a narrower one at the bottom.
pub fn two_obstacle_field() -> Field {
    use msn_geom::Rect;
    Field::with_obstacles(
        1000.0,
        1000.0,
        vec![
            // Vertical wall east of the cluster; narrow exit below it.
            Rect::new(500.0, 30.0, 560.0, 700.0).to_polygon(),
            // Horizontal wall north of the cluster; exits on both sides.
            Rect::new(60.0, 500.0, 460.0, 560.0).to_polygon(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Point;

    #[test]
    fn paper_field_is_open_and_square() {
        let f = paper_field();
        assert_eq!(f.bounds().width(), 1000.0);
        assert!(f.obstacles().is_empty());
        assert!(f.is_free(Point::new(500.0, 500.0)));
    }

    #[test]
    fn two_obstacle_field_blocks_and_stays_connected() {
        let f = two_obstacle_field();
        assert_eq!(f.obstacles().len(), 2);
        assert!(
            !f.is_free(Point::new(530.0, 300.0)),
            "inside the vertical wall"
        );
        assert!(
            !f.is_free(Point::new(200.0, 530.0)),
            "inside the horizontal wall"
        );
        assert!(
            f.is_free(Point::new(10.0, 10.0)),
            "base-station corner clear"
        );
        // the three exits are open
        assert!(f.is_free(Point::new(30.0, 530.0)), "top-left exit");
        assert!(f.is_free(Point::new(480.0, 530.0)), "top-channel exit");
        assert!(f.is_free(Point::new(530.0, 15.0)), "narrow bottom exit");
        assert!(
            free_space_connected(&f, 10.0),
            "obstacles must not partition the field"
        );
    }
}
