//! The sensing field.

use msn_geom::{Point, Polygon, Rect, Segment, EPS};
use std::fmt;

/// A rectangular sensing field with polygonal obstacles.
///
/// The field spans `[0, width] × [0, height]` with the base station's
/// reference point at the origin, matching the paper's convention. Any
/// number of obstacles (simple polygons) may be present; deployment
/// schemes require the *free space* (field minus obstacles) to be
/// connected, which [`crate::free_space_connected`] verifies.
///
/// # Examples
///
/// ```
/// use msn_field::Field;
/// use msn_geom::{Point, Rect};
///
/// let field = Field::with_obstacles(
///     100.0,
///     100.0,
///     vec![Rect::new(40.0, 40.0, 60.0, 60.0).to_polygon()],
/// );
/// assert!(field.is_free(Point::new(10.0, 10.0)));
/// assert!(!field.is_free(Point::new(50.0, 50.0)));
/// ```
#[derive(Debug, Clone)]
pub struct Field {
    bounds: Rect,
    obstacles: Vec<Polygon>,
}

/// Identifies which wall a motion sweep hit first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hit {
    /// The field's outer boundary; payload is the boundary edge index
    /// in the CCW rectangle polygon (0 = bottom, 1 = right, 2 = top,
    /// 3 = left).
    Boundary(usize),
    /// An obstacle; payload is `(obstacle index, edge index)`.
    Obstacle(usize, usize),
}

impl Field {
    /// An obstacle-free `width × height` field anchored at the origin.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn open(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        Field {
            bounds: Rect::new(0.0, 0.0, width, height),
            obstacles: Vec::new(),
        }
    }

    /// A field with the given obstacles.
    ///
    /// Obstacles may touch or overlap each other; callers that need a
    /// connected free space should verify with
    /// [`crate::free_space_connected`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn with_obstacles(width: f64, height: f64, obstacles: Vec<Polygon>) -> Self {
        let mut f = Field::open(width, height);
        f.obstacles = obstacles;
        f
    }

    /// The outer boundary rectangle.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The obstacle polygons.
    #[inline]
    pub fn obstacles(&self) -> &[Polygon] {
        &self.obstacles
    }

    /// Adds an obstacle after construction.
    pub fn push_obstacle(&mut self, obstacle: Polygon) {
        self.obstacles.push(obstacle);
    }

    /// Removes and returns the obstacle at `index` (an obstacle
    /// collapsing or being cleared mid-run). Later obstacles shift
    /// down one index, matching [`Vec::remove`].
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_obstacle(&mut self, index: usize) -> Polygon {
        self.obstacles.remove(index)
    }

    /// Returns `true` if `p` is inside the field and outside every
    /// obstacle (obstacle boundaries count as blocked).
    pub fn is_free(&self, p: Point) -> bool {
        self.bounds.contains(p) && !self.obstacles.iter().any(|o| o.contains(p))
    }

    /// Returns `true` if `p` is inside the field bounds (free or not).
    #[inline]
    pub fn in_bounds(&self, p: Point) -> bool {
        self.bounds.contains(p)
    }

    /// Returns `true` if the straight move along `seg` stays in free
    /// space (endpoints included).
    pub fn segment_free(&self, seg: &Segment) -> bool {
        if !self.bounds.contains(seg.a) || !self.bounds.contains(seg.b) {
            return false;
        }
        !self.obstacles.iter().any(|o| o.intersects_segment(seg))
    }

    /// Sweeps along `seg` and reports the first obstruction, if any.
    ///
    /// Returns the parameter `t ∈ [0, 1]` of the first contact and what
    /// was hit. A sweep starting exactly on a boundary (t ≈ 0 hits) is
    /// ignored so that a sensor standing against a wall can slide away
    /// from it; callers moving *along* walls use the boundary-following
    /// machinery in `msn-nav` instead.
    pub fn first_hit(&self, seg: &Segment) -> Option<(f64, Hit)> {
        let mut best: Option<(f64, Hit)> = None;
        let start_tol = 1e-7 / seg.length().max(EPS);
        let mut consider = |t: f64, hit: Hit| {
            if t <= start_tol {
                return;
            }
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, hit));
            }
        };
        // Outer boundary: hitting it from inside.
        let boundary = self.bounds.to_polygon();
        for (i, edge) in boundary.edges().enumerate() {
            if let Some(t) = seg.first_hit(&edge) {
                // Only count as a hit if we are actually leaving: the
                // segment continues beyond the wall.
                let just_after = seg.at((t + 10.0 * start_tol).min(1.0));
                let leaving = !self.bounds.contains_strict(just_after) && t < 1.0 - start_tol;
                if leaving || !self.bounds.contains(seg.b) {
                    consider(t, Hit::Boundary(i));
                }
            }
        }
        for (oi, obstacle) in self.obstacles.iter().enumerate() {
            if let Some((t, ei)) = obstacle.first_boundary_hit(seg) {
                consider(t, Hit::Obstacle(oi, ei));
            }
        }
        best
    }

    /// Fraction of `n × n` sample points of the bounding box that are
    /// free — a quick estimate of the free-area ratio.
    pub fn free_fraction_estimate(&self, n: usize) -> f64 {
        assert!(n > 0);
        let mut free = 0usize;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    self.bounds.min.x + (i as f64 + 0.5) / n as f64 * self.bounds.width(),
                    self.bounds.min.y + (j as f64 + 0.5) / n as f64 * self.bounds.height(),
                );
                if self.is_free(p) {
                    free += 1;
                }
            }
        }
        free as f64 / (n * n) as f64
    }

    /// Distance from `p` to the nearest obstacle boundary
    /// (`f64::INFINITY` when the field has no obstacles).
    pub fn nearest_obstacle_dist(&self, p: Point) -> f64 {
        self.obstacles
            .iter()
            .map(|o| o.dist_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// The closest point of obstacle boundaries to `p`, if any obstacle
    /// exists.
    pub fn nearest_obstacle_point(&self, p: Point) -> Option<Point> {
        self.obstacles
            .iter()
            .map(|o| o.closest_boundary_point(p))
            .min_by(|a, b| p.dist_sq(*a).partial_cmp(&p.dist_sq(*b)).expect("finite"))
    }

    /// Clamps `p` into the field bounds.
    pub fn clamp(&self, p: Point) -> Point {
        self.bounds.clamp_point(p)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "field {}x{} with {} obstacle(s)",
            self.bounds.width(),
            self.bounds.height(),
            self.obstacles.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_field() -> Field {
        Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 0.0, 60.0, 80.0).to_polygon()],
        )
    }

    #[test]
    fn free_space_queries() {
        let f = blocked_field();
        assert!(f.is_free(Point::new(10.0, 10.0)));
        assert!(!f.is_free(Point::new(50.0, 40.0)));
        assert!(
            !f.is_free(Point::new(-1.0, 10.0)),
            "outside bounds is not free"
        );
        assert!(
            f.in_bounds(Point::new(50.0, 40.0)),
            "obstacle interior is still in bounds"
        );
    }

    #[test]
    fn segment_freedom() {
        let f = blocked_field();
        let clear = Segment::new(Point::new(10.0, 90.0), Point::new(90.0, 90.0));
        assert!(f.segment_free(&clear));
        let blocked = Segment::new(Point::new(10.0, 40.0), Point::new(90.0, 40.0));
        assert!(!f.segment_free(&blocked));
        let exits = Segment::new(Point::new(90.0, 90.0), Point::new(110.0, 90.0));
        assert!(!f.segment_free(&exits));
    }

    #[test]
    fn first_hit_finds_obstacle_edge() {
        let f = blocked_field();
        let seg = Segment::new(Point::new(10.0, 40.0), Point::new(90.0, 40.0));
        let (t, hit) = f.first_hit(&seg).unwrap();
        assert!((t - 30.0 / 80.0).abs() < 1e-9, "hits the wall at x=40");
        match hit {
            Hit::Obstacle(0, _) => {}
            other => panic!("expected obstacle hit, got {other:?}"),
        }
    }

    #[test]
    fn first_hit_finds_outer_boundary() {
        let f = Field::open(100.0, 100.0);
        let seg = Segment::new(Point::new(50.0, 50.0), Point::new(50.0, 150.0));
        let (t, hit) = f.first_hit(&seg).unwrap();
        assert!((t - 0.5).abs() < 1e-9);
        assert_eq!(hit, Hit::Boundary(2), "top edge of the CCW boundary");
    }

    #[test]
    fn first_hit_ignores_start_on_wall() {
        let f = blocked_field();
        // start exactly on the obstacle's left wall, moving away
        let seg = Segment::new(Point::new(40.0, 40.0), Point::new(10.0, 40.0));
        assert!(f.first_hit(&seg).is_none());
    }

    #[test]
    fn free_fraction() {
        let f = blocked_field(); // obstacle is 20x80 = 1600 of 10000
        let frac = f.free_fraction_estimate(100);
        assert!((frac - 0.84).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn obstacle_distance() {
        let f = blocked_field();
        assert!((f.nearest_obstacle_dist(Point::new(30.0, 40.0)) - 10.0).abs() < 1e-9);
        assert_eq!(f.nearest_obstacle_dist(Point::new(50.0, 40.0)), 0.0);
        let np = f.nearest_obstacle_point(Point::new(30.0, 40.0)).unwrap();
        assert!(np.approx_eq(Point::new(40.0, 40.0)));
        assert_eq!(
            Field::open(10.0, 10.0).nearest_obstacle_dist(Point::ORIGIN),
            f64::INFINITY
        );
        assert!(Field::open(10.0, 10.0)
            .nearest_obstacle_point(Point::ORIGIN)
            .is_none());
    }
}
