//! Raster coverage measurement.

use crate::Field;
use msn_geom::Point;

/// A raster over the field's free space used to measure sensing
/// coverage — the paper's metric "fraction of area covered by at least
/// one sensor".
///
/// Cells whose centers fall inside obstacles are excluded from the
/// denominator, so coverage is measured over *reachable* area only.
///
/// # Examples
///
/// ```
/// use msn_field::{CoverageGrid, Field};
/// use msn_geom::Point;
///
/// let field = Field::open(100.0, 100.0);
/// let grid = CoverageGrid::new(&field, 2.0);
/// // One sensor in the middle with rs = 50 covers roughly a quarter
/// // circle... no — the full disk of radius 50 clipped to the square:
/// let cov = grid.coverage(&[Point::new(50.0, 50.0)], 50.0);
/// assert!((cov - std::f64::consts::PI * 2500.0 / 10_000.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    free: Vec<bool>,
    free_count: usize,
}

impl CoverageGrid {
    /// Builds a grid over `field` with square cells of side `cell`
    /// meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive.
    pub fn new(field: &Field, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let b = field.bounds();
        let nx = (b.width() / cell).ceil() as usize;
        let ny = (b.height() / cell).ceil() as usize;
        let mut free = vec![false; nx * ny];
        let mut free_count = 0;
        for iy in 0..ny {
            for ix in 0..nx {
                let p = Point::new(
                    b.min.x + (ix as f64 + 0.5) * cell,
                    b.min.y + (iy as f64 + 0.5) * cell,
                );
                if field.in_bounds(p) && field.is_free(p) {
                    free[iy * nx + ix] = true;
                    free_count += 1;
                }
            }
        }
        CoverageGrid {
            origin: b.min,
            cell,
            nx,
            ny,
            free,
            free_count,
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell side length in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of free (non-obstacle) cells.
    #[inline]
    pub fn free_cells(&self) -> usize {
        self.free_count
    }

    /// Returns `true` if cell `(ix, iy)` is free.
    #[inline]
    pub fn is_free_cell(&self, ix: usize, iy: usize) -> bool {
        ix < self.nx && iy < self.ny && self.free[iy * self.nx + ix]
    }

    /// Center point of cell `(ix, iy)`.
    #[inline]
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            self.origin.x + (ix as f64 + 0.5) * self.cell,
            self.origin.y + (iy as f64 + 0.5) * self.cell,
        )
    }

    /// `true` when the center of cell `(ix, iy)` passes the disk
    /// membership test — the single authoritative predicate both stamp
    /// kernels share.
    #[inline]
    fn center_in_disk(&self, ix: usize, iy: usize, s: Point, rs_sq: f64) -> bool {
        self.cell_center(ix, iy).dist_sq(s) <= rs_sq
    }

    /// Calls `f` with the flat index of every *free* cell whose center
    /// lies within `rs` of `s` — the scanline stamp kernel.
    ///
    /// This is the one disk-rasterization kernel behind
    /// [`CoverageGrid::covered_mask`], [`CoverageGrid::covered_count`]
    /// and the incremental [`crate::CoverageTracker`]: the visited set
    /// is exactly `{free (ix, iy) : dist(center, s) <= rs}`, so every
    /// consumer agrees with the others bit-for-bit. Per row, the
    /// squared center distance is weakly unimodal in the column index
    /// (monotone |Δx| into a monotone square, plus a constant), so the
    /// passing columns form one contiguous interval: the kernel
    /// refines the conservative chord window to that interval with a
    /// handful of boundary distance tests and then stamps the interior
    /// as a straight run over the free bitmap — no per-cell distance
    /// test. [`CoverageGrid::disk_free_cells_chord`] keeps the
    /// per-cell-test kernel as the property-tested oracle.
    #[inline]
    pub(crate) fn disk_free_cells(&self, s: Point, rs: f64, f: &mut impl FnMut(usize)) {
        let r_cells = (rs / self.cell).ceil() as isize + 1;
        let rs_sq = rs * rs;
        let cx = ((s.x - self.origin.x) / self.cell - 0.5).round() as isize;
        let cy = ((s.y - self.origin.y) / self.cell - 0.5).round() as isize;
        for dy in -r_cells..=r_cells {
            let iy = cy + dy;
            if iy < 0 || iy >= self.ny as isize {
                continue;
            }
            let center_y = self.origin.y + (iy as f64 + 0.5) * self.cell;
            let rem = rs_sq - (center_y - s.y) * (center_y - s.y);
            if rem < 0.0 {
                continue; // the whole row lies outside the disk
            }
            // Chord half-width in cells, padded so float rounding can
            // never exclude a center the distance test would accept.
            let half = (rem.sqrt() / self.cell) as isize + 2;
            let lo = (cx - half.min(r_cells)).max(0);
            let hi = (cx + half.min(r_cells)).min(self.nx as isize - 1);
            if lo > hi {
                continue;
            }
            let iyu = iy as usize;
            // Shrink the padded window to the exact passing interval
            // (the pad is at most a few cells, so this is a handful of
            // distance tests per row).
            let mut a = lo;
            while a <= hi && !self.center_in_disk(a as usize, iyu, s, rs_sq) {
                a += 1;
            }
            if a > hi {
                continue;
            }
            let mut b = hi;
            while b > a && !self.center_in_disk(b as usize, iyu, s, rs_sq) {
                b -= 1;
            }
            // Stamp the interval as a straight slice walk: one bounds
            // check for the whole run instead of one per cell, and no
            // distance math left in the loop.
            let start = iyu * self.nx + a as usize;
            let run = &self.free[start..=start + (b - a) as usize];
            for (off, &fr) in run.iter().enumerate() {
                if fr {
                    f(start + off);
                }
            }
        }
    }

    /// The pre-scanline stamp kernel: same visited set as
    /// [`CoverageGrid::disk_free_cells`], computed with a per-cell
    /// distance test over the padded chord window. Kept as the oracle
    /// for the scanline kernel's property tests and benchmark pair.
    #[inline]
    pub(crate) fn disk_free_cells_chord(&self, s: Point, rs: f64, f: &mut impl FnMut(usize)) {
        let r_cells = (rs / self.cell).ceil() as isize + 1;
        let rs_sq = rs * rs;
        let cx = ((s.x - self.origin.x) / self.cell - 0.5).round() as isize;
        let cy = ((s.y - self.origin.y) / self.cell - 0.5).round() as isize;
        for dy in -r_cells..=r_cells {
            let iy = cy + dy;
            if iy < 0 || iy >= self.ny as isize {
                continue;
            }
            let center_y = self.origin.y + (iy as f64 + 0.5) * self.cell;
            let rem = rs_sq - (center_y - s.y) * (center_y - s.y);
            if rem < 0.0 {
                continue;
            }
            let half = (rem.sqrt() / self.cell) as isize + 2;
            let lo = (cx - half.min(r_cells)).max(0);
            let hi = (cx + half.min(r_cells)).min(self.nx as isize - 1);
            let row = iy as usize * self.nx;
            for ix in lo..=hi {
                let idx = row + ix as usize;
                if !self.free[idx] {
                    continue;
                }
                if self.center_in_disk(ix as usize, iy as usize, s, rs_sq) {
                    f(idx);
                }
            }
        }
    }

    /// Flat indices of the free cells one disk stamp visits, in visit
    /// order — the scanline kernel, exposed for property tests and the
    /// kernels benchmark.
    pub fn disk_cells(&self, s: Point, rs: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.disk_free_cells(s, rs, &mut |idx| out.push(idx));
        out
    }

    /// Flat indices of the free cells the chord-window oracle kernel
    /// visits, in visit order. [`CoverageGrid::disk_cells`] must match
    /// this exactly.
    pub fn disk_cells_chord(&self, s: Point, rs: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.disk_free_cells_chord(s, rs, &mut |idx| out.push(idx));
        out
    }

    /// Marks every free cell within `rs` of any sensor and returns the
    /// boolean mask (row-major, `ny` rows of `nx`).
    pub fn covered_mask(&self, sensors: &[Point], rs: f64) -> Vec<bool> {
        let mut mask = Vec::new();
        self.covered_mask_into(sensors, rs, &mut mask);
        mask
    }

    /// Like [`CoverageGrid::covered_mask`], but reuses `mask` as the
    /// scratch buffer (cleared and resized to `nx · ny`) and returns
    /// the number of covered free cells, so hot callers measure
    /// coverage without any per-measurement allocation or a second
    /// pass over the raster.
    pub fn covered_mask_into(&self, sensors: &[Point], rs: f64, mask: &mut Vec<bool>) -> usize {
        mask.clear();
        mask.resize(self.nx * self.ny, false);
        let mut covered = 0usize;
        for s in sensors {
            self.disk_free_cells(*s, rs, &mut |idx| {
                if !mask[idx] {
                    mask[idx] = true;
                    covered += 1;
                }
            });
        }
        covered
    }

    /// Number of free cells covered by at least one sensing disk of
    /// radius `rs` centered at `sensors`.
    pub fn covered_count(&self, sensors: &[Point], rs: f64) -> usize {
        let mut mask = Vec::new();
        self.covered_mask_into(sensors, rs, &mut mask)
    }

    /// Fraction of free cells covered by at least one sensing disk of
    /// radius `rs` centered at `sensors`.
    ///
    /// Returns 0 when the field has no free cells.
    pub fn coverage(&self, sensors: &[Point], rs: f64) -> f64 {
        let mut mask = Vec::new();
        self.coverage_into(sensors, rs, &mut mask)
    }

    /// Like [`CoverageGrid::coverage`], but reuses `mask` as the
    /// scratch buffer (see [`CoverageGrid::covered_mask_into`]) so
    /// callers measuring coverage repeatedly allocate nothing per
    /// measurement.
    ///
    /// Returns 0 when the field has no free cells.
    pub fn coverage_into(&self, sensors: &[Point], rs: f64, mask: &mut Vec<bool>) -> f64 {
        if self.free_count == 0 {
            return 0.0;
        }
        self.covered_mask_into(sensors, rs, mask) as f64 / self.free_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    #[test]
    fn empty_sensor_set_covers_nothing() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 5.0);
        assert_eq!(g.coverage(&[], 10.0), 0.0);
        assert_eq!(g.free_cells(), 400);
        assert_eq!(g.nx(), 20);
        assert_eq!(g.ny(), 20);
        assert_eq!(g.cell_size(), 5.0);
    }

    #[test]
    fn full_coverage_with_huge_disk() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 5.0);
        let cov = g.coverage(&[Point::new(50.0, 50.0)], 200.0);
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn disk_area_matches_analytic_value() {
        let f = Field::open(1000.0, 1000.0);
        let g = CoverageGrid::new(&f, 2.0);
        let cov = g.coverage(&[Point::new(500.0, 500.0)], 100.0);
        let expected = std::f64::consts::PI * 100.0 * 100.0 / 1_000_000.0;
        assert!(
            (cov - expected).abs() < 0.001,
            "got {cov}, expected {expected}"
        );
    }

    #[test]
    fn obstacle_cells_excluded_from_denominator() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(0.0, 0.0, 50.0, 100.0).to_polygon()],
        );
        let g = CoverageGrid::new(&f, 2.0);
        // covering the entire right half covers 100% of free space
        let sensors: Vec<Point> = (0..10)
            .flat_map(|i| {
                (0..10).map(move |j| Point::new(52.0 + 5.0 * i as f64, 5.0 + 10.0 * j as f64))
            })
            .collect();
        let cov = g.coverage(&sensors, 12.0);
        assert!(cov > 0.99, "got {cov}");
    }

    #[test]
    fn coverage_is_monotone_in_sensors() {
        let f = Field::open(200.0, 200.0);
        let g = CoverageGrid::new(&f, 4.0);
        let s1 = vec![Point::new(50.0, 50.0)];
        let s2 = vec![Point::new(50.0, 50.0), Point::new(150.0, 150.0)];
        assert!(g.coverage(&s2, 30.0) >= g.coverage(&s1, 30.0));
    }

    #[test]
    fn sensors_outside_field_still_cover_edge_cells() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 2.0);
        let cov = g.coverage(&[Point::new(-10.0, 50.0)], 20.0);
        assert!(cov > 0.0);
    }

    #[test]
    fn mask_count_and_reused_scratch_agree() {
        let f = Field::with_obstacles(
            200.0,
            200.0,
            vec![Rect::new(40.0, 40.0, 120.0, 90.0).to_polygon()],
        );
        let g = CoverageGrid::new(&f, 4.0);
        let sensors = vec![
            Point::new(10.0, 10.0),
            Point::new(150.0, 60.0),
            Point::new(-5.0, 190.0), // off-field sensor clips cleanly
        ];
        let mask = g.covered_mask(&sensors, 35.0);
        let brute = mask.iter().filter(|&&c| c).count();
        assert_eq!(g.covered_count(&sensors, 35.0), brute);
        // reusing a dirty, wrongly-sized scratch must not leak state
        let mut scratch = vec![true; 3];
        let count = g.covered_mask_into(&sensors, 35.0, &mut scratch);
        assert_eq!(count, brute);
        assert_eq!(scratch, mask);
    }

    #[test]
    fn scanline_stamp_matches_chord_oracle() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(20.0, 20.0, 80.0, 80.0).to_polygon()],
        );
        let g = CoverageGrid::new(&f, 3.0);
        for (s, rs) in [
            (Point::new(50.0, 50.0), 40.0),
            (Point::new(0.0, 0.0), 25.0),
            (Point::new(-10.0, 103.0), 30.0), // off-field sensor
            (Point::new(49.5, 49.5), 0.0),    // degenerate disk
            (Point::new(10.5, 10.5), 1.5),    // center on cell boundary
        ] {
            assert_eq!(
                g.disk_cells(s, rs),
                g.disk_cells_chord(s, rs),
                "s={s} rs={rs}"
            );
        }
    }

    #[test]
    fn coverage_into_matches_coverage() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 2.0);
        let sensors = vec![Point::new(30.0, 40.0), Point::new(70.0, 60.0)];
        let mut scratch = Vec::new();
        let a = g.coverage(&sensors, 25.0);
        let b = g.coverage_into(&sensors, 25.0, &mut scratch);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn covered_cells_are_always_free() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(20.0, 20.0, 80.0, 80.0).to_polygon()],
        );
        let g = CoverageGrid::new(&f, 5.0);
        let mask = g.covered_mask(&[Point::new(50.0, 50.0)], 60.0);
        for iy in 0..g.ny() {
            for ix in 0..g.nx() {
                if mask[iy * g.nx() + ix] {
                    assert!(g.is_free_cell(ix, iy));
                }
            }
        }
    }
}
