//! Raster coverage measurement.

use crate::Field;
use msn_geom::Point;

/// A raster over the field's free space used to measure sensing
/// coverage — the paper's metric "fraction of area covered by at least
/// one sensor".
///
/// Cells whose centers fall inside obstacles are excluded from the
/// denominator, so coverage is measured over *reachable* area only.
///
/// # Examples
///
/// ```
/// use msn_field::{CoverageGrid, Field};
/// use msn_geom::Point;
///
/// let field = Field::open(100.0, 100.0);
/// let grid = CoverageGrid::new(&field, 2.0);
/// // One sensor in the middle with rs = 50 covers roughly a quarter
/// // circle... no — the full disk of radius 50 clipped to the square:
/// let cov = grid.coverage(&[Point::new(50.0, 50.0)], 50.0);
/// assert!((cov - std::f64::consts::PI * 2500.0 / 10_000.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone)]
pub struct CoverageGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    free: Vec<bool>,
    free_count: usize,
}

impl CoverageGrid {
    /// Builds a grid over `field` with square cells of side `cell`
    /// meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive.
    pub fn new(field: &Field, cell: f64) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let b = field.bounds();
        let nx = (b.width() / cell).ceil() as usize;
        let ny = (b.height() / cell).ceil() as usize;
        let mut free = vec![false; nx * ny];
        let mut free_count = 0;
        for iy in 0..ny {
            for ix in 0..nx {
                let p = Point::new(
                    b.min.x + (ix as f64 + 0.5) * cell,
                    b.min.y + (iy as f64 + 0.5) * cell,
                );
                if field.in_bounds(p) && field.is_free(p) {
                    free[iy * nx + ix] = true;
                    free_count += 1;
                }
            }
        }
        CoverageGrid {
            origin: b.min,
            cell,
            nx,
            ny,
            free,
            free_count,
        }
    }

    /// Grid width in cells.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in cells.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cell side length in meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Number of free (non-obstacle) cells.
    #[inline]
    pub fn free_cells(&self) -> usize {
        self.free_count
    }

    /// Returns `true` if cell `(ix, iy)` is free.
    #[inline]
    pub fn is_free_cell(&self, ix: usize, iy: usize) -> bool {
        ix < self.nx && iy < self.ny && self.free[iy * self.nx + ix]
    }

    /// Center point of cell `(ix, iy)`.
    #[inline]
    pub fn cell_center(&self, ix: usize, iy: usize) -> Point {
        Point::new(
            self.origin.x + (ix as f64 + 0.5) * self.cell,
            self.origin.y + (iy as f64 + 0.5) * self.cell,
        )
    }

    /// Marks every free cell within `rs` of any sensor and returns the
    /// boolean mask (row-major, `ny` rows of `nx`).
    pub fn covered_mask(&self, sensors: &[Point], rs: f64) -> Vec<bool> {
        let mut covered = vec![false; self.nx * self.ny];
        let r_cells = (rs / self.cell).ceil() as isize + 1;
        let rs_sq = rs * rs;
        for s in sensors {
            let cx = ((s.x - self.origin.x) / self.cell - 0.5).round() as isize;
            let cy = ((s.y - self.origin.y) / self.cell - 0.5).round() as isize;
            for dy in -r_cells..=r_cells {
                let iy = cy + dy;
                if iy < 0 || iy >= self.ny as isize {
                    continue;
                }
                for dx in -r_cells..=r_cells {
                    let ix = cx + dx;
                    if ix < 0 || ix >= self.nx as isize {
                        continue;
                    }
                    let idx = iy as usize * self.nx + ix as usize;
                    if covered[idx] || !self.free[idx] {
                        continue;
                    }
                    let c = self.cell_center(ix as usize, iy as usize);
                    if c.dist_sq(*s) <= rs_sq {
                        covered[idx] = true;
                    }
                }
            }
        }
        covered
    }

    /// Fraction of free cells covered by at least one sensing disk of
    /// radius `rs` centered at `sensors`.
    ///
    /// Returns 0 when the field has no free cells.
    pub fn coverage(&self, sensors: &[Point], rs: f64) -> f64 {
        if self.free_count == 0 {
            return 0.0;
        }
        let mask = self.covered_mask(sensors, rs);
        let covered = mask
            .iter()
            .zip(&self.free)
            .filter(|&(&c, &f)| c && f)
            .count();
        covered as f64 / self.free_count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    #[test]
    fn empty_sensor_set_covers_nothing() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 5.0);
        assert_eq!(g.coverage(&[], 10.0), 0.0);
        assert_eq!(g.free_cells(), 400);
        assert_eq!(g.nx(), 20);
        assert_eq!(g.ny(), 20);
        assert_eq!(g.cell_size(), 5.0);
    }

    #[test]
    fn full_coverage_with_huge_disk() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 5.0);
        let cov = g.coverage(&[Point::new(50.0, 50.0)], 200.0);
        assert_eq!(cov, 1.0);
    }

    #[test]
    fn disk_area_matches_analytic_value() {
        let f = Field::open(1000.0, 1000.0);
        let g = CoverageGrid::new(&f, 2.0);
        let cov = g.coverage(&[Point::new(500.0, 500.0)], 100.0);
        let expected = std::f64::consts::PI * 100.0 * 100.0 / 1_000_000.0;
        assert!(
            (cov - expected).abs() < 0.001,
            "got {cov}, expected {expected}"
        );
    }

    #[test]
    fn obstacle_cells_excluded_from_denominator() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(0.0, 0.0, 50.0, 100.0).to_polygon()],
        );
        let g = CoverageGrid::new(&f, 2.0);
        // covering the entire right half covers 100% of free space
        let sensors: Vec<Point> = (0..10)
            .flat_map(|i| {
                (0..10).map(move |j| Point::new(52.0 + 5.0 * i as f64, 5.0 + 10.0 * j as f64))
            })
            .collect();
        let cov = g.coverage(&sensors, 12.0);
        assert!(cov > 0.99, "got {cov}");
    }

    #[test]
    fn coverage_is_monotone_in_sensors() {
        let f = Field::open(200.0, 200.0);
        let g = CoverageGrid::new(&f, 4.0);
        let s1 = vec![Point::new(50.0, 50.0)];
        let s2 = vec![Point::new(50.0, 50.0), Point::new(150.0, 150.0)];
        assert!(g.coverage(&s2, 30.0) >= g.coverage(&s1, 30.0));
    }

    #[test]
    fn sensors_outside_field_still_cover_edge_cells() {
        let f = Field::open(100.0, 100.0);
        let g = CoverageGrid::new(&f, 2.0);
        let cov = g.coverage(&[Point::new(-10.0, 50.0)], 20.0);
        assert!(cov > 0.0);
    }
}
