//! Parametric obstacle layouts beyond the paper's fixed fields.
//!
//! The scenario engine (`msn-scenario`) describes experiments
//! declaratively; these constructors turn layout parameters into
//! concrete [`Field`]s:
//!
//! * [`campus_grid_field`] — a regular grid of rectangular buildings
//!   separated by streets (the "urban region" of the paper's
//!   motivation, previously hard-coded in `examples/campus_grid.rs`);
//! * [`corridor_field`] — a serpentine corridor formed by alternating
//!   baffle walls, stressing BUG2 boundary following and FLOOR's
//!   obstacle-adaptive expansion;
//! * [`disaster_zone_field`] — the mixed rectangle/triangle/
//!   quadrilateral debris field of `examples/disaster_zone.rs`.

use crate::Field;
use msn_geom::{Point, Polygon, Rect};

/// Parameters for [`campus_grid_field`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampusGridParams {
    /// Field width (m).
    pub width: f64,
    /// Field height (m).
    pub height: f64,
    /// Buildings along x.
    pub blocks_x: usize,
    /// Buildings along y.
    pub blocks_y: usize,
    /// Building side length (m).
    pub building: f64,
    /// Street width between buildings (m).
    pub street: f64,
    /// Clear margin between the field border and the first building (m).
    pub margin: f64,
}

impl Default for CampusGridParams {
    fn default() -> Self {
        // The layout of examples/campus_grid.rs: 3x3 blocks of 160 m
        // buildings on 80 m streets in an 800 m field.
        CampusGridParams {
            width: 800.0,
            height: 800.0,
            blocks_x: 3,
            blocks_y: 3,
            building: 160.0,
            street: 80.0,
            margin: 140.0,
        }
    }
}

/// A regular grid of rectangular buildings separated by streets.
///
/// # Panics
///
/// Panics if the grid does not fit inside the field or a parameter is
/// not positive.
pub fn campus_grid_field(params: &CampusGridParams) -> Field {
    assert!(
        params.building > 0.0 && params.street > 0.0 && params.margin >= 0.0,
        "building/street must be positive, margin non-negative"
    );
    let pitch = params.building + params.street;
    let extent_x = params.margin + params.blocks_x as f64 * pitch - params.street;
    let extent_y = params.margin + params.blocks_y as f64 * pitch - params.street;
    assert!(
        extent_x <= params.width && extent_y <= params.height,
        "campus grid exceeds the field: needs {extent_x} x {extent_y}, field is {} x {}",
        params.width,
        params.height
    );
    let mut obstacles = Vec::with_capacity(params.blocks_x * params.blocks_y);
    for bx in 0..params.blocks_x {
        for by in 0..params.blocks_y {
            let x = params.margin + bx as f64 * pitch;
            let y = params.margin + by as f64 * pitch;
            obstacles.push(Rect::new(x, y, x + params.building, y + params.building).to_polygon());
        }
    }
    Field::with_obstacles(params.width, params.height, obstacles)
}

/// Parameters for [`corridor_field`].
#[derive(Debug, Clone, PartialEq)]
pub struct CorridorParams {
    /// Field width (m).
    pub width: f64,
    /// Field height (m).
    pub height: f64,
    /// Number of baffle walls.
    pub baffles: usize,
    /// Opening left at the free end of each baffle (m).
    pub gap: f64,
    /// Baffle thickness (m).
    pub thickness: f64,
}

impl Default for CorridorParams {
    fn default() -> Self {
        CorridorParams {
            width: 1000.0,
            height: 600.0,
            baffles: 3,
            gap: 120.0,
            thickness: 30.0,
        }
    }
}

/// A serpentine corridor: evenly spaced baffle walls alternately
/// attached to the top and bottom border, each leaving a `gap`-wide
/// opening at its free end. Free space stays connected by
/// construction (every baffle has an opening).
///
/// # Panics
///
/// Panics if the gap or thickness does not fit the field.
pub fn corridor_field(params: &CorridorParams) -> Field {
    assert!(
        params.gap > 0.0 && params.gap < params.height,
        "gap must be positive and smaller than the field height"
    );
    assert!(params.thickness > 0.0, "thickness must be positive");
    let pitch = params.width / (params.baffles as f64 + 1.0);
    assert!(
        pitch > params.thickness,
        "too many baffles for the field width"
    );
    let mut obstacles = Vec::with_capacity(params.baffles);
    for i in 1..=params.baffles {
        let x = i as f64 * pitch - params.thickness / 2.0;
        let wall = if i % 2 == 1 {
            // Attached to the top border, opening at the bottom.
            Rect::new(x, params.gap, x + params.thickness, params.height)
        } else {
            // Attached to the bottom border, opening at the top.
            Rect::new(x, 0.0, x + params.thickness, params.height - params.gap)
        };
        obstacles.push(wall.to_polygon());
    }
    Field::with_obstacles(params.width, params.height, obstacles)
}

/// The debris field of `examples/disaster_zone.rs`: two collapsed
/// buildings, a triangular debris pile and an irregular flooded area
/// in an 800 m field.
pub fn disaster_zone_field() -> Field {
    Field::with_obstacles(
        800.0,
        800.0,
        vec![
            Rect::new(250.0, 100.0, 420.0, 220.0).to_polygon(),
            Rect::new(500.0, 420.0, 640.0, 620.0).to_polygon(),
            Polygon::new(vec![
                Point::new(120.0, 420.0),
                Point::new(300.0, 520.0),
                Point::new(140.0, 620.0),
            ]),
            Polygon::new(vec![
                Point::new(520.0, 120.0),
                Point::new(700.0, 160.0),
                Point::new(680.0, 300.0),
                Point::new(560.0, 260.0),
            ]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::free_space_connected;

    #[test]
    fn campus_grid_matches_example_layout() {
        let f = campus_grid_field(&CampusGridParams::default());
        assert_eq!(f.obstacles().len(), 9);
        assert!(f.is_free(Point::new(10.0, 10.0)), "corner clear");
        assert!(!f.is_free(Point::new(200.0, 200.0)), "inside a building");
        assert!(f.is_free(Point::new(120.0, 400.0)), "street clear");
        assert!(free_space_connected(&f, 10.0));
    }

    #[test]
    fn corridor_is_connected_and_blocks() {
        let p = CorridorParams::default();
        let f = corridor_field(&p);
        assert_eq!(f.obstacles().len(), 3);
        assert!(free_space_connected(&f, 10.0));
        assert!(f.is_free(Point::new(1.0, 1.0)), "base corner clear");
        // first baffle hangs from the top; its opening is at the bottom
        let pitch = p.width / 4.0;
        assert!(!f.is_free(Point::new(pitch, p.height / 2.0)));
        assert!(f.is_free(Point::new(pitch, p.gap / 2.0)));
    }

    #[test]
    fn disaster_zone_matches_example() {
        let f = disaster_zone_field();
        assert_eq!(f.obstacles().len(), 4);
        assert!(free_space_connected(&f, 10.0));
    }

    #[test]
    #[should_panic(expected = "exceeds the field")]
    fn oversized_campus_rejected() {
        campus_grid_field(&CampusGridParams {
            blocks_x: 10,
            ..CampusGridParams::default()
        });
    }
}
