//! Initial sensor distributions (§6 of the paper).

use crate::Field;
use msn_geom::{Point, Rect};
use rand::Rng;

/// Samples `n` sensor positions uniformly at random in the free space
/// of `sub` (a sub-rectangle of the field) — the paper's *clustered*
/// initial distribution uses `sub = [0, 500]²` inside the 1 km field.
///
/// Uses rejection sampling against obstacles; gives up and panics if
/// the acceptance rate collapses (sub-area essentially fully blocked).
///
/// # Panics
///
/// Panics if `sub` has no free space (after 10 000·n rejected draws).
///
/// # Examples
///
/// ```
/// use msn_field::{scatter_clustered, Field};
/// use msn_geom::Rect;
/// use rand::SeedableRng;
///
/// let field = Field::open(1000.0, 1000.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let pts = scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 240, &mut rng);
/// assert_eq!(pts.len(), 240);
/// assert!(pts.iter().all(|p| p.x <= 500.0 && p.y <= 500.0));
/// ```
pub fn scatter_clustered<R: Rng>(field: &Field, sub: Rect, n: usize, rng: &mut R) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    let max_attempts = 10_000 * n.max(1);
    while out.len() < n {
        assert!(
            attempts < max_attempts,
            "could not sample free points in {sub}: area blocked by obstacles?"
        );
        attempts += 1;
        let p = Point::new(
            rng.gen_range(sub.min.x..=sub.max.x),
            rng.gen_range(sub.min.y..=sub.max.y),
        );
        if field.is_free(p) {
            out.push(p);
        }
    }
    out
}

/// Samples `n` positions uniformly at random over the whole field's
/// free space — the paper's alternative *uniform* initial distribution
/// and the target layout of the VOR/Minimax "explosion" phase.
///
/// # Panics
///
/// Panics if the field has no free space (after 10 000·n rejected
/// draws).
pub fn scatter_uniform<R: Rng>(field: &Field, n: usize, rng: &mut R) -> Vec<Point> {
    scatter_clustered(field, field.bounds(), n, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn clustered_points_stay_in_sub_area_and_free() {
        let f = crate::two_obstacle_field();
        let sub = Rect::new(0.0, 0.0, 500.0, 500.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let pts = scatter_clustered(&f, sub, 200, &mut rng);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            assert!(sub.contains(*p));
            assert!(f.is_free(*p));
        }
    }

    #[test]
    fn uniform_points_spread_over_field() {
        let f = Field::open(1000.0, 1000.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let pts = scatter_uniform(&f, 500, &mut rng);
        let right_half = pts.iter().filter(|p| p.x > 500.0).count();
        // statistically impossible to be outside this wide band
        assert!(right_half > 150 && right_half < 350, "got {right_half}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let f = Field::open(100.0, 100.0);
        let a = scatter_uniform(&f, 10, &mut SmallRng::seed_from_u64(9));
        let b = scatter_uniform(&f, 10, &mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "blocked")]
    fn fully_blocked_sub_area_panics() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(-1.0, -1.0, 51.0, 51.0).to_polygon()],
        );
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = scatter_clustered(&f, Rect::new(0.0, 0.0, 50.0, 50.0), 1, &mut rng);
    }
}
