//! ASCII rendering of sensor layouts.
//!
//! The paper's Figures 3 and 8 show sensor layouts graphically; in a
//! terminal-only reproduction we render them as character rasters so
//! that the example binaries and figure harnesses can show *where*
//! sensors ended up, not just a coverage number.

use crate::{CoverageGrid, Field};
use msn_geom::Point;

/// Options for [`ascii_layout`].
#[derive(Debug, Clone)]
pub struct AsciiOptions {
    /// Output width in characters.
    pub width: usize,
    /// Output height in characters (terminal cells are ~2:1, so half
    /// the width looks square).
    pub height: usize,
    /// Character for obstacle cells.
    pub obstacle: char,
    /// Character for covered free cells.
    pub covered: char,
    /// Character for uncovered free cells.
    pub uncovered: char,
    /// Character for cells containing a sensor.
    pub sensor: char,
    /// Character for the base-station cell.
    pub base: char,
}

impl Default for AsciiOptions {
    fn default() -> Self {
        AsciiOptions {
            width: 72,
            height: 36,
            obstacle: '#',
            covered: ':',
            uncovered: ' ',
            sensor: 'o',
            base: 'B',
        }
    }
}

/// Renders the field, sensing coverage and sensor positions as an
/// ASCII raster (top row = top of the field).
///
/// # Examples
///
/// ```
/// use msn_field::{ascii_layout, AsciiOptions, Field};
/// use msn_geom::Point;
///
/// let field = Field::open(100.0, 100.0);
/// let art = ascii_layout(&field, &[Point::new(50.0, 50.0)], 30.0, &AsciiOptions::default());
/// assert!(art.contains('o'));
/// assert!(art.starts_with('+'));
/// ```
pub fn ascii_layout(field: &Field, sensors: &[Point], rs: f64, opts: &AsciiOptions) -> String {
    let b = field.bounds();
    let cw = b.width() / opts.width as f64;
    let ch = b.height() / opts.height as f64;
    // Coverage on a matching grid resolution (at least as fine as 2 m).
    let grid = CoverageGrid::new(field, cw.min(ch).max(1.0));
    let mask = grid.covered_mask(sensors, rs);

    let mut rows: Vec<Vec<char>> = Vec::with_capacity(opts.height);
    for row in 0..opts.height {
        let mut line = Vec::with_capacity(opts.width);
        for col in 0..opts.width {
            let p = Point::new(
                b.min.x + (col as f64 + 0.5) * cw,
                b.max.y - (row as f64 + 0.5) * ch,
            );
            let c = if !field.is_free(p) {
                opts.obstacle
            } else {
                // covered?
                let gx = ((p.x - b.min.x) / grid.cell_size()) as usize;
                let gy = ((p.y - b.min.y) / grid.cell_size()) as usize;
                let covered = gx < grid.nx() && gy < grid.ny() && mask[gy * grid.nx() + gx];
                if covered {
                    opts.covered
                } else {
                    opts.uncovered
                }
            };
            line.push(c);
        }
        rows.push(line);
    }
    // Overlay sensors and base station.
    let mut plot = |p: Point, c: char| {
        if !b.contains(p) {
            return;
        }
        let col = (((p.x - b.min.x) / cw) as usize).min(opts.width - 1);
        let row_from_bottom = (((p.y - b.min.y) / ch) as usize).min(opts.height - 1);
        let row = opts.height - 1 - row_from_bottom;
        rows[row][col] = c;
    };
    for s in sensors {
        plot(*s, opts.sensor);
    }
    plot(Point::ORIGIN, opts.base);

    let horiz: String = std::iter::repeat_n('-', opts.width).collect();
    let mut out = String::with_capacity((opts.width + 3) * (opts.height + 2));
    out.push('+');
    out.push_str(&horiz);
    out.push_str("+\n");
    for line in rows {
        out.push('|');
        out.extend(line);
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&horiz);
    out.push('+');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    #[test]
    fn renders_expected_dimensions() {
        let f = Field::open(100.0, 100.0);
        let opts = AsciiOptions {
            width: 20,
            height: 10,
            ..AsciiOptions::default()
        };
        let art = ascii_layout(&f, &[], 10.0, &opts);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + 2 border lines
        assert!(lines.iter().all(|l| l.chars().count() == 22));
    }

    #[test]
    fn base_station_at_bottom_left() {
        let f = Field::open(100.0, 100.0);
        let opts = AsciiOptions {
            width: 20,
            height: 10,
            ..AsciiOptions::default()
        };
        let art = ascii_layout(&f, &[], 10.0, &opts);
        let lines: Vec<&str> = art.lines().collect();
        // last content row, first column inside the border
        let bottom = lines[lines.len() - 2];
        assert_eq!(bottom.chars().nth(1), Some('B'));
    }

    #[test]
    fn obstacles_and_sensors_visible() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 40.0, 60.0, 60.0).to_polygon()],
        );
        let sensors = [Point::new(80.0, 80.0)];
        let art = ascii_layout(&f, &sensors, 15.0, &AsciiOptions::default());
        assert!(art.contains('#'), "obstacle rendered");
        assert!(art.contains('o'), "sensor rendered");
        assert!(art.contains(':'), "coverage rendered");
    }
}
