//! Free-space connectivity checks.

use crate::Field;
use std::collections::VecDeque;

/// Returns `true` if the field's free space is connected when sampled
/// on a grid with cells of side `cell` meters (4-connectivity flood
/// fill).
///
/// The paper requires "any two points in the non-obstacle areas of the
/// field can be connected by a continuous path" (§3.1); the
/// random-obstacle workload of §6.4 rejects obstacle sets that violate
/// this. A `cell` around half the narrowest corridor you care about is
/// a good choice (the evaluation uses 10 m for 1 km fields, whose
/// narrowest designed exit is 30 m).
///
/// Returns `true` for a field with no free cells at all (vacuously
/// connected).
///
/// # Panics
///
/// Panics if `cell` is not strictly positive.
pub fn free_space_connected(field: &Field, cell: f64) -> bool {
    assert!(cell > 0.0, "cell size must be positive");
    let b = field.bounds();
    let nx = (b.width() / cell).ceil() as usize;
    let ny = (b.height() / cell).ceil() as usize;
    let center = |ix: usize, iy: usize| {
        msn_geom::Point::new(
            b.min.x + (ix as f64 + 0.5) * cell,
            b.min.y + (iy as f64 + 0.5) * cell,
        )
    };
    let mut free = vec![false; nx * ny];
    let mut first = None;
    let mut free_total = 0usize;
    for iy in 0..ny {
        for ix in 0..nx {
            if field.is_free(center(ix, iy)) {
                free[iy * nx + ix] = true;
                free_total += 1;
                if first.is_none() {
                    first = Some((ix, iy));
                }
            }
        }
    }
    let Some(start) = first else {
        return true;
    };
    let mut seen = vec![false; nx * ny];
    let mut queue = VecDeque::new();
    seen[start.1 * nx + start.0] = true;
    queue.push_back(start);
    let mut reached = 0usize;
    while let Some((ix, iy)) = queue.pop_front() {
        reached += 1;
        let mut push = |jx: usize, jy: usize| {
            let idx = jy * nx + jx;
            if free[idx] && !seen[idx] {
                seen[idx] = true;
                queue.push_back((jx, jy));
            }
        };
        if ix > 0 {
            push(ix - 1, iy);
        }
        if ix + 1 < nx {
            push(ix + 1, iy);
        }
        if iy > 0 {
            push(ix, iy - 1);
        }
        if iy + 1 < ny {
            push(ix, iy + 1);
        }
    }
    reached == free_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    #[test]
    fn open_field_is_connected() {
        assert!(free_space_connected(&Field::open(100.0, 100.0), 5.0));
    }

    #[test]
    fn full_wall_partitions() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(45.0, 0.0, 55.0, 100.0).to_polygon()],
        );
        assert!(!free_space_connected(&f, 5.0));
    }

    #[test]
    fn wall_with_gap_stays_connected() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(45.0, 0.0, 55.0, 80.0).to_polygon()],
        );
        assert!(free_space_connected(&f, 5.0));
    }

    #[test]
    fn two_walls_forming_a_seal_partition() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![
                Rect::new(45.0, 0.0, 55.0, 60.0).to_polygon(),
                Rect::new(40.0, 55.0, 60.0, 100.0).to_polygon(),
            ],
        );
        assert!(!free_space_connected(&f, 2.5));
    }

    #[test]
    fn fully_blocked_field_is_vacuously_connected() {
        let f = Field::with_obstacles(
            10.0,
            10.0,
            vec![Rect::new(-1.0, -1.0, 11.0, 11.0).to_polygon()],
        );
        assert!(free_space_connected(&f, 2.0));
    }
}
