//! The random-obstacle workload of §6.4.

use crate::{free_space_connected, Field};
use msn_geom::{Point, Rect};
use rand::Rng;

/// Parameters for [`random_obstacle_field`].
///
/// Defaults follow §6.4: between 1 and 4 rectangular obstacles of
/// random size, possibly overlapping, never partitioning the field,
/// inside a 1 km × 1 km field.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomObstacleParams {
    /// Field width (m).
    pub width: f64,
    /// Field height (m).
    pub height: f64,
    /// Inclusive range of the number of obstacles.
    pub count: (usize, usize),
    /// Inclusive range of obstacle side lengths (m).
    pub side: (f64, f64),
    /// Protected radius around the base station at the origin that
    /// obstacles must not invade (keeps the reference point reachable).
    pub base_clearance: f64,
    /// Grid cell used for the connectivity check (m).
    pub connectivity_cell: f64,
}

impl Default for RandomObstacleParams {
    fn default() -> Self {
        RandomObstacleParams {
            width: 1000.0,
            height: 1000.0,
            count: (1, 4),
            side: (80.0, 400.0),
            base_clearance: 60.0,
            connectivity_cell: 10.0,
        }
    }
}

/// Generates a field with 1–4 random rectangular obstacles that do not
/// partition the free space (rejection-sampled), as in §6.4.
///
/// Obstacles may overlap one another, producing compound rectilinear
/// shapes. The whole *set* is rejected and redrawn if it disconnects
/// the field or swallows the base-station corner.
///
/// # Panics
///
/// Panics if no valid obstacle set is found after 1 000 redraws
/// (parameters that leave no room for connectivity).
///
/// # Examples
///
/// ```
/// use msn_field::{free_space_connected, random_obstacle_field, RandomObstacleParams};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
/// let field = random_obstacle_field(&RandomObstacleParams::default(), &mut rng);
/// assert!(free_space_connected(&field, 10.0));
/// ```
pub fn random_obstacle_field<R: Rng>(params: &RandomObstacleParams, rng: &mut R) -> Field {
    assert!(params.count.0 >= 1 && params.count.0 <= params.count.1);
    assert!(params.side.0 > 0.0 && params.side.0 <= params.side.1);
    for _ in 0..1000 {
        let k = rng.gen_range(params.count.0..=params.count.1);
        let mut obstacles = Vec::with_capacity(k);
        for _ in 0..k {
            let w = rng.gen_range(params.side.0..=params.side.1);
            let h = rng.gen_range(params.side.0..=params.side.1);
            let x = rng.gen_range(0.0..=(params.width - w).max(0.0));
            let y = rng.gen_range(0.0..=(params.height - h).max(0.0));
            obstacles.push(Rect::new(x, y, x + w, y + h));
        }
        // Keep the base-station corner clear.
        let base = Point::ORIGIN;
        if obstacles
            .iter()
            .any(|r| r.dist_to_point(base) < params.base_clearance)
        {
            continue;
        }
        let field = Field::with_obstacles(
            params.width,
            params.height,
            obstacles.iter().map(Rect::to_polygon).collect(),
        );
        if free_space_connected(&field, params.connectivity_cell) {
            return field;
        }
    }
    panic!("no connected obstacle layout found after 1000 attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_fields_are_valid() {
        let params = RandomObstacleParams::default();
        for seed in 0..20 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let f = random_obstacle_field(&params, &mut rng);
            let n = f.obstacles().len();
            assert!((1..=4).contains(&n), "got {n} obstacles");
            assert!(free_space_connected(&f, params.connectivity_cell));
            assert!(
                f.is_free(Point::new(1.0, 1.0)),
                "base corner must stay free"
            );
        }
    }

    #[test]
    fn respects_count_range() {
        let params = RandomObstacleParams {
            count: (3, 3),
            ..RandomObstacleParams::default()
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let f = random_obstacle_field(&params, &mut rng);
        assert_eq!(f.obstacles().len(), 3);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let params = RandomObstacleParams::default();
        let f1 = random_obstacle_field(&params, &mut SmallRng::seed_from_u64(77));
        let f2 = random_obstacle_field(&params, &mut SmallRng::seed_from_u64(77));
        assert_eq!(f1.obstacles().len(), f2.obstacles().len());
        for (a, b) in f1.obstacles().iter().zip(f2.obstacles()) {
            assert_eq!(a.vertices(), b.vertices());
        }
    }
}
