//! Incremental coverage tracking.

use crate::CoverageGrid;
use msn_geom::Point;

/// Incremental counterpart of [`CoverageGrid::covered_count`]: keeps a
/// per-cell count of covering sensors so that moving one sensor costs
/// two disk stamps (`O(disk)`) instead of a full `O(N · disk)`
/// re-rasterization.
///
/// Moves are recorded lazily ([`CoverageTracker::set_sensor`] is
/// `O(1)`) and reconciled on the next query: if few sensors moved
/// since the last query the tracker stamps their old disks out and
/// their new disks in; if most of the fleet moved it rebuilds the
/// counts outright, so a query is never more expensive than the full
/// rasterization it replaces.
///
/// Exactness: the stamps use the same disk kernel and the same
/// center-distance predicate as [`CoverageGrid::covered_mask`], so
/// [`CoverageTracker::coverage`] equals
/// [`CoverageGrid::coverage`] *bit-for-bit* at every instant —
/// `covered_mask` remains the reference oracle (property-tested in
/// `tests/properties.rs`). Sensors may sit outside the field; their
/// disks clip to the raster exactly as the oracle's do.
///
/// # Examples
///
/// ```
/// use msn_field::{CoverageGrid, CoverageTracker, Field};
/// use msn_geom::Point;
///
/// let field = Field::open(100.0, 100.0);
/// let grid = CoverageGrid::new(&field, 2.0);
/// let mut sensors = vec![Point::new(20.0, 20.0), Point::new(80.0, 80.0)];
/// let mut tracker = CoverageTracker::new(grid.clone(), &sensors, 15.0);
/// assert_eq!(tracker.coverage(), grid.coverage(&sensors, 15.0));
/// sensors[0] = Point::new(50.0, 50.0);
/// tracker.set_sensor(0, sensors[0]);
/// assert_eq!(tracker.coverage(), grid.coverage(&sensors, 15.0));
/// ```
#[derive(Debug, Clone)]
pub struct CoverageTracker {
    grid: CoverageGrid,
    rs: f64,
    /// Per-cell count of sensors covering it (free cells only).
    counts: Vec<u32>,
    /// Number of free cells with a positive count.
    covered: usize,
    /// Positions the counts currently reflect.
    synced: Vec<Point>,
    /// Latest positions reported via `set_sensor`.
    current: Vec<Point>,
    /// Sensors whose `current` may differ from `synced`.
    dirty: Vec<u32>,
    is_dirty: Vec<bool>,
}

impl CoverageTracker {
    /// Builds counts for `sensors` on `grid` with sensing radius `rs`.
    pub fn new(grid: CoverageGrid, sensors: &[Point], rs: f64) -> Self {
        let mut tracker = CoverageTracker {
            counts: vec![0; grid.nx() * grid.ny()],
            covered: 0,
            synced: sensors.to_vec(),
            current: sensors.to_vec(),
            dirty: Vec::new(),
            is_dirty: vec![false; sensors.len()],
            grid,
            rs,
        };
        for i in 0..tracker.synced.len() {
            let p = tracker.synced[i];
            tracker.stamp(p, 1);
        }
        tracker
    }

    /// The raster the tracker measures on.
    #[inline]
    pub fn grid(&self) -> &CoverageGrid {
        &self.grid
    }

    /// The sensing radius.
    #[inline]
    pub fn rs(&self) -> f64 {
        self.rs
    }

    /// Number of tracked sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// Whether the tracker follows zero sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Records sensor `i`'s new position. `O(1)`: the disk stamps are
    /// deferred to the next coverage query.
    #[inline]
    pub fn set_sensor(&mut self, i: usize, p: Point) {
        self.current[i] = p;
        if !self.is_dirty[i] {
            self.is_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Adds or removes one sensor's disk from the counts.
    fn stamp(&mut self, p: Point, delta: i32) {
        let grid = &self.grid;
        let counts = &mut self.counts;
        let covered = &mut self.covered;
        grid.disk_free_cells(p, self.rs, &mut |idx| {
            if delta > 0 {
                counts[idx] += 1;
                if counts[idx] == 1 {
                    *covered += 1;
                }
            } else {
                counts[idx] -= 1;
                if counts[idx] == 0 {
                    *covered -= 1;
                }
            }
        });
    }

    /// Applies pending moves: incremental re-stamps when few sensors
    /// moved, a full rebuild when stamping out + in would cost more.
    fn sync(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        msn_obs::counter("cov.syncs", 1);
        msn_obs::value("cov.dirty", self.dirty.len() as f64);
        if 2 * self.dirty.len() >= self.current.len() {
            msn_obs::counter("cov.rebuilds", 1);
            self.counts.fill(0);
            self.covered = 0;
            for i in 0..self.current.len() {
                let p = self.current[i];
                self.stamp(p, 1);
                self.is_dirty[i] = false;
            }
            self.synced.copy_from_slice(&self.current);
            self.dirty.clear();
        } else {
            while let Some(i) = self.dirty.pop() {
                let i = i as usize;
                self.is_dirty[i] = false;
                let (from, to) = (self.synced[i], self.current[i]);
                if from != to {
                    msn_obs::counter("cov.restamps", 1);
                    self.stamp(from, -1);
                    self.stamp(to, 1);
                    self.synced[i] = to;
                }
            }
        }
    }

    /// Number of covered free cells at the current positions.
    pub fn covered_cells(&mut self) -> usize {
        self.sync();
        self.covered
    }

    /// Coverage fraction at the current positions — equal to
    /// `self.grid().coverage(&positions, self.rs())` bit-for-bit.
    ///
    /// Returns 0 when the field has no free cells.
    pub fn coverage(&mut self) -> f64 {
        self.sync();
        if self.grid.free_cells() == 0 {
            return 0.0;
        }
        self.covered as f64 / self.grid.free_cells() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;
    use msn_geom::Rect;

    fn obstacle_grid() -> (Field, CoverageGrid) {
        let field = Field::with_obstacles(
            300.0,
            300.0,
            vec![Rect::new(80.0, 80.0, 180.0, 140.0).to_polygon()],
        );
        let grid = CoverageGrid::new(&field, 5.0);
        (field, grid)
    }

    #[test]
    fn matches_oracle_after_single_moves() {
        let (_, grid) = obstacle_grid();
        let mut sensors = vec![
            Point::new(30.0, 30.0),
            Point::new(200.0, 200.0),
            Point::new(150.0, 60.0),
        ];
        let mut tracker = CoverageTracker::new(grid.clone(), &sensors, 40.0);
        assert_eq!(tracker.coverage(), grid.coverage(&sensors, 40.0));
        for (i, to) in [
            (0, Point::new(260.0, 40.0)),
            (2, Point::new(150.0, 250.0)),
            (1, Point::new(-20.0, 150.0)), // leaves the field
            (1, Point::new(150.0, 110.0)), // re-enters, inside the obstacle
        ] {
            sensors[i] = to;
            tracker.set_sensor(i, to);
            assert_eq!(tracker.coverage(), grid.coverage(&sensors, 40.0));
            assert_eq!(tracker.covered_cells(), grid.covered_count(&sensors, 40.0));
        }
    }

    #[test]
    fn batched_moves_trigger_rebuild_and_stay_exact() {
        let (_, grid) = obstacle_grid();
        let mut sensors: Vec<Point> = (0..10)
            .map(|i| Point::new(15.0 + 28.0 * i as f64, 20.0))
            .collect();
        let mut tracker = CoverageTracker::new(grid.clone(), &sensors, 35.0);
        // move everyone before querying: the sync path is a rebuild
        for (i, s) in sensors.iter_mut().enumerate() {
            *s = Point::new(s.x, 240.0 - 10.0 * i as f64);
            tracker.set_sensor(i, *s);
        }
        assert_eq!(tracker.coverage(), grid.coverage(&sensors, 35.0));
    }

    #[test]
    fn redundant_sets_are_noops() {
        let (_, grid) = obstacle_grid();
        let sensors = vec![Point::new(100.0, 200.0)];
        let mut tracker = CoverageTracker::new(grid.clone(), &sensors, 50.0);
        let before = tracker.coverage();
        for _ in 0..5 {
            tracker.set_sensor(0, sensors[0]);
        }
        assert_eq!(tracker.coverage(), before);
        assert_eq!(tracker.len(), 1);
        assert!(!tracker.is_empty());
        assert_eq!(tracker.rs(), 50.0);
        assert_eq!(tracker.grid().free_cells(), grid.free_cells());
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let (_, grid) = obstacle_grid();
        let mut tracker = CoverageTracker::new(grid, &[], 40.0);
        assert_eq!(tracker.coverage(), 0.0);
        assert!(tracker.is_empty());
    }
}
