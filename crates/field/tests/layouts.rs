//! Geometry invariants of the parametric layout constructors
//! (`campus_grid_field`, `corridor_field`, `disaster_zone_field`):
//! every obstacle polygon lies inside the field bounds and is
//! non-degenerate, and the base station corner (the origin, where
//! `SimConfig::paper` anchors `O`) stays in free space — a layout
//! that buries the base would make every deployment scheme
//! vacuously disconnected.

use msn_field::{
    campus_grid_field, corridor_field, disaster_zone_field, CampusGridParams, CorridorParams, Field,
};
use msn_geom::Point;

/// The base-station reference point of `SimConfig::paper`.
const BASE: Point = Point::ORIGIN;

fn assert_layout_invariants(field: &Field, what: &str) {
    let bounds = field.bounds();
    assert!(
        !field.obstacles().is_empty(),
        "{what}: layouts must produce at least one obstacle"
    );
    for (i, polygon) in field.obstacles().iter().enumerate() {
        assert!(
            polygon.vertices().len() >= 3,
            "{what}: obstacle {i} is not a polygon"
        );
        assert!(
            polygon.area() > 0.0,
            "{what}: obstacle {i} is degenerate (area {})",
            polygon.area()
        );
        for v in polygon.vertices() {
            assert!(
                v.x >= bounds.min.x
                    && v.x <= bounds.max.x
                    && v.y >= bounds.min.y
                    && v.y <= bounds.max.y,
                "{what}: obstacle {i} vertex {v:?} escapes the bounds {bounds:?}"
            );
        }
    }
    assert!(
        field.in_bounds(BASE),
        "{what}: base station is outside the field"
    );
    assert!(
        field.is_free(BASE),
        "{what}: base station is buried in an obstacle"
    );
}

#[test]
fn campus_grid_default_geometry() {
    let params = CampusGridParams::default();
    let field = campus_grid_field(&params);
    assert_layout_invariants(&field, "campus default");
    assert_eq!(
        field.obstacles().len(),
        params.blocks_x * params.blocks_y,
        "one building per block"
    );
    // every building is an axis-aligned square of the configured side
    for building in field.obstacles() {
        let area = building.area();
        assert!(
            (area - params.building * params.building).abs() < 1e-6,
            "building area {area}"
        );
    }
    // the street between the first two buildings is walkable
    let street_x = params.margin + params.building + params.street / 2.0;
    assert!(field.is_free(Point::new(street_x, params.margin + params.building / 2.0)));
}

#[test]
fn campus_grid_parameter_sweep_stays_valid() {
    for (blocks_x, blocks_y, building, street, margin) in [
        (1, 1, 100.0, 50.0, 10.0),
        (2, 4, 60.0, 30.0, 15.0),
        (4, 2, 120.0, 40.0, 25.0),
    ] {
        let params = CampusGridParams {
            width: 900.0,
            height: 900.0,
            blocks_x,
            blocks_y,
            building,
            street,
            margin,
        };
        let field = campus_grid_field(&params);
        assert_layout_invariants(&field, &format!("campus {blocks_x}x{blocks_y}"));
        assert_eq!(field.obstacles().len(), blocks_x * blocks_y);
    }
}

#[test]
#[should_panic(expected = "exceeds the field")]
fn campus_grid_rejects_overflowing_grids() {
    campus_grid_field(&CampusGridParams {
        width: 300.0,
        height: 300.0,
        ..CampusGridParams::default()
    });
}

#[test]
fn corridor_default_geometry() {
    let params = CorridorParams::default();
    let field = corridor_field(&params);
    assert_layout_invariants(&field, "corridor default");
    assert_eq!(
        field.obstacles().len(),
        params.baffles,
        "one wall per baffle"
    );
    // each baffle leaves its gap open: the free end of wall i is
    // walkable at the wall's x position
    let pitch = params.width / (params.baffles as f64 + 1.0);
    for i in 1..=params.baffles {
        let x = i as f64 * pitch;
        let y_open = if i % 2 == 1 {
            params.gap / 2.0 // attached to the top, open at the bottom
        } else {
            params.height - params.gap / 2.0
        };
        assert!(
            field.is_free(Point::new(x, y_open)),
            "baffle {i} gap at ({x}, {y_open}) is blocked"
        );
        let y_wall = if i % 2 == 1 {
            params.height / 2.0 + params.gap / 2.0
        } else {
            params.height / 2.0 - params.gap / 2.0
        };
        assert!(
            !field.is_free(Point::new(x, y_wall)),
            "baffle {i} wall at ({x}, {y_wall}) is missing"
        );
    }
}

#[test]
fn corridor_parameter_sweep_stays_valid() {
    for (baffles, gap, thickness) in [(1, 50.0, 10.0), (2, 200.0, 60.0), (6, 80.0, 20.0)] {
        let params = CorridorParams {
            width: 1000.0,
            height: 600.0,
            baffles,
            gap,
            thickness,
        };
        let field = corridor_field(&params);
        assert_layout_invariants(&field, &format!("corridor {baffles} baffles"));
        assert_eq!(field.obstacles().len(), baffles);
    }
}

#[test]
fn disaster_zone_geometry() {
    let field = disaster_zone_field();
    assert_layout_invariants(&field, "disaster zone");
    // mixed obstacle shapes: at least one non-quadrilateral
    assert!(
        field.obstacles().iter().any(|p| p.vertices().len() == 3),
        "the debris pile triangle is part of the layout"
    );
    assert!(field.obstacles().len() >= 4, "buildings + pile + flood");
}
