//! Property-based tests for fields, coverage and workloads.

use msn_field::{
    free_space_connected, random_obstacle_field, scatter_clustered, scatter_uniform, CoverageGrid,
    CoverageTracker, Field, RandomObstacleParams,
};
use msn_geom::{Point, Rect, Segment};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn obstacle_field(rects: &[(f64, f64, f64, f64)]) -> Field {
    Field::with_obstacles(
        1000.0,
        1000.0,
        rects
            .iter()
            .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h).to_polygon())
            .collect(),
    )
}

proptest! {
    #[test]
    fn scanline_disk_stamp_matches_chord_oracle(
        rects in prop::collection::vec(
            (50.0..900.0f64, 50.0..900.0f64, 20.0..250.0f64, 20.0..250.0f64),
            0..4,
        ),
        centers in prop::collection::vec((-100.0..1100.0f64, -100.0..1100.0f64), 1..12),
        rs in 0.0..200.0f64,
        cell in 2.0..40.0f64,
    ) {
        // The scanline stamp must visit exactly the free in-disk cells
        // the per-cell chord test visits, in the same order — centers
        // off the field, radii below a cell, and centers parked on
        // cell boundaries included.
        let field = obstacle_field(&rects);
        let grid = CoverageGrid::new(&field, cell);
        for &(x, y) in &centers {
            let s = Point::new(x, y);
            prop_assert_eq!(
                grid.disk_cells(s, rs),
                grid.disk_cells_chord(s, rs),
                "center {} rs {} cell {}", s, rs, cell
            );
            // snap the center onto an exact cell-boundary coordinate
            let snapped = Point::new((x / cell).floor() * cell, (y / cell).floor() * cell);
            prop_assert_eq!(
                grid.disk_cells(snapped, rs),
                grid.disk_cells_chord(snapped, rs),
                "snapped center {} rs {} cell {}", snapped, rs, cell
            );
        }
    }

    #[test]
    fn coverage_into_scratch_reuse_is_bitwise_stable(
        pts in prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 0..25),
        rs in 5.0..150.0f64,
    ) {
        let field = Field::open(1000.0, 1000.0);
        let grid = CoverageGrid::new(&field, 10.0);
        let sensors: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut scratch = Vec::new();
        // growing prefixes reuse the same scratch mask; each result
        // must equal the allocating path bit for bit
        for k in 0..=sensors.len() {
            let with_scratch = grid.coverage_into(&sensors[..k], rs, &mut scratch);
            let fresh = grid.coverage(&sensors[..k], rs);
            prop_assert_eq!(with_scratch.to_bits(), fresh.to_bits());
        }
    }

    #[test]
    fn coverage_is_monotone_in_sensor_count(
        pts in prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..30),
        rs in 20.0..120.0f64,
    ) {
        let field = Field::open(1000.0, 1000.0);
        let grid = CoverageGrid::new(&field, 10.0);
        let sensors: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut prev = 0.0;
        for k in 1..=sensors.len() {
            let cov = grid.coverage(&sensors[..k], rs);
            prop_assert!(cov + 1e-12 >= prev, "coverage dropped when adding a sensor");
            prev = cov;
        }
    }

    #[test]
    fn coverage_is_monotone_in_radius(
        pts in prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..15),
    ) {
        let field = Field::open(1000.0, 1000.0);
        let grid = CoverageGrid::new(&field, 10.0);
        let sensors: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut prev = 0.0;
        for rs in [10.0, 30.0, 60.0, 120.0] {
            let cov = grid.coverage(&sensors, rs);
            prop_assert!(cov + 1e-12 >= prev);
            prev = cov;
        }
    }

    #[test]
    fn free_points_are_never_inside_obstacles(
        ox in 100.0..700.0f64, oy in 100.0..700.0f64,
        w in 50.0..250.0f64, h in 50.0..250.0f64,
        px in 0.0..1000.0f64, py in 0.0..1000.0f64,
    ) {
        let field = obstacle_field(&[(ox, oy, w, h)]);
        let p = Point::new(px, py);
        let inside = px > ox && px < ox + w && py > oy && py < oy + h;
        if inside {
            prop_assert!(!field.is_free(p));
        }
        if field.is_free(p) {
            prop_assert!(!inside);
        }
    }

    #[test]
    fn segment_free_agrees_with_first_hit(
        ox in 200.0..600.0f64, oy in 200.0..600.0f64,
        ax in 0.0..1000.0f64, ay in 0.0..1000.0f64,
        bx in 0.0..1000.0f64, by in 0.0..1000.0f64,
    ) {
        let field = obstacle_field(&[(ox, oy, 150.0, 150.0)]);
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        prop_assume!(field.is_free(a) && field.is_free(b));
        let seg = Segment::new(a, b);
        if field.segment_free(&seg) {
            // an unobstructed segment may still graze a wall; only a
            // strict interior hit contradicts segment_free
            if let Some((t, _)) = field.first_hit(&seg) {
                let p = seg.at(t);
                prop_assert!(field.nearest_obstacle_dist(p) < 1e-3,
                    "hit point must lie on an obstacle boundary");
            }
        }
    }

    #[test]
    fn scattered_points_are_free_and_in_bounds(n in 1usize..60, seed in 0u64..500) {
        let field = obstacle_field(&[(300.0, 300.0, 200.0, 200.0)]);
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = scatter_uniform(&field, n, &mut rng);
        prop_assert_eq!(pts.len(), n);
        for p in &pts {
            prop_assert!(field.is_free(*p));
            prop_assert!(field.in_bounds(*p));
        }
    }

    #[test]
    fn clustered_points_respect_sub_area(seed in 0u64..500) {
        let field = Field::open(1000.0, 1000.0);
        let sub = Rect::new(100.0, 200.0, 400.0, 500.0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = scatter_clustered(&field, sub, 20, &mut rng);
        for p in &pts {
            prop_assert!(sub.contains(*p));
        }
    }

    #[test]
    fn incremental_tracker_equals_full_rasterization_oracle(
        starts in prop::collection::vec((0.0..600.0f64, 0.0..600.0f64), 1..20),
        // moves may land outside the field (sensors leaving and
        // re-entering): the tracker must clip exactly like the oracle
        moves in prop::collection::vec(
            (0usize..20, -150.0..750.0f64, -150.0..750.0f64, prop::bool::ANY),
            1..60,
        ),
        rs in 15.0..90.0f64,
    ) {
        let field = obstacle_field(&[(150.0, 150.0, 180.0, 120.0), (400.0, 50.0, 90.0, 300.0)]);
        let grid = CoverageGrid::new(&field, 10.0);
        let mut sensors: Vec<Point> =
            starts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut tracker = CoverageTracker::new(grid.clone(), &sensors, rs);
        prop_assert_eq!(tracker.coverage(), grid.coverage(&sensors, rs));
        for &(i, x, y, query) in &moves {
            let i = i % sensors.len();
            sensors[i] = Point::new(x, y);
            tracker.set_sensor(i, sensors[i]);
            // querying only sometimes exercises both sync paths:
            // incremental re-stamps and whole-fleet rebuilds
            if query {
                let oracle_mask = grid.covered_mask(&sensors, rs);
                let oracle_count = oracle_mask.iter().filter(|&&c| c).count();
                prop_assert_eq!(tracker.covered_cells(), oracle_count);
                prop_assert_eq!(tracker.coverage(), grid.coverage(&sensors, rs));
            }
        }
        let oracle = grid.coverage(&sensors, rs);
        prop_assert_eq!(tracker.coverage(), oracle, "final positions diverged from oracle");
    }

    #[test]
    fn coverage_tracker_stays_oracle_exact_under_churn_and_obstacle_mutation(
        starts in prop::collection::vec((0.0..600.0f64, 0.0..600.0f64), 1..16),
        rounds in prop::collection::vec(
            (
                prop::collection::vec(
                    (0u8..3, 0usize..16, -150.0..750.0f64, -150.0..750.0f64),
                    1..6,
                ),
                0u8..4,
            ),
            1..10,
        ),
        rs in 15.0..90.0f64,
    ) {
        // The dynamic-world tier: sensor failure is a teleport to the
        // far off-field parking lot (World::remove_sensor), revival a
        // teleport back, and obstacle events rebuild the grid and
        // re-track the surviving fleet (the engine's restart-on-event
        // path). Coverage must stay bit-identical to the full
        // rasterization oracle after every round. Per round, op kind
        // 0 moves a sensor, 1 parks it, 2 revives it; the round tag
        // 2 adds an obstacle, 3 removes the newest one.
        let mut field = obstacle_field(&[(150.0, 150.0, 180.0, 120.0)]);
        let mut sensors: Vec<Point> =
            starts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let mut grid = CoverageGrid::new(&field, 10.0);
        let mut tracker = CoverageTracker::new(grid.clone(), &sensors, rs);
        let mut added = 0usize;
        for (ops, mutate) in rounds {
            for (op, i, x, y) in ops {
                let i = i % sensors.len();
                sensors[i] = match op {
                    1 => Point::new(-1.0e7 - i as f64 * 360.0, -1.0e7),
                    _ => Point::new(x, y),
                };
                tracker.set_sensor(i, sensors[i]);
            }
            match mutate {
                2 => {
                    let r = Rect::new(400.0 + added as f64 * 5.0, 50.0, 490.0, 350.0);
                    field.push_obstacle(r.to_polygon());
                    added += 1;
                    grid = CoverageGrid::new(&field, 10.0);
                    tracker = CoverageTracker::new(grid.clone(), &sensors, rs);
                }
                3 if !field.obstacles().is_empty() => {
                    field.remove_obstacle(field.obstacles().len() - 1);
                    grid = CoverageGrid::new(&field, 10.0);
                    tracker = CoverageTracker::new(grid.clone(), &sensors, rs);
                }
                _ => {}
            }
            let oracle_mask = grid.covered_mask(&sensors, rs);
            let oracle_count = oracle_mask.iter().filter(|&&c| c).count();
            prop_assert_eq!(tracker.covered_cells(), oracle_count);
            prop_assert_eq!(tracker.coverage(), grid.coverage(&sensors, rs));
        }
    }

    #[test]
    fn random_obstacle_fields_never_partition(seed in 0u64..200) {
        let params = RandomObstacleParams::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = random_obstacle_field(&params, &mut rng);
        prop_assert!(free_space_connected(&field, params.connectivity_cell));
        prop_assert!(field.is_free(Point::new(1.0, 1.0)), "base corner stays free");
    }
}
