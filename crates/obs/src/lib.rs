//! Zero-perturbation observability: hierarchical spans, named
//! counters and value statistics behind a thread-local collector.
//!
//! The simulation loop needs a profiler (crates.io is unreachable, so
//! this is hand-rolled in the shim spirit) that is *incapable* of
//! changing simulation output:
//!
//! * probes never touch RNG state and never feed back into the code
//!   under observation — they only read the monotonic clock and write
//!   into a side table;
//! * when no collector is installed on the current thread every probe
//!   is a cheap early-out (one thread-local check), so instrumented
//!   crates pay near-nothing in unprofiled runs;
//! * the `obs-off` feature compiles every probe down to a literal
//!   no-op for overhead audits.
//!
//! # Model
//!
//! A collector is installed per thread with [`start`] and drained
//! with [`finish`], which returns a [`Report`]. In between:
//!
//! * [`span`] opens a named, timed region; the returned [`SpanGuard`]
//!   closes it on drop. Spans nest: a span opened while another is
//!   active becomes its child, and repeated entries of the same name
//!   under the same parent accumulate into one node (total/count/max)
//!   — so a per-tick phase probed 3 000 times is one tree node, not
//!   3 000.
//! * [`counter`] bumps a named monotonic counter.
//! * [`value`] records a sample into a named running statistic
//!   (count/sum/min/max), e.g. dirty-set sizes or move distances.
//!
//! Reports [`merge`](Report::merge) associatively, so per-run reports
//! aggregate into per-cell profiles. Names are `&'static str` by
//! design: probes allocate nothing on the hot path except the first
//! time a span name appears under a new parent.
//!
//! ```
//! msn_obs::start();
//! {
//!     let _t = msn_obs::span("tick");
//!     let _p = msn_obs::span("plan");
//!     msn_obs::counter("planned", 1);
//!     msn_obs::value("dirty", 17.0);
//! }
//! let report = msn_obs::finish();
//! # #[cfg(not(feature = "obs-off"))]
//! assert_eq!(report.unwrap().spans[0].children[0].name, "plan");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(not(feature = "obs-off"))]
use std::cell::RefCell;
#[cfg(not(feature = "obs-off"))]
use std::collections::BTreeMap;
#[cfg(not(feature = "obs-off"))]
use std::time::Instant;

// ---------------------------------------------------------------- report

/// One node of a finished span tree: accumulated wall time, entry
/// count and worst single entry for a named region, plus children in
/// first-entered order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Total nanoseconds across all entries (children included).
    pub total_ns: u64,
    /// Number of times the span was entered.
    pub count: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
    /// Child spans, in first-entered order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Time spent in this span but outside its children: `total_ns`
    /// minus the children's totals (saturating — clock jitter can put
    /// a child a hair over its parent).
    pub fn self_ns(&self) -> u64 {
        let inner: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(inner)
    }
}

/// A named monotonic counter's final value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Counter name as passed to [`counter`].
    pub name: String,
    /// Sum of all deltas.
    pub total: u64,
}

/// Running statistic of a named value stream (count/sum/min/max).
#[derive(Debug, Clone, PartialEq)]
pub struct ValueStat {
    /// Value name as passed to [`value`].
    pub name: String,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl ValueStat {
    /// Mean sample, or 0 when no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything one collector gathered between [`start`] and
/// [`finish`]. Counters and values are sorted by name; spans keep
/// first-entered order (deterministic for deterministic code paths).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// Wall-clock nanoseconds between [`start`] and [`finish`].
    pub wall_ns: u64,
    /// Top-level spans.
    pub spans: Vec<SpanNode>,
    /// Final counter values, sorted by name.
    pub counters: Vec<Counter>,
    /// Value statistics, sorted by name.
    pub values: Vec<ValueStat>,
}

impl Report {
    /// Folds `other` into `self`: wall times add, span trees merge by
    /// name (position-independent), counters and value stats combine.
    /// Associative, so per-run reports aggregate into per-cell
    /// profiles in any grouping — merge them in a fixed order when
    /// byte-stable output matters.
    pub fn merge(&mut self, other: &Report) {
        self.wall_ns += other.wall_ns;
        merge_spans(&mut self.spans, &other.spans);
        for c in &other.counters {
            match self.counters.iter_mut().find(|mine| mine.name == c.name) {
                Some(mine) => mine.total += c.total,
                None => self.counters.push(c.clone()),
            }
        }
        self.counters.sort_by(|a, b| a.name.cmp(&b.name));
        for v in &other.values {
            match self.values.iter_mut().find(|mine| mine.name == v.name) {
                Some(mine) => {
                    mine.count += v.count;
                    mine.sum += v.sum;
                    mine.min = mine.min.min(v.min);
                    mine.max = mine.max.max(v.max);
                }
                None => self.values.push(v.clone()),
            }
        }
        self.values.sort_by(|a, b| a.name.cmp(&b.name));
    }

    /// A counter's total, or 0 when it never fired.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.total)
    }

    /// A value stream's statistics, if any sample was recorded.
    pub fn value_stat(&self, name: &str) -> Option<&ValueStat> {
        self.values.iter().find(|v| v.name == name)
    }

    /// A top-level span by name.
    pub fn span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find(|s| s.name == name)
    }
}

fn merge_spans(into: &mut Vec<SpanNode>, from: &[SpanNode]) {
    for node in from {
        match into.iter_mut().find(|mine| mine.name == node.name) {
            Some(mine) => {
                mine.total_ns += node.total_ns;
                mine.count += node.count;
                mine.max_ns = mine.max_ns.max(node.max_ns);
                merge_spans(&mut mine.children, &node.children);
            }
            None => into.push(node.clone()),
        }
    }
}

// ------------------------------------------------------------- collector

#[cfg(not(feature = "obs-off"))]
struct Node {
    name: &'static str,
    total_ns: u64,
    count: u64,
    max_ns: u64,
    children: Vec<usize>,
}

#[cfg(not(feature = "obs-off"))]
struct Collector {
    started: Instant,
    nodes: Vec<Node>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    counters: BTreeMap<&'static str, u64>,
    // (count, sum, min, max)
    values: BTreeMap<&'static str, (u64, f64, f64, f64)>,
}

#[cfg(not(feature = "obs-off"))]
thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Installs a fresh collector on the current thread, replacing (and
/// discarding) any previous one. Probes on this thread record until
/// [`finish`] drains it. No-op under `obs-off`.
pub fn start() {
    #[cfg(not(feature = "obs-off"))]
    COLLECTOR.with(|slot| {
        *slot.borrow_mut() = Some(Collector {
            started: Instant::now(),
            nodes: Vec::new(),
            roots: Vec::new(),
            stack: Vec::new(),
            counters: BTreeMap::new(),
            values: BTreeMap::new(),
        });
    });
}

/// Uninstalls the current thread's collector and returns its
/// [`Report`]; `None` when no collector was installed (or under
/// `obs-off`). Call with no [`SpanGuard`] alive — a guard outliving
/// its collector closes silently without recording.
pub fn finish() -> Option<Report> {
    #[cfg(not(feature = "obs-off"))]
    {
        COLLECTOR.with(|slot| slot.borrow_mut().take()).map(|col| {
            fn convert(col: &Collector, idx: usize) -> SpanNode {
                let node = &col.nodes[idx];
                SpanNode {
                    name: node.name.to_string(),
                    total_ns: node.total_ns,
                    count: node.count,
                    max_ns: node.max_ns,
                    children: node.children.iter().map(|&c| convert(col, c)).collect(),
                }
            }
            Report {
                wall_ns: col.started.elapsed().as_nanos() as u64,
                spans: col.roots.iter().map(|&i| convert(&col, i)).collect(),
                counters: col
                    .counters
                    .iter()
                    .map(|(&name, &total)| Counter {
                        name: name.to_string(),
                        total,
                    })
                    .collect(),
                values: col
                    .values
                    .iter()
                    .map(|(&name, &(count, sum, min, max))| ValueStat {
                        name: name.to_string(),
                        count,
                        sum,
                        min,
                        max,
                    })
                    .collect(),
            }
        })
    }
    #[cfg(feature = "obs-off")]
    None
}

/// Whether a collector is installed on the current thread (probes are
/// recording). Always `false` under `obs-off`.
pub fn is_active() -> bool {
    #[cfg(not(feature = "obs-off"))]
    {
        COLLECTOR.with(|slot| slot.borrow().is_some())
    }
    #[cfg(feature = "obs-off")]
    false
}

/// Closes its [`span`] on drop. Inert (drop does nothing) when no
/// collector was installed at open time.
#[must_use = "a span measures the region until the guard drops"]
pub struct SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    opened: Option<Instant>,
}

/// Opens the named span on the current thread's collector; the region
/// lasts until the returned guard drops. Spans nest lexically;
/// repeated entries of one name under the same parent accumulate into
/// a single tree node. Inert when no collector is installed.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(not(feature = "obs-off"))]
    {
        let armed = COLLECTOR.with(|slot| {
            let mut slot = slot.borrow_mut();
            let Some(col) = slot.as_mut() else {
                return false;
            };
            let parent = col.stack.last().copied();
            let siblings = match parent {
                Some(top) => &col.nodes[top].children,
                None => &col.roots,
            };
            let existing = siblings
                .iter()
                .copied()
                .find(|&i| col.nodes[i].name == name);
            let idx = match existing {
                Some(i) => i,
                None => {
                    let i = col.nodes.len();
                    col.nodes.push(Node {
                        name,
                        total_ns: 0,
                        count: 0,
                        max_ns: 0,
                        children: Vec::new(),
                    });
                    match parent {
                        Some(top) => col.nodes[top].children.push(i),
                        None => col.roots.push(i),
                    }
                    i
                }
            };
            col.stack.push(idx);
            true
        });
        SpanGuard {
            // the clock is read *after* bookkeeping so the span
            // measures the region, not the probe
            opened: armed.then(Instant::now),
        }
    }
    #[cfg(feature = "obs-off")]
    {
        let _ = name;
        SpanGuard {}
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(not(feature = "obs-off"))]
        if let Some(opened) = self.opened {
            let elapsed = opened.elapsed().as_nanos() as u64;
            COLLECTOR.with(|slot| {
                let mut slot = slot.borrow_mut();
                // a guard can outlive its collector (finish() inside a
                // span): close silently rather than corrupt a newer one
                let Some(col) = slot.as_mut() else { return };
                let Some(idx) = col.stack.pop() else { return };
                let node = &mut col.nodes[idx];
                node.total_ns += elapsed;
                node.count += 1;
                node.max_ns = node.max_ns.max(elapsed);
            });
        }
    }
}

/// Adds `delta` to the named counter. Inert when no collector is
/// installed; no-op under `obs-off`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    #[cfg(not(feature = "obs-off"))]
    COLLECTOR.with(|slot| {
        if let Some(col) = slot.borrow_mut().as_mut() {
            *col.counters.entry(name).or_insert(0) += delta;
        }
    });
    #[cfg(feature = "obs-off")]
    {
        let _ = (name, delta);
    }
}

/// Records one sample into the named value statistic. Inert when no
/// collector is installed; no-op under `obs-off`.
#[inline]
pub fn value(name: &'static str, sample: f64) {
    #[cfg(not(feature = "obs-off"))]
    COLLECTOR.with(|slot| {
        if let Some(col) = slot.borrow_mut().as_mut() {
            let entry =
                col.values
                    .entry(name)
                    .or_insert((0, 0.0, f64::INFINITY, f64::NEG_INFINITY));
            entry.0 += 1;
            entry.1 += sample;
            entry.2 = entry.2.min(sample);
            entry.3 = entry.3.max(sample);
        }
    });
    #[cfg(feature = "obs-off")]
    {
        let _ = (name, sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_without_collector_are_inert() {
        assert!(!is_active());
        let _g = span("orphan");
        counter("orphan", 1);
        value("orphan", 1.0);
        assert_eq!(finish(), None);
    }

    #[cfg(not(feature = "obs-off"))]
    mod active {
        use super::super::*;

        #[test]
        fn spans_nest_and_accumulate() {
            start();
            assert!(is_active());
            for i in 0..3 {
                let _t = span("tick");
                {
                    let _p = span("plan");
                }
                if i == 0 {
                    let _m = span("motion");
                }
            }
            let report = finish().expect("collector installed");
            assert!(!is_active());
            assert_eq!(report.spans.len(), 1);
            let tick = report.span("tick").unwrap();
            assert_eq!(tick.count, 3);
            assert_eq!(tick.children.len(), 2);
            let plan = &tick.children[0];
            assert_eq!((plan.name.as_str(), plan.count), ("plan", 3));
            let motion = &tick.children[1];
            assert_eq!((motion.name.as_str(), motion.count), ("motion", 1));
            assert!(tick.total_ns >= plan.total_ns + motion.total_ns);
            assert!(plan.max_ns <= plan.total_ns);
            assert!(report.wall_ns >= tick.total_ns);
            // self time never exceeds the total
            assert!(tick.self_ns() <= tick.total_ns);
        }

        #[test]
        fn recursion_nests_under_itself() {
            fn walk(depth: usize) {
                let _g = span("walk");
                if depth > 0 {
                    walk(depth - 1);
                }
            }
            start();
            walk(2);
            let report = finish().unwrap();
            let outer = report.span("walk").unwrap();
            assert_eq!(outer.count, 1);
            assert_eq!(outer.children[0].name, "walk");
            assert_eq!(outer.children[0].count, 1);
        }

        #[test]
        fn counters_and_values_aggregate_sorted() {
            start();
            counter("b.syncs", 2);
            counter("a.rebuilds", 1);
            counter("b.syncs", 3);
            value("dirty", 4.0);
            value("dirty", 10.0);
            let report = finish().unwrap();
            assert_eq!(report.counter_total("b.syncs"), 5);
            assert_eq!(report.counter_total("a.rebuilds"), 1);
            assert_eq!(report.counter_total("absent"), 0);
            assert_eq!(report.counters[0].name, "a.rebuilds");
            let dirty = report.value_stat("dirty").unwrap();
            assert_eq!((dirty.count, dirty.sum), (2, 14.0));
            assert_eq!((dirty.min, dirty.max), (4.0, 10.0));
            assert_eq!(dirty.mean(), 7.0);
        }

        #[test]
        fn start_discards_previous_collector() {
            start();
            counter("old", 1);
            start();
            counter("new", 1);
            let report = finish().unwrap();
            assert_eq!(report.counter_total("old"), 0);
            assert_eq!(report.counter_total("new"), 1);
            assert_eq!(finish(), None, "second finish drains nothing");
        }

        #[test]
        fn merge_combines_reports() {
            start();
            {
                let _t = span("tick");
                let _p = span("plan");
                counter("syncs", 2);
                value("dirty", 3.0);
            }
            let mut a = finish().unwrap();
            start();
            {
                let _t = span("tick");
                let _m = span("motion");
                counter("syncs", 1);
                counter("rebuilds", 1);
                value("dirty", 9.0);
            }
            let b = finish().unwrap();
            let wall = a.wall_ns + b.wall_ns;
            a.merge(&b);
            assert_eq!(a.wall_ns, wall);
            let tick = a.span("tick").unwrap();
            assert_eq!(tick.count, 2);
            assert_eq!(tick.children.len(), 2, "children union under one parent");
            assert_eq!(a.counter_total("syncs"), 3);
            assert_eq!(a.counter_total("rebuilds"), 1);
            let dirty = a.value_stat("dirty").unwrap();
            assert_eq!((dirty.count, dirty.min, dirty.max), (2, 3.0, 9.0));
        }
    }

    #[cfg(feature = "obs-off")]
    mod off {
        use super::super::*;

        #[test]
        fn probes_compile_to_nothing() {
            start();
            let _g = span("tick");
            counter("syncs", 1);
            value("dirty", 1.0);
            assert!(!is_active());
            assert_eq!(finish(), None);
        }
    }
}
