//! Axis-aligned rectangles.

use crate::{clamp, Point, Polygon, Segment, EPS};
use std::fmt;

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// Used for the sensing-field bounding box and for rectangular obstacles.
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Rect};
/// let field = Rect::new(0.0, 0.0, 1000.0, 1000.0);
/// assert!(field.contains(Point::new(500.0, 500.0)));
/// assert_eq!(field.area(), 1_000_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x1 > x2` or `y1 > y2`.
    #[inline]
    pub fn new(x1: f64, y1: f64, x2: f64, y2: f64) -> Self {
        debug_assert!(x1 <= x2 && y1 <= y2, "rect corners out of order");
        Rect {
            min: Point::new(x1, y1),
            max: Point::new(x2, y2),
        }
    }

    /// Rectangle from two arbitrary corner points.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Returns `true` if `p` is inside the closed rectangle (with
    /// [`EPS`] slack).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x - EPS
            && p.x <= self.max.x + EPS
            && p.y >= self.min.y - EPS
            && p.y <= self.max.y + EPS
    }

    /// Returns `true` if `p` is strictly inside (no boundary slack).
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.min.x + EPS
            && p.x < self.max.x - EPS
            && p.y > self.min.y + EPS
            && p.y < self.max.y - EPS
    }

    /// Returns `true` if the two closed rectangles overlap.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x + EPS
            && other.min.x <= self.max.x + EPS
            && self.min.y <= other.max.y + EPS
            && other.min.y <= self.max.y + EPS
    }

    /// The point of the rectangle closest to `p` (i.e. `p` clamped).
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            clamp(p.x, self.min.x, self.max.x),
            clamp(p.y, self.min.y, self.max.y),
        )
    }

    /// The rectangle grown by `margin` on every side (shrunk if negative).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if shrinking past a degenerate rectangle.
    pub fn inflated(&self, margin: f64) -> Rect {
        Rect::new(
            self.min.x - margin,
            self.min.y - margin,
            self.max.x + margin,
            self.max.y + margin,
        )
    }

    /// Corner points in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// The four edges as segments, counter-clockwise.
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// The rectangle as a counter-clockwise [`Polygon`].
    pub fn to_polygon(&self) -> Polygon {
        Polygon::new(self.corners().to_vec())
    }

    /// Distance from `p` to the rectangle (0 if inside).
    pub fn dist_to_point(&self, p: Point) -> f64 {
        p.dist(self.clamp_point(p))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rect[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions() {
        let r = Rect::new(1.0, 2.0, 4.0, 6.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), Point::new(2.5, 4.0));
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(4.0, 6.0), Point::new(1.0, 2.0));
        assert_eq!(r, Rect::new(1.0, 2.0, 4.0, 6.0));
    }

    #[test]
    fn containment_including_boundary() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert!(!r.contains_strict(Point::new(0.0, 5.0)));
        assert!(r.contains_strict(Point::new(5.0, 5.0)));
    }

    #[test]
    fn overlap() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(5.0, 5.0, 15.0, 15.0);
        let c = Rect::new(11.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // touching edges count as intersecting
        let d = Rect::new(10.0, 0.0, 20.0, 10.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn clamping_and_distance() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(r.clamp_point(Point::new(-3.0, 4.0)), Point::new(0.0, 4.0));
        assert_eq!(r.dist_to_point(Point::new(-3.0, 4.0)), 3.0);
        assert_eq!(r.dist_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(r.dist_to_point(Point::new(13.0, 14.0)), 5.0);
    }

    #[test]
    fn corners_and_edges_are_ccw() {
        let r = Rect::new(0.0, 0.0, 2.0, 1.0);
        let poly = r.to_polygon();
        assert!(poly.area() > 0.0, "CCW polygons have positive area");
        assert_eq!(poly.area(), 2.0);
        let perimeter: f64 = r.edges().iter().map(Segment::length).sum();
        assert_eq!(perimeter, 6.0);
    }

    #[test]
    fn inflation() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0).inflated(2.0);
        assert_eq!(r, Rect::new(-2.0, -2.0, 12.0, 12.0));
    }
}
