//! Circles and disks.

use crate::{approx_zero, clamp, Line, Point, Segment, EPS};
use std::fmt;

/// A circle (and the closed disk it bounds).
///
/// Models both sensing disks (radius `rs`) and communication disks
/// (radius `rc`) of a sensor.
///
/// # Examples
///
/// ```
/// use msn_geom::{Circle, Point};
/// let c = Circle::new(Point::new(0.0, 0.0), 2.0);
/// assert!(c.contains(Point::new(1.0, 1.0)));
/// assert!(!c.contains(Point::new(2.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (m), non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a circle.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius` is negative or non-finite.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "invalid radius");
        Circle { center, radius }
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Returns `true` if `p` lies in the closed disk (with [`EPS`] slack).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= (self.radius + EPS) * (self.radius + EPS)
    }

    /// Returns `true` if the two closed disks overlap.
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius + EPS
    }

    /// The point on the circle closest to `p` (undefined direction when
    /// `p` is the center; returns the point straight above the center).
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        match (p - self.center).normalized() {
            Some(dir) => self.center + dir * self.radius,
            None => self.center + Point::new(0.0, self.radius),
        }
    }

    /// The chord of `seg` inside the closed disk, if any.
    ///
    /// Returns the sub-segment of `seg` whose points all lie in the disk.
    /// Returns `None` when `seg` misses the disk entirely. A tangent
    /// touch returns a degenerate (zero-length) segment.
    pub fn clip_segment(&self, seg: Segment) -> Option<Segment> {
        let d = seg.delta();
        let len_sq = d.norm_sq();
        if approx_zero(len_sq) {
            return self.contains(seg.a).then_some(seg);
        }
        // |a + t d − c|² = r² as a quadratic in t.
        let f = seg.a - self.center;
        let a = len_sq;
        let b = 2.0 * f.dot(d);
        let c = f.norm_sq() - self.radius * self.radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        let sqrt_disc = disc.sqrt();
        let t0 = (-b - sqrt_disc) / (2.0 * a);
        let t1 = (-b + sqrt_disc) / (2.0 * a);
        let lo = t0.max(0.0);
        let hi = t1.min(1.0);
        if lo > hi + EPS {
            return None;
        }
        let lo = clamp(lo, 0.0, 1.0);
        let hi = clamp(hi, 0.0, 1.0);
        Some(Segment::new(seg.at(lo), seg.at(hi)))
    }

    /// Intersection points of the circle *boundary* with a segment,
    /// ordered by increasing parameter along the segment (0, 1 or 2
    /// points).
    pub fn intersect_segment(&self, seg: &Segment) -> Vec<Point> {
        let d = seg.delta();
        let len_sq = d.norm_sq();
        if approx_zero(len_sq) {
            return Vec::new();
        }
        let f = seg.a - self.center;
        let a = len_sq;
        let b = 2.0 * f.dot(d);
        let c = f.norm_sq() - self.radius * self.radius;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return Vec::new();
        }
        let sqrt_disc = disc.sqrt();
        let mut out = Vec::new();
        for t in [(-b - sqrt_disc) / (2.0 * a), (-b + sqrt_disc) / (2.0 * a)] {
            if (-1e-12..=1.0 + 1e-12).contains(&t) {
                let p = seg.at(clamp(t, 0.0, 1.0));
                if out.last().is_none_or(|q: &Point| !q.approx_eq(p)) {
                    out.push(p);
                }
            }
        }
        out
    }

    /// Intersection points of the circle boundary with an infinite line.
    pub fn intersect_line(&self, line: &Line) -> Vec<Point> {
        let proj = line.project(self.center);
        let h_sq = self.radius * self.radius - self.center.dist_sq(proj);
        if h_sq < -EPS {
            return Vec::new();
        }
        if h_sq <= EPS {
            return vec![proj];
        }
        let h = h_sq.sqrt();
        let dir = line.dir.normalized().expect("line has non-zero direction");
        vec![proj - dir * h, proj + dir * h]
    }

    /// Intersection points of two circle boundaries (0, 1 or 2 points).
    ///
    /// Concentric or identical circles return no points.
    pub fn intersect_circle(&self, other: &Circle) -> Vec<Point> {
        let d = self.center.dist(other.center);
        if approx_zero(d) {
            return Vec::new();
        }
        if d > self.radius + other.radius + EPS || d < (self.radius - other.radius).abs() - EPS {
            return Vec::new();
        }
        // Distance from self.center to the radical line.
        let a = (self.radius * self.radius - other.radius * other.radius + d * d) / (2.0 * d);
        let h_sq = self.radius * self.radius - a * a;
        let dir = (other.center - self.center) / d;
        let mid = self.center + dir * a;
        if h_sq <= EPS {
            return vec![mid];
        }
        let h = h_sq.sqrt();
        let off = dir.perp() * h;
        vec![mid + off, mid - off]
    }

    /// Area of the intersection (lens) of two disks.
    ///
    /// Used to predict sensing overlap between neighboring sensors.
    pub fn lens_area(&self, other: &Circle) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            let r = r1.min(r2);
            return std::f64::consts::PI * r * r;
        }
        let alpha = 2.0
            * ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1))
                .clamp(-1.0, 1.0)
                .acos();
        let beta = 2.0
            * ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2))
                .clamp(-1.0, 1.0)
                .acos();
        0.5 * r1 * r1 * (alpha - alpha.sin()) + 0.5 * r2 * r2 * (beta - beta.sin())
    }
}

impl fmt::Display for Circle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "circle({} r={:.3})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn unit() -> Circle {
        Circle::new(Point::ORIGIN, 1.0)
    }

    #[test]
    fn containment() {
        let c = unit();
        assert!(c.contains(Point::ORIGIN));
        assert!(c.contains(Point::new(1.0, 0.0))); // boundary included
        assert!(!c.contains(Point::new(1.001, 0.0)));
        assert!((c.area() - PI).abs() < 1e-12);
    }

    #[test]
    fn disk_overlap() {
        let a = unit();
        let b = Circle::new(Point::new(1.5, 0.0), 1.0);
        assert!(a.intersects(&b));
        let far = Circle::new(Point::new(3.0, 0.0), 1.0);
        assert!(!a.intersects(&far) || a.center.dist(far.center) <= 2.0 + EPS);
    }

    #[test]
    fn clip_segment_chord() {
        let c = Circle::new(Point::ORIGIN, 5.0);
        let s = Segment::new(Point::new(-10.0, 3.0), Point::new(10.0, 3.0));
        let chord = c.clip_segment(s).unwrap();
        assert!((chord.length() - 8.0).abs() < 1e-9);
        assert!(chord.a.x < chord.b.x, "chord preserves segment direction");
        // miss entirely
        let miss = Segment::new(Point::new(-10.0, 6.0), Point::new(10.0, 6.0));
        assert_eq!(c.clip_segment(miss), None);
        // fully inside
        let inside = Segment::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.0));
        assert_eq!(c.clip_segment(inside), Some(inside));
    }

    #[test]
    fn boundary_segment_intersections() {
        let c = Circle::new(Point::ORIGIN, 5.0);
        let s = Segment::new(Point::new(-10.0, 0.0), Point::new(10.0, 0.0));
        let pts = c.intersect_segment(&s);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].approx_eq(Point::new(-5.0, 0.0)));
        assert!(pts[1].approx_eq(Point::new(5.0, 0.0)));
        // one endpoint inside: a single crossing
        let s2 = Segment::new(Point::ORIGIN, Point::new(10.0, 0.0));
        assert_eq!(c.intersect_segment(&s2).len(), 1);
    }

    #[test]
    fn line_intersections() {
        let c = Circle::new(Point::new(0.0, 0.0), 5.0);
        let pts = c.intersect_line(&Line::horizontal(3.0));
        assert_eq!(pts.len(), 2);
        assert!((pts[0].x + 4.0).abs() < 1e-9 && (pts[1].x - 4.0).abs() < 1e-9);
        assert_eq!(c.intersect_line(&Line::horizontal(5.0)).len(), 1);
        assert!(c.intersect_line(&Line::horizontal(6.0)).is_empty());
    }

    #[test]
    fn circle_circle_intersections() {
        let a = Circle::new(Point::new(0.0, 0.0), 5.0);
        let b = Circle::new(Point::new(8.0, 0.0), 5.0);
        let pts = a.intersect_circle(&b);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!((p.dist(a.center) - 5.0).abs() < 1e-9);
            assert!((p.dist(b.center) - 5.0).abs() < 1e-9);
        }
        // tangent
        let t = Circle::new(Point::new(10.0, 0.0), 5.0);
        assert_eq!(a.intersect_circle(&t).len(), 1);
        // disjoint and concentric
        assert!(a
            .intersect_circle(&Circle::new(Point::new(20.0, 0.0), 5.0))
            .is_empty());
        assert!(a
            .intersect_circle(&Circle::new(Point::ORIGIN, 3.0))
            .is_empty());
    }

    #[test]
    fn lens_area_limits() {
        let a = unit();
        // identical circles: full disk
        assert!((a.lens_area(&a) - PI).abs() < 1e-12);
        // disjoint: zero
        let far = Circle::new(Point::new(5.0, 0.0), 1.0);
        assert_eq!(a.lens_area(&far), 0.0);
        // half-overlap sanity: monotone in distance
        let near = Circle::new(Point::new(0.5, 0.0), 1.0);
        let mid = Circle::new(Point::new(1.0, 0.0), 1.0);
        assert!(a.lens_area(&near) > a.lens_area(&mid));
        // containment: area of smaller disk
        let small = Circle::new(Point::new(0.2, 0.0), 0.3);
        assert!((a.lens_area(&small) - small.area()).abs() < 1e-12);
    }

    #[test]
    fn closest_boundary_point_directions() {
        let c = Circle::new(Point::new(1.0, 1.0), 2.0);
        let p = c.closest_boundary_point(Point::new(10.0, 1.0));
        assert!(p.approx_eq(Point::new(3.0, 1.0)));
        // degenerate: from the center
        let q = c.closest_boundary_point(c.center);
        assert!((q.dist(c.center) - 2.0).abs() < 1e-12);
    }
}
