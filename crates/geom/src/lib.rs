//! Planar geometry substrate for mobile-sensor-network deployment.
//!
//! This crate provides the 2-D primitives that every other crate in the
//! workspace builds on: [`Point`]/[`Vec2`], [`Segment`], [`Line`],
//! [`Circle`], [`Rect`], [`Polygon`], half-plane clipping
//! ([`HalfPlane::clip`]), convex hulls ([`convex_hull`]) and minimum
//! enclosing circles ([`min_enclosing_circle`]).
//!
//! All coordinates are `f64` meters. Comparisons use the crate-wide
//! tolerance [`EPS`]; the helpers [`approx_eq`] and [`approx_zero`] apply
//! it consistently.
//!
//! # Examples
//!
//! ```
//! use msn_geom::{Point, Circle, Segment};
//!
//! let disk = Circle::new(Point::new(0.0, 0.0), 40.0);
//! let chord = disk.clip_segment(Segment::new(
//!     Point::new(-100.0, 10.0),
//!     Point::new(100.0, 10.0),
//! )).expect("the horizontal line y=10 crosses the disk");
//! assert!((chord.length() - 2.0 * (40.0f64.powi(2) - 100.0).sqrt()).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circle;
mod halfplane;
mod hull;
mod line;
mod mec;
mod point;
mod polygon;
mod rect;
mod segment;

pub use circle::Circle;
pub use halfplane::HalfPlane;
pub use hull::convex_hull;
pub use line::Line;
pub use mec::min_enclosing_circle;
pub use point::{Point, Vec2};
pub use polygon::Polygon;
pub use rect::Rect;
pub use segment::Segment;

/// Crate-wide geometric tolerance, in meters.
///
/// The simulated fields are on the order of 10³ m, so `1e-9` m keeps
/// roughly six significant digits of slack above `f64` round-off.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` differ by at most [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` if `x` is within [`EPS`] of zero.
#[inline]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPS
}

/// Clamps `x` into `[lo, hi]`.
///
/// Identical to [`f64::clamp`] but tolerates `lo > hi` caused by
/// floating-point jitter (returns `lo` in that case) instead of panicking.
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if hi < lo {
        return lo;
    }
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-10));
        assert!(!approx_zero(1e-3));
    }

    #[test]
    fn clamp_tolerates_inverted_range() {
        assert_eq!(clamp(5.0, 0.0, 10.0), 5.0);
        assert_eq!(clamp(-1.0, 0.0, 10.0), 0.0);
        assert_eq!(clamp(11.0, 0.0, 10.0), 10.0);
        // inverted by jitter: returns lo rather than panicking
        assert_eq!(clamp(3.0, 1.0, 1.0 - 1e-15), 1.0);
    }
}
