//! Simple polygons.

use crate::{Point, Rect, Segment, EPS};
use std::fmt;

/// A simple polygon given by its vertices in order (no closing
/// repetition of the first vertex).
///
/// Obstacles in the sensing field are polygons; [`Polygon::new`] accepts
/// either winding and normalizes to counter-clockwise so that
/// boundary-following rules (left-hand/right-hand, §3.2 of the paper)
/// have a consistent orientation to work with.
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Polygon};
/// let tri = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 3.0),
/// ]);
/// assert_eq!(tri.area(), 6.0);
/// assert!(tri.contains(Point::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from vertices, normalizing winding to
    /// counter-clockwise.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 vertices are given.
    pub fn new(mut vertices: Vec<Point>) -> Self {
        assert!(vertices.len() >= 3, "a polygon needs at least 3 vertices");
        if signed_area(&vertices) < 0.0 {
            vertices.reverse();
        }
        Polygon { vertices }
    }

    /// The vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a polygon has at least 3 vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Area of the polygon (positive; vertices are stored CCW).
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices)
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Centroid (area-weighted).
    pub fn centroid(&self) -> Point {
        let mut acc = Point::ORIGIN;
        let mut area2 = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let w = a.cross(b);
            acc += (a + b) * w;
            area2 += w;
        }
        if area2.abs() <= EPS {
            // Degenerate: average the vertices.
            let mut s = Point::ORIGIN;
            for v in &self.vertices {
                s += *v;
            }
            return s / n as f64;
        }
        acc / (3.0 * area2)
    }

    /// Iterator over the edges, each from vertex `i` to vertex `i+1`
    /// (wrapping).
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Edge starting at vertex `i` (wrapping).
    pub fn edge(&self, i: usize) -> Segment {
        let n = self.vertices.len();
        Segment::new(self.vertices[i % n], self.vertices[(i + 1) % n])
    }

    /// Axis-aligned bounding box.
    pub fn bounding_box(&self) -> Rect {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        Rect::from_corners(min, max)
    }

    /// Returns `true` if `p` is inside the closed polygon.
    ///
    /// Boundary points (within [`EPS`]) count as inside. Uses the
    /// crossing-number rule for interior points.
    pub fn contains(&self, p: Point) -> bool {
        if self.on_boundary(p) {
            return true;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if (vi.y > p.y) != (vj.y > p.y) {
                let x_cross = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
            j = i;
        }
        inside
    }

    /// Returns `true` if `p` lies on the polygon boundary (within [`EPS`]).
    pub fn on_boundary(&self, p: Point) -> bool {
        self.edges().any(|e| e.dist_to_point(p) <= EPS)
    }

    /// Distance from `p` to the polygon boundary (regardless of side).
    pub fn boundary_dist(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.dist_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Distance from `p` to the polygon: 0 inside, otherwise the
    /// distance to the boundary.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        if self.contains(p) {
            0.0
        } else {
            self.boundary_dist(p)
        }
    }

    /// The boundary point closest to `p`.
    pub fn closest_boundary_point(&self, p: Point) -> Point {
        let mut best = self.vertices[0];
        let mut best_d = f64::INFINITY;
        for e in self.edges() {
            let q = e.closest_point(p);
            let d = q.dist(p);
            if d < best_d {
                best_d = d;
                best = q;
            }
        }
        best
    }

    /// Returns `true` if the segment intersects the closed polygon
    /// (touches the boundary or passes through the interior).
    pub fn intersects_segment(&self, seg: &Segment) -> bool {
        if self.contains(seg.a) || self.contains(seg.b) {
            return true;
        }
        self.edges().any(|e| e.intersect(seg).is_some())
    }

    /// The first parameter `t ∈ [0, 1]` at which `seg` touches the
    /// polygon boundary, together with the index of the edge hit.
    ///
    /// Returns `None` if the segment never meets the boundary (it may
    /// still be fully inside; callers that care should test
    /// [`Polygon::contains`] on `seg.a`).
    pub fn first_boundary_hit(&self, seg: &Segment) -> Option<(f64, usize)> {
        let mut best: Option<(f64, usize)> = None;
        let n = self.vertices.len();
        for i in 0..n {
            let e = self.edge(i);
            if let Some(t) = seg.first_hit(&e) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, i));
                }
            }
        }
        best
    }

    /// Returns `true` if two polygons overlap (share boundary or interior).
    pub fn intersects_polygon(&self, other: &Polygon) -> bool {
        if !self.bounding_box().intersects(&other.bounding_box()) {
            return false;
        }
        if self.contains(other.vertices[0]) || other.contains(self.vertices[0]) {
            return true;
        }
        self.edges()
            .any(|e| other.edges().any(|f| e.intersect(&f).is_some()))
    }

    /// Walks `dist` meters along the boundary from `start` (a boundary
    /// point on edge `edge_idx`), in CCW direction if `ccw` is true.
    ///
    /// Returns the end point and the index of the edge it lies on.
    /// Walking the perimeter exactly returns to the start.
    pub fn walk_boundary(
        &self,
        start: Point,
        edge_idx: usize,
        ccw: bool,
        dist: f64,
    ) -> (Point, usize) {
        debug_assert!(dist >= 0.0);
        let n = self.vertices.len();
        let mut idx = edge_idx % n;
        let mut pos = start;
        let mut remaining = dist;
        // Cap iterations at the laps implied by `dist` plus one, so a
        // degenerate polygon cannot loop forever.
        let laps = (dist / self.perimeter().max(EPS)).ceil() as usize + 2;
        for _ in 0..laps * n + n {
            let e = self.edge(idx);
            let target = if ccw { e.b } else { e.a };
            let avail = pos.dist(target);
            if remaining < avail - EPS {
                return (pos.step_toward(target, remaining), idx);
            }
            remaining -= avail;
            pos = target;
            idx = if ccw {
                (idx + 1) % n
            } else {
                (idx + n - 1) % n
            };
            if remaining <= EPS {
                return (pos, idx);
            }
        }
        (pos, idx)
    }
}

fn signed_area(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut s = 0.0;
    for i in 0..n {
        s += vertices[i].cross(vertices[(i + 1) % n]);
    }
    s / 2.0
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Rect::new(0.0, 0.0, 10.0, 10.0).to_polygon()
    }

    #[test]
    fn winding_is_normalized() {
        // clockwise input becomes CCW
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ]);
        assert!(cw.area() > 0.0);
        assert_eq!(cw.area(), 1.0);
    }

    #[test]
    fn area_perimeter_centroid() {
        let sq = square();
        assert_eq!(sq.area(), 100.0);
        assert_eq!(sq.perimeter(), 40.0);
        assert!(sq.centroid().approx_eq(Point::new(5.0, 5.0)));
    }

    #[test]
    fn containment() {
        let sq = square();
        assert!(sq.contains(Point::new(5.0, 5.0)));
        assert!(sq.contains(Point::new(0.0, 5.0))); // boundary
        assert!(sq.contains(Point::new(0.0, 0.0))); // corner
        assert!(!sq.contains(Point::new(-0.1, 5.0)));
        assert!(!sq.contains(Point::new(10.1, 10.1)));
    }

    #[test]
    fn concave_containment() {
        // L-shape
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(l.contains(Point::new(0.5, 3.0)));
        assert!(l.contains(Point::new(3.0, 0.5)));
        assert!(!l.contains(Point::new(3.0, 3.0)));
        assert_eq!(l.area(), 7.0);
    }

    #[test]
    fn distances() {
        let sq = square();
        assert_eq!(sq.dist_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(sq.dist_to_point(Point::new(-3.0, 5.0)), 3.0);
        assert_eq!(sq.boundary_dist(Point::new(5.0, 5.0)), 5.0);
        let cb = sq.closest_boundary_point(Point::new(5.0, 12.0));
        assert!(cb.approx_eq(Point::new(5.0, 10.0)));
    }

    #[test]
    fn segment_intersection() {
        let sq = square();
        let through = Segment::new(Point::new(-5.0, 5.0), Point::new(15.0, 5.0));
        assert!(sq.intersects_segment(&through));
        let (t, edge) = sq.first_boundary_hit(&through).unwrap();
        assert!((t - 0.25).abs() < 1e-9, "hits left edge at x=0");
        assert_eq!(edge, 3, "left edge is edge index 3 of a CCW rect");
        let miss = Segment::new(Point::new(-5.0, 15.0), Point::new(15.0, 15.0));
        assert!(!sq.intersects_segment(&miss));
        let inside = Segment::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(sq.intersects_segment(&inside));
        assert_eq!(sq.first_boundary_hit(&inside), None);
    }

    #[test]
    fn polygon_intersection() {
        let a = square();
        let b = Rect::new(5.0, 5.0, 15.0, 15.0).to_polygon();
        let c = Rect::new(20.0, 20.0, 25.0, 25.0).to_polygon();
        let inside = Rect::new(2.0, 2.0, 3.0, 3.0).to_polygon();
        assert!(a.intersects_polygon(&b));
        assert!(!a.intersects_polygon(&c));
        assert!(a.intersects_polygon(&inside), "containment counts");
    }

    #[test]
    fn boundary_walk_ccw_and_cw() {
        let sq = square();
        // start mid-bottom edge (edge 0 goes (0,0)->(10,0))
        let start = Point::new(5.0, 0.0);
        let (p, e) = sq.walk_boundary(start, 0, true, 3.0);
        assert!(p.approx_eq(Point::new(8.0, 0.0)));
        assert_eq!(e, 0);
        // walk past the corner
        let (p, e) = sq.walk_boundary(start, 0, true, 8.0);
        assert!(p.approx_eq(Point::new(10.0, 3.0)));
        assert_eq!(e, 1);
        // clockwise past the corner at (0,0)
        let (p, _e) = sq.walk_boundary(start, 0, false, 8.0);
        assert!(p.approx_eq(Point::new(0.0, 3.0)));
        // full perimeter returns to start
        let (p, _) = sq.walk_boundary(start, 0, true, 40.0);
        assert!(p.approx_eq(start));
    }

    #[test]
    fn bounding_box() {
        let tri = Polygon::new(vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 2.0),
            Point::new(3.0, 7.0),
        ]);
        assert_eq!(tri.bounding_box(), Rect::new(1.0, 1.0, 5.0, 7.0));
    }
}
