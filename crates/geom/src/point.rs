//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point (or position vector) in the plane, in meters.
///
/// `Point` doubles as a 2-D vector; the alias [`Vec2`] is provided for
/// signatures where the vector interpretation is clearer.
///
/// # Examples
///
/// ```
/// use msn_geom::Point;
/// let a = Point::new(3.0, 4.0);
/// assert_eq!(a.norm(), 5.0);
/// assert_eq!(a + a, Point::new(6.0, 8.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (m).
    pub x: f64,
    /// Vertical coordinate (m).
    pub y: f64,
}

/// Alias of [`Point`] used where a displacement (rather than a position)
/// is meant.
pub type Vec2 = Point;

impl Point {
    /// The origin `(0, 0)` — the paper's reference point `O`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Unit vector at angle `theta` radians from the positive x-axis.
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Point::new(theta.cos(), theta.sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (`self.x·other.y − self.y·other.x`).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Point::new(-self.y, self.x)
    }

    /// The vector rotated by `theta` radians counter-clockwise.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Angle of the vector in radians, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// The unit vector in the same direction, or `None` for a (near-)zero
    /// vector.
    #[inline]
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n <= crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }

    /// The midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Returns `true` if the point is within [`crate::EPS`] of `other`.
    #[inline]
    pub fn approx_eq(self, other: Point) -> bool {
        self.dist(other) <= crate::EPS
    }

    /// The point moved `dist` meters toward `target`.
    ///
    /// If `target` is closer than `dist` (or coincides with `self`),
    /// returns `target` — movement never overshoots.
    #[inline]
    pub fn step_toward(self, target: Point, dist: f64) -> Point {
        let d = self.dist(target);
        if d <= dist || d <= crate::EPS {
            target
        } else {
            self + (target - self) * (dist / d)
        }
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Point) {
        *self = *self + rhs;
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Point) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -4.0);
        assert_eq!(a + b, Point::new(4.0, -2.0));
        assert_eq!(b - a, Point::new(2.0, -6.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -2.0));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn norms_and_distances() {
        let p = Point::new(3.0, 4.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm_sq(), 25.0);
        assert_eq!(Point::ORIGIN.dist(p), 5.0);
        assert_eq!(Point::ORIGIN.dist_sq(p), 25.0);
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
        assert_eq!(a.perp(), b);
    }

    #[test]
    fn rotation_and_angle() {
        let a = Point::new(1.0, 0.0);
        let r = a.rotated(FRAC_PI_2);
        assert!(r.approx_eq(Point::new(0.0, 1.0)));
        assert!((Point::new(-1.0, 0.0).angle() - PI).abs() < 1e-12);
        assert!(Point::from_angle(0.3).approx_eq(Point::new(0.3f64.cos(), 0.3f64.sin())));
    }

    #[test]
    fn normalization() {
        assert!(Point::new(10.0, 0.0)
            .normalized()
            .unwrap()
            .approx_eq(Point::new(1.0, 0.0)));
        assert!(Point::ORIGIN.normalized().is_none());
    }

    #[test]
    fn lerp_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
    }

    #[test]
    fn step_toward_never_overshoots() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.step_toward(b, 10.0), b);
        assert_eq!(a.step_toward(b, 5.0), b);
        let half = a.step_toward(b, 2.5);
        assert!(half.approx_eq(Point::new(1.5, 2.0)));
        // degenerate: stepping toward itself stays put
        assert_eq!(a.step_toward(a, 1.0), a);
    }

    #[test]
    fn conversions_and_display() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
        assert_eq!(format!("{p}"), "(1.000, 2.000)");
    }
}
