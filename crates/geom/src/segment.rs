//! Line segments.

use crate::{approx_zero, clamp, Point, Vec2, EPS};
use std::fmt;

/// A directed line segment from [`Segment::a`] to [`Segment::b`].
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(s.length(), 10.0);
/// assert_eq!(s.dist_to_point(Point::new(5.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Displacement vector `b − a`.
    #[inline]
    pub fn delta(&self) -> Vec2 {
        self.b - self.a
    }

    /// Unit direction vector, or `None` for a degenerate (point) segment.
    #[inline]
    pub fn direction(&self) -> Option<Vec2> {
        self.delta().normalized()
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Parameter of the orthogonal projection of `p` onto the supporting
    /// line, clamped to `[0, 1]`.
    pub fn project_clamped(&self, p: Point) -> f64 {
        let d = self.delta();
        let len_sq = d.norm_sq();
        if approx_zero(len_sq) {
            return 0.0;
        }
        clamp((p - self.a).dot(d) / len_sq, 0.0, 1.0)
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        self.at(self.project_clamped(p))
    }

    /// Euclidean distance from `p` to the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// Returns `true` if `p` lies on the segment (within [`EPS`]).
    pub fn contains_point(&self, p: Point) -> bool {
        self.dist_to_point(p) <= EPS
    }

    /// Intersection of two segments.
    ///
    /// Returns the intersection point if the segments cross (including
    /// touching at endpoints). Collinear overlapping segments return an
    /// arbitrary shared point (an endpoint of the overlap). Returns `None`
    /// for disjoint segments.
    pub fn intersect(&self, other: &Segment) -> Option<Point> {
        let r = self.delta();
        let s = other.delta();
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if approx_zero(denom) {
            // Parallel. Collinear iff qp × r == 0.
            if !approx_zero(qp.cross(r)) {
                return None;
            }
            // Collinear: project other's endpoints on self.
            let len_sq = r.norm_sq();
            if approx_zero(len_sq) {
                // self is a point
                return other.contains_point(self.a).then_some(self.a);
            }
            let t0 = (other.a - self.a).dot(r) / len_sq;
            let t1 = (other.b - self.a).dot(r) / len_sq;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let lo_c = lo.max(0.0);
            let hi_c = hi.min(1.0);
            if lo_c <= hi_c + EPS {
                return Some(self.at(clamp(lo_c, 0.0, 1.0)));
            }
            return None;
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.at(clamp(t, 0.0, 1.0)))
        } else {
            None
        }
    }

    /// Parameter `t ∈ [0, 1]` of the *first* intersection with `other`
    /// along `self`'s direction, if any.
    ///
    /// For collinear overlaps this is the smallest parameter at which the
    /// segments share a point. Useful for motion sweeps ("when do I hit
    /// this wall?").
    pub fn first_hit(&self, other: &Segment) -> Option<f64> {
        let r = self.delta();
        let s = other.delta();
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if approx_zero(denom) {
            if !approx_zero(qp.cross(r)) {
                return None;
            }
            let len_sq = r.norm_sq();
            if approx_zero(len_sq) {
                return other.contains_point(self.a).then_some(0.0);
            }
            let t0 = (other.a - self.a).dot(r) / len_sq;
            let t1 = (other.b - self.a).dot(r) / len_sq;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            if hi < -EPS || lo > 1.0 + EPS {
                return None;
            }
            return Some(clamp(lo.max(0.0), 0.0, 1.0));
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(clamp(t, 0.0, 1.0))
        } else {
            None
        }
    }

    /// Minimum distance between two segments (0 when they intersect).
    pub fn dist_to_segment(&self, other: &Segment) -> f64 {
        if self.intersect(other).is_some() {
            return 0.0;
        }
        self.dist_to_point(other.a)
            .min(self.dist_to_point(other.b))
            .min(other.dist_to_point(self.a))
            .min(other.dist_to_point(self.b))
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} -> {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn basics() {
        let s = seg(0.0, 0.0, 6.0, 8.0);
        assert_eq!(s.length(), 10.0);
        assert_eq!(s.midpoint(), Point::new(3.0, 4.0));
        assert_eq!(s.reversed().a, s.b);
        assert!(s.direction().unwrap().approx_eq(Point::new(0.6, 0.8)));
        assert!(seg(1.0, 1.0, 1.0, 1.0).direction().is_none());
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert_eq!(s.closest_point(Point::new(-5.0, 3.0)), s.a);
        assert_eq!(s.closest_point(Point::new(15.0, 3.0)), s.b);
        assert_eq!(s.closest_point(Point::new(4.0, 3.0)), Point::new(4.0, 0.0));
        assert_eq!(s.dist_to_point(Point::new(4.0, 3.0)), 3.0);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 10.0);
        let s2 = seg(0.0, 10.0, 10.0, 0.0);
        let p = s1.intersect(&s2).unwrap();
        assert!(p.approx_eq(Point::new(5.0, 5.0)));
        assert_eq!(s1.first_hit(&s2), Some(0.5));
    }

    #[test]
    fn touching_at_endpoint_counts() {
        let s1 = seg(0.0, 0.0, 5.0, 5.0);
        let s2 = seg(5.0, 5.0, 10.0, 0.0);
        assert!(s1.intersect(&s2).unwrap().approx_eq(Point::new(5.0, 5.0)));
    }

    #[test]
    fn parallel_disjoint_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 1.0, 10.0, 1.0);
        assert_eq!(s1.intersect(&s2), None);
        assert_eq!(s1.first_hit(&s2), None);
    }

    #[test]
    fn collinear_overlap_reports_first_hit() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(4.0, 0.0, 20.0, 0.0);
        assert!(s1.intersect(&s2).is_some());
        assert_eq!(s1.first_hit(&s2), Some(0.4));
        let s3 = seg(11.0, 0.0, 20.0, 0.0);
        assert_eq!(s1.first_hit(&s3), None);
    }

    #[test]
    fn segment_distance() {
        let s1 = seg(0.0, 0.0, 10.0, 0.0);
        let s2 = seg(0.0, 3.0, 10.0, 3.0);
        assert_eq!(s1.dist_to_segment(&s2), 3.0);
        let crossing = seg(5.0, -1.0, 5.0, 1.0);
        assert_eq!(s1.dist_to_segment(&crossing), 0.0);
    }

    #[test]
    fn contains_point_on_boundary() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        assert!(s.contains_point(Point::new(0.0, 0.0)));
        assert!(s.contains_point(Point::new(10.0, 0.0)));
        assert!(s.contains_point(Point::new(3.0, 0.0)));
        assert!(!s.contains_point(Point::new(3.0, 0.1)));
    }
}
