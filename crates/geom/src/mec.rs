//! Minimum enclosing circles (Welzl's algorithm).

use crate::{approx_zero, Circle, Point, EPS};

/// Computes the minimum enclosing circle of a point set.
///
/// Implements Welzl's move-to-front algorithm, which runs in expected
/// `O(n)` time on shuffled input; this deterministic variant iterates
/// in the given order, which is `O(n³)` in the worst case but fast for
/// the few-hundred-point sets used here (Voronoi cell vertices for the
/// Minimax scheme).
///
/// Returns a zero-radius circle at the single point for singleton input,
/// and `None` for empty input.
///
/// # Examples
///
/// ```
/// use msn_geom::{min_enclosing_circle, Point};
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 1.0),
/// ];
/// let mec = min_enclosing_circle(&pts).expect("non-empty input");
/// assert!((mec.center.dist(Point::new(1.0, 0.0))) < 1e-9);
/// assert!((mec.radius - 1.0).abs() < 1e-9);
/// ```
pub fn min_enclosing_circle(points: &[Point]) -> Option<Circle> {
    if points.is_empty() {
        return None;
    }
    let mut circle = Circle::new(points[0], 0.0);
    for (i, &p) in points.iter().enumerate() {
        if in_circle(&circle, p) {
            continue;
        }
        // p must be on the boundary of the MEC of points[..=i].
        circle = Circle::new(p, 0.0);
        for (j, &q) in points[..i].iter().enumerate() {
            if in_circle(&circle, q) {
                continue;
            }
            // p and q on the boundary.
            circle = circle_from_two(p, q);
            for &r in &points[..j] {
                if !in_circle(&circle, r) {
                    circle = circle_from_three(p, q, r);
                }
            }
        }
    }
    Some(circle)
}

fn in_circle(c: &Circle, p: Point) -> bool {
    c.center.dist(p) <= c.radius + 1e-7
}

fn circle_from_two(a: Point, b: Point) -> Circle {
    Circle::new(a.midpoint(b), a.dist(b) / 2.0)
}

fn circle_from_three(a: Point, b: Point, c: Point) -> Circle {
    // Circumcircle; falls back to the best two-point circle for
    // (near-)collinear triples.
    let ab = b - a;
    let ac = c - a;
    let d = 2.0 * ab.cross(ac);
    if approx_zero(d) {
        let c1 = circle_from_two(a, b);
        let c2 = circle_from_two(a, c);
        let c3 = circle_from_two(b, c);
        let mut best = c1;
        for cand in [c2, c3] {
            if cand.radius > best.radius {
                best = cand;
            }
        }
        return best;
    }
    let ab_sq = ab.norm_sq();
    let ac_sq = ac.norm_sq();
    let ux = (ac.y * ab_sq - ab.y * ac_sq) / d;
    let uy = (ab.x * ac_sq - ac.x * ab_sq) / d;
    let center = a + Point::new(ux, uy);
    Circle::new(center, center.dist(a).max(EPS))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains_all(c: &Circle, pts: &[Point]) -> bool {
        pts.iter().all(|p| c.center.dist(*p) <= c.radius + 1e-6)
    }

    #[test]
    fn empty_and_singleton() {
        assert!(min_enclosing_circle(&[]).is_none());
        let c = min_enclosing_circle(&[Point::new(2.0, 3.0)]).unwrap();
        assert_eq!(c.center, Point::new(2.0, 3.0));
        assert_eq!(c.radius, 0.0);
    }

    #[test]
    fn two_points_diametral() {
        let c = min_enclosing_circle(&[Point::new(0.0, 0.0), Point::new(4.0, 0.0)]).unwrap();
        assert!(c.center.approx_eq(Point::new(2.0, 0.0)));
        assert!((c.radius - 2.0).abs() < 1e-9);
    }

    #[test]
    fn obtuse_triangle_uses_longest_side() {
        // Very flat triangle: MEC is the diametral circle of the long side.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(5.0, 0.1),
        ];
        let c = min_enclosing_circle(&pts).unwrap();
        assert!((c.radius - 5.0).abs() < 1e-3);
        assert!(contains_all(&c, &pts));
    }

    #[test]
    fn acute_triangle_uses_circumcircle() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ];
        let c = min_enclosing_circle(&pts).unwrap();
        assert!(contains_all(&c, &pts));
        // all three on the boundary
        for p in &pts {
            assert!((c.center.dist(*p) - c.radius).abs() < 1e-6);
        }
    }

    #[test]
    fn square_mec_is_circumscribed() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let c = min_enclosing_circle(&pts).unwrap();
        assert!(c.center.approx_eq(Point::new(1.0, 1.0)));
        assert!((c.radius - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn collinear_points() {
        let pts: Vec<Point> = (0..10).map(|i| Point::new(i as f64, i as f64)).collect();
        let c = min_enclosing_circle(&pts).unwrap();
        assert!(contains_all(&c, &pts));
        assert!((c.radius - 9.0 * 2f64.sqrt() / 2.0).abs() < 1e-6);
    }

    #[test]
    fn mec_radius_not_larger_than_any_candidate() {
        // MEC radius must be <= radius of circle centered at centroid.
        let pts: Vec<Point> = (0..40)
            .map(|i| {
                let a = i as f64;
                Point::new((a * 1.3).sin() * 10.0, (a * 0.7).cos() * 6.0)
            })
            .collect();
        let mec = min_enclosing_circle(&pts).unwrap();
        assert!(contains_all(&mec, &pts));
        let centroid = pts.iter().fold(Point::ORIGIN, |s, p| s + *p) / pts.len() as f64;
        let centroid_r = pts.iter().map(|p| p.dist(centroid)).fold(0.0, f64::max);
        assert!(mec.radius <= centroid_r + 1e-6);
    }
}
