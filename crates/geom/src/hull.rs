//! Convex hulls.

use crate::Point;

/// Computes the convex hull of a point set (Andrew's monotone chain,
/// `O(n log n)`).
///
/// Returns the hull vertices in counter-clockwise order without
/// repetition. Collinear points on hull edges are dropped. Degenerate
/// inputs return what is available: the empty set, a single point, or
/// the two extreme points of a collinear set.
///
/// # Examples
///
/// ```
/// use msn_geom::{convex_hull, Point};
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 1.0), // interior
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull.len(), 4);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| {
        a.x.partial_cmp(&b.x)
            .expect("finite coordinates")
            .then(a.y.partial_cmp(&b.y).expect("finite coordinates"))
    });
    pts.dedup_by(|a, b| a.approx_eq(*b));
    let n = pts.len();
    if n <= 2 {
        return pts;
    }
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= crate::EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let q = hull[hull.len() - 1];
            let r = hull[hull.len() - 2];
            if (q - r).cross(p - r) <= crate::EPS {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Polygon;

    #[test]
    fn square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        let poly = Polygon::new(hull);
        assert_eq!(poly.area(), 16.0);
    }

    #[test]
    fn collinear_points_collapse() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 2);
        assert_eq!(hull[0], Point::new(0.0, 0.0));
        assert_eq!(hull[1], Point::new(3.0, 3.0));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]).len(), 1);
        let dup = vec![Point::new(1.0, 1.0); 5];
        assert_eq!(convex_hull(&dup).len(), 1);
    }

    #[test]
    fn hull_is_ccw_and_contains_all_points() {
        let pts: Vec<Point> = (0..50)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point::new(a.sin() * (i as f64 % 7.0), a.cos() * (i as f64 % 5.0))
            })
            .collect();
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        let poly = Polygon::new(hull);
        assert!(poly.area() > 0.0);
        for p in &pts {
            assert!(
                poly.contains(*p) || poly.boundary_dist(*p) < 1e-6,
                "hull must contain every input point, missing {p}"
            );
        }
    }
}
