//! Half-planes and convex clipping.

use crate::{approx_zero, Point, Vec2, EPS};
use std::fmt;

/// A closed half-plane `{ x : n · (x − p) ≤ 0 }`.
///
/// `n` is the *outward* normal: points on the side `n` points toward are
/// cut away by [`HalfPlane::clip`]. The bisector half-plane used for
/// Voronoi cells keeps everything at least as close to one site as to
/// another; see [`HalfPlane::bisector`].
///
/// # Examples
///
/// ```
/// use msn_geom::{HalfPlane, Point};
/// let left = HalfPlane::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
/// assert!(left.contains(Point::new(-1.0, 5.0)));
/// assert!(!left.contains(Point::new(1.0, 5.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// A point on the boundary line.
    pub point: Point,
    /// Outward normal (non-zero; need not be unit length).
    pub normal: Vec2,
}

impl HalfPlane {
    /// Half-plane through `point` with outward normal `normal`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `normal` is (near-)zero.
    #[inline]
    pub fn new(point: Point, normal: Vec2) -> Self {
        debug_assert!(
            !approx_zero(normal.norm()),
            "half-plane normal must be non-zero"
        );
        HalfPlane { point, normal }
    }

    /// The half-plane of points at least as close to `site` as to
    /// `other` — one Voronoi constraint.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the two sites coincide.
    pub fn bisector(site: Point, other: Point) -> Self {
        HalfPlane::new(site.midpoint(other), other - site)
    }

    /// Signed distance-like value: negative inside, positive outside
    /// (scaled by `|normal|`).
    #[inline]
    pub fn value(&self, p: Point) -> f64 {
        self.normal.dot(p - self.point)
    }

    /// Returns `true` if `p` is in the closed half-plane.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.value(p) <= EPS * self.normal.norm().max(1.0)
    }

    /// Clips a convex polygon (vertex list, CCW) against the half-plane.
    ///
    /// Returns the surviving polygon vertices (possibly empty). The
    /// input need not be closed; the output is CCW if the input was.
    pub fn clip(&self, polygon: &[Point]) -> Vec<Point> {
        let n = polygon.len();
        if n == 0 {
            return Vec::new();
        }
        let tol = EPS * self.normal.norm().max(1.0);
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = polygon[i];
            let nxt = polygon[(i + 1) % n];
            let vc = self.value(cur);
            let vn = self.value(nxt);
            let cur_in = vc <= tol;
            let nxt_in = vn <= tol;
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary; interpolate.
                let t = vc / (vc - vn);
                let crossing = cur.lerp(nxt, t);
                // Avoid duplicating a vertex that already sits on the line.
                if out.last().is_none_or(|q: &Point| !q.approx_eq(crossing)) {
                    out.push(crossing);
                }
            }
        }
        // Remove a duplicated wrap-around vertex, if any.
        if out.len() >= 2 && out[0].approx_eq(*out.last().expect("non-empty")) {
            out.pop();
        }
        if out.len() < 3 {
            out.clear();
        }
        out
    }
}

impl fmt::Display for HalfPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "halfplane(through {} normal {})",
            self.point, self.normal
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn unit_square() -> Vec<Point> {
        Rect::new(0.0, 0.0, 1.0, 1.0)
            .to_polygon()
            .vertices()
            .to_vec()
    }

    #[test]
    fn containment_sides() {
        let hp = HalfPlane::new(Point::new(0.0, 0.0), Point::new(0.0, 1.0));
        assert!(hp.contains(Point::new(3.0, -1.0)));
        assert!(hp.contains(Point::new(3.0, 0.0))); // boundary
        assert!(!hp.contains(Point::new(3.0, 1.0)));
    }

    #[test]
    fn bisector_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let hp = HalfPlane::bisector(a, b);
        assert!(hp.contains(a));
        assert!(!hp.contains(b));
        assert!(hp.contains(Point::new(2.0, 7.0))); // on the bisector line
    }

    #[test]
    fn clip_keeps_inside_half() {
        let hp = HalfPlane::new(Point::new(0.5, 0.0), Point::new(1.0, 0.0)); // keep x <= 0.5
        let clipped = hp.clip(&unit_square());
        assert_eq!(clipped.len(), 4);
        for p in &clipped {
            assert!(p.x <= 0.5 + 1e-9);
        }
        let area: f64 = {
            let poly = crate::Polygon::new(clipped);
            poly.area()
        };
        assert!((area - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clip_through_corner_produces_triangle() {
        // keep x + y <= 1: cuts the unit square into a triangle
        let hp = HalfPlane::new(Point::new(1.0, 0.0), Point::new(1.0, 1.0));
        let clipped = hp.clip(&unit_square());
        let poly = crate::Polygon::new(clipped);
        assert!((poly.area() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn clip_everything_away() {
        let hp = HalfPlane::new(Point::new(-1.0, 0.0), Point::new(1.0, 0.0)); // keep x <= -1
        assert!(hp.clip(&unit_square()).is_empty());
    }

    #[test]
    fn clip_nothing_away() {
        let hp = HalfPlane::new(Point::new(5.0, 0.0), Point::new(1.0, 0.0)); // keep x <= 5
        let clipped = hp.clip(&unit_square());
        assert_eq!(clipped.len(), 4);
    }

    #[test]
    fn clip_preserves_ccw() {
        let hp = HalfPlane::new(Point::new(0.5, 0.0), Point::new(1.0, 0.0));
        let clipped = crate::Polygon::new(hp.clip(&unit_square()));
        assert!(clipped.area() > 0.0);
    }
}
