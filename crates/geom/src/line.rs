//! Infinite lines.

use crate::{approx_zero, Point, Segment, Vec2};
use std::fmt;

/// An infinite line through [`Line::origin`] with direction
/// [`Line::dir`] (not necessarily unit length).
///
/// # Examples
///
/// ```
/// use msn_geom::{Line, Point};
/// let diag = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
/// assert!(diag.project(Point::new(2.0, 0.0)).approx_eq(Point::new(1.0, 1.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// A point on the line.
    pub origin: Point,
    /// Direction of the line (any non-zero vector).
    pub dir: Vec2,
}

impl Line {
    /// Line through `origin` with direction `dir`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dir` is (near-)zero.
    #[inline]
    pub fn new(origin: Point, dir: Vec2) -> Self {
        debug_assert!(!approx_zero(dir.norm()), "line direction must be non-zero");
        Line { origin, dir }
    }

    /// Line through two distinct points.
    #[inline]
    pub fn through(a: Point, b: Point) -> Self {
        Line::new(a, b - a)
    }

    /// Horizontal line `y = c`.
    #[inline]
    pub fn horizontal(c: f64) -> Self {
        Line::new(Point::new(0.0, c), Point::new(1.0, 0.0))
    }

    /// Vertical line `x = c`.
    #[inline]
    pub fn vertical(c: f64) -> Self {
        Line::new(Point::new(c, 0.0), Point::new(0.0, 1.0))
    }

    /// Signed perpendicular offset of `p`: positive on the left of `dir`.
    ///
    /// The magnitude equals the perpendicular distance scaled by
    /// `|dir|`; use [`Line::dist_to_point`] for the metric distance.
    #[inline]
    pub fn side(&self, p: Point) -> f64 {
        self.dir.cross(p - self.origin)
    }

    /// Perpendicular distance from `p` to the line.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.side(p).abs() / self.dir.norm()
    }

    /// Orthogonal projection of `p` onto the line.
    pub fn project(&self, p: Point) -> Point {
        let t = (p - self.origin).dot(self.dir) / self.dir.norm_sq();
        self.origin + self.dir * t
    }

    /// Intersection with another line, unless (near-)parallel.
    pub fn intersect(&self, other: &Line) -> Option<Point> {
        let denom = self.dir.cross(other.dir);
        if approx_zero(denom) {
            return None;
        }
        let t = (other.origin - self.origin).cross(other.dir) / denom;
        Some(self.origin + self.dir * t)
    }

    /// Intersection with a segment, if the crossing point lies on the
    /// segment.
    pub fn intersect_segment(&self, seg: &Segment) -> Option<Point> {
        let denom = self.dir.cross(seg.delta());
        if approx_zero(denom) {
            // Parallel; report the segment start if it lies on the line.
            return (self.dist_to_point(seg.a) <= crate::EPS).then_some(seg.a);
        }
        let u = (seg.a - self.origin).cross(self.dir) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&u) {
            Some(seg.at(crate::clamp(u, 0.0, 1.0)))
        } else {
            None
        }
    }
}

impl fmt::Display for Line {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line({} dir {})", self.origin, self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_signs() {
        let l = Line::horizontal(0.0);
        assert!(l.side(Point::new(0.0, 1.0)) > 0.0);
        assert!(l.side(Point::new(0.0, -1.0)) < 0.0);
        assert!(approx_zero(l.side(Point::new(5.0, 0.0))));
    }

    #[test]
    fn distance_and_projection() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(l.dist_to_point(Point::new(3.0, 4.0)), 4.0);
        assert_eq!(l.project(Point::new(3.0, 4.0)), Point::new(3.0, 0.0));
    }

    #[test]
    fn line_line_intersection() {
        let h = Line::horizontal(2.0);
        let v = Line::vertical(3.0);
        assert!(h.intersect(&v).unwrap().approx_eq(Point::new(3.0, 2.0)));
        let h2 = Line::horizontal(5.0);
        assert_eq!(h.intersect(&h2), None);
    }

    #[test]
    fn line_segment_intersection() {
        let l = Line::horizontal(0.0);
        let cross = Segment::new(Point::new(1.0, -1.0), Point::new(1.0, 1.0));
        assert!(l
            .intersect_segment(&cross)
            .unwrap()
            .approx_eq(Point::new(1.0, 0.0)));
        let miss = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 2.0));
        assert_eq!(l.intersect_segment(&miss), None);
        // parallel on the line
        let on = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        assert_eq!(l.intersect_segment(&on), Some(on.a));
    }
}
