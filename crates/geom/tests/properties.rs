//! Property-based tests for the geometry substrate.

use msn_geom::{
    convex_hull, min_enclosing_circle, Circle, HalfPlane, Point, Polygon, Rect, Segment,
};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn mec_contains_all_points(pts in prop::collection::vec(pt(), 1..40)) {
        let mec = min_enclosing_circle(&pts).unwrap();
        for p in &pts {
            prop_assert!(mec.center.dist(*p) <= mec.radius + 1e-5);
        }
    }

    #[test]
    fn mec_not_larger_than_diametral_or_centroid_circle(
        pts in prop::collection::vec(pt(), 2..30)
    ) {
        let mec = min_enclosing_circle(&pts).unwrap();
        let centroid = pts.iter().fold(Point::ORIGIN, |s, p| s + *p) / pts.len() as f64;
        let r = pts.iter().map(|p| p.dist(centroid)).fold(0.0, f64::max);
        prop_assert!(mec.radius <= r + 1e-6);
    }

    #[test]
    fn hull_contains_all_points(pts in prop::collection::vec(pt(), 3..60)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            let poly = Polygon::new(hull);
            for p in &pts {
                prop_assert!(poly.contains(*p) || poly.boundary_dist(*p) < 1e-6);
            }
        }
    }

    #[test]
    fn hull_area_nonnegative_and_vertices_subset(pts in prop::collection::vec(pt(), 3..40)) {
        let hull = convex_hull(&pts);
        for h in &hull {
            prop_assert!(pts.iter().any(|p| p.approx_eq(*h)));
        }
        if hull.len() >= 3 {
            prop_assert!(Polygon::new(hull).area() >= 0.0);
        }
    }

    #[test]
    fn halfplane_clip_shrinks_area(
        pts in prop::collection::vec(pt(), 3..10),
        a in pt(),
        b in pt(),
    ) {
        prop_assume!(a.dist(b) > 1e-6);
        let hull = convex_hull(&pts);
        prop_assume!(hull.len() >= 3);
        let before = Polygon::new(hull.clone()).area();
        let hp = HalfPlane::bisector(a, b);
        let clipped = hp.clip(&hull);
        if clipped.len() >= 3 {
            let after = Polygon::new(clipped.clone()).area();
            prop_assert!(after <= before + 1e-6);
            for p in &clipped {
                prop_assert!(hp.value(*p) <= 1e-6 * hp.normal.norm().max(1.0));
            }
        }
    }

    #[test]
    fn segment_closest_point_is_closest(s_a in pt(), s_b in pt(), p in pt()) {
        let seg = Segment::new(s_a, s_b);
        let c = seg.closest_point(p);
        // sample the segment; none may be closer
        for i in 0..=20 {
            let q = seg.at(i as f64 / 20.0);
            prop_assert!(p.dist(c) <= p.dist(q) + 1e-9);
        }
    }

    #[test]
    fn segment_intersection_is_on_both(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        if let Some(p) = s1.intersect(&s2) {
            prop_assert!(s1.dist_to_point(p) < 1e-6);
            prop_assert!(s2.dist_to_point(p) < 1e-6);
        }
    }

    #[test]
    fn circle_clip_points_inside(center in pt(), r in 1.0..500.0f64, a in pt(), b in pt()) {
        let c = Circle::new(center, r);
        if let Some(chord) = c.clip_segment(Segment::new(a, b)) {
            prop_assert!(c.center.dist(chord.a) <= r + 1e-6);
            prop_assert!(c.center.dist(chord.b) <= r + 1e-6);
            prop_assert!(c.center.dist(chord.midpoint()) <= r + 1e-6);
        }
    }

    #[test]
    fn circle_circle_points_on_both(c1 in pt(), r1 in 1.0..400.0f64, c2 in pt(), r2 in 1.0..400.0f64) {
        let a = Circle::new(c1, r1);
        let b = Circle::new(c2, r2);
        for p in a.intersect_circle(&b) {
            prop_assert!((p.dist(a.center) - r1).abs() < 1e-5);
            prop_assert!((p.dist(b.center) - r2).abs() < 1e-5);
        }
    }

    #[test]
    fn lens_area_bounds(c1 in pt(), r1 in 1.0..300.0f64, c2 in pt(), r2 in 1.0..300.0f64) {
        let a = Circle::new(c1, r1);
        let b = Circle::new(c2, r2);
        let lens = a.lens_area(&b);
        prop_assert!(lens >= -1e-9);
        prop_assert!(lens <= a.area().min(b.area()) + 1e-6);
    }

    #[test]
    fn rect_clamp_is_inside(p in pt()) {
        let r = Rect::new(-100.0, -50.0, 100.0, 50.0);
        prop_assert!(r.contains(r.clamp_point(p)));
    }

    #[test]
    fn polygon_walk_roundtrip(x in 1.0..400.0f64, y in 1.0..400.0f64, d in 0.0..2000.0f64) {
        let poly = Rect::new(0.0, 0.0, x, y).to_polygon();
        let start = Point::new(x / 2.0, 0.0);
        let (p, e) = poly.walk_boundary(start, 0, true, d);
        // walked point stays on the boundary
        prop_assert!(poly.boundary_dist(p) < 1e-6);
        prop_assert!(e < poly.len());
        // walking the full perimeter returns to start
        let (q, _) = poly.walk_boundary(start, 0, true, poly.perimeter());
        prop_assert!(q.dist(start) < 1e-6);
    }

    /// Appendix-A lemma of the paper: if two sensors are within `rc` of
    /// each other at the start and at the end of an interval during which
    /// both move in straight lines at constant speed, they are within
    /// `rc` at every intermediate time.
    #[test]
    fn appendix_a_connectivity_lemma(
        a0 in pt(), a1 in pt(),
        (ang0, frac0) in (0.0..std::f64::consts::TAU, 0.0..1.0f64),
        (ang1, frac1) in (0.0..std::f64::consts::TAU, 0.0..1.0f64),
        rc in 1.0..300.0f64,
    ) {
        // Construct b endpoints within rc of the a endpoints by design.
        let b0 = a0 + Point::from_angle(ang0) * (rc * frac0);
        let b1 = a1 + Point::from_angle(ang1) * (rc * frac1);
        for i in 0..=32 {
            let t = i as f64 / 32.0;
            let pa = a0.lerp(a1, t);
            let pb = b0.lerp(b1, t);
            prop_assert!(pa.dist(pb) <= rc + 1e-9,
                "distance {} exceeds rc {} at t={}", pa.dist(pb), rc, t);
        }
    }
}
