//! Time-stepped mobile-sensor simulation engine.
//!
//! Replaces the paper's private event-based C++ simulator. The model
//! (§3.1): sensors plan once per *period* `T` and move in straight
//! lines (or along BUG2 boundary-following paths) at speed ≤ `V`
//! within the period; the network is asynchronous, so each sensor's
//! planning instant carries a fixed phase offset. The engine integrates
//! motion in `ticks_per_period` micro-ticks and offers the state every
//! protocol needs: positions with distance accounting, a rebuilt disk
//! graph, a seeded RNG and a message counter.
//!
//! * [`SimConfig`] — time constants and radio/sensing ranges
//!   ([`SimConfig::paper`] gives the evaluation defaults: V = 2 m/s,
//!   T = 1 s, 750 s runs);
//! * [`World`] — the mutable simulation state;
//! * [`RunResult`] — the per-run metrics every experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod events;
mod result;
mod world;

pub use config::SimConfig;
pub use events::{
    event_stream_seed, DynEvent, EventAction, EventQueue, EventSchedule, FailCount, FailMode,
};
pub use result::{convergence_time, RunResult};
pub use world::{PositionsView, World};
