//! Simulation configuration.

use msn_geom::Point;
use std::fmt;

/// Time constants, radio/sensing ranges and measurement resolution of
/// one simulation run.
///
/// # Examples
///
/// ```
/// use msn_sim::SimConfig;
///
/// let cfg = SimConfig::paper(60.0, 40.0).with_seed(7).with_duration(100.0);
/// assert_eq!(cfg.rc, 60.0);
/// assert_eq!(cfg.max_step(), 2.0); // V·T
/// assert_eq!(cfg.dt(), 0.2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Communication range `rc` (m).
    pub rc: f64,
    /// Sensing range `rs` (m).
    pub rs: f64,
    /// Maximum moving speed `V` (m/s); paper: 2 m/s.
    pub speed: f64,
    /// Period length `T` (s) between movement decisions; paper: 1 s.
    pub period: f64,
    /// Total simulated time (s); paper: 750 s.
    pub duration: f64,
    /// Micro-ticks per period for motion integration and phase offsets.
    pub ticks_per_period: u32,
    /// RNG seed; every run is deterministic given the seed.
    pub seed: u64,
    /// Raster cell (m) for coverage measurement.
    pub coverage_cell: f64,
    /// Base-station reference point `O`; paper: the origin.
    pub base: Point,
}

impl SimConfig {
    /// The paper's evaluation defaults for given ranges: V = 2 m/s,
    /// T = 1 s, 750 s duration, 5 ticks per period, 2.5 m coverage
    /// raster, base at the origin, seed 42.
    ///
    /// # Panics
    ///
    /// Panics if a range is not strictly positive.
    pub fn paper(rc: f64, rs: f64) -> Self {
        assert!(rc > 0.0 && rs > 0.0, "ranges must be positive");
        SimConfig {
            rc,
            rs,
            speed: 2.0,
            period: 1.0,
            duration: 750.0,
            ticks_per_period: 5,
            seed: 42,
            coverage_cell: 2.5,
            base: Point::ORIGIN,
        }
    }

    /// Returns the config with a different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different duration (s).
    #[must_use]
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Returns the config with a different coverage raster cell (m).
    #[must_use]
    pub fn with_coverage_cell(mut self, cell: f64) -> Self {
        self.coverage_cell = cell;
        self
    }

    /// Returns the config with a different base-station point `O`.
    /// Dynamic runs use this after a relocate-base event so restarted
    /// segments anchor connectivity at the moved station.
    #[must_use]
    pub fn with_base(mut self, base: Point) -> Self {
        self.base = base;
        self
    }

    /// Maximum distance a sensor can cover in one period (`V·T`).
    #[inline]
    pub fn max_step(&self) -> f64 {
        self.speed * self.period
    }

    /// Micro-tick length (s).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.period / self.ticks_per_period as f64
    }

    /// Total number of micro-ticks in the run.
    pub fn total_ticks(&self) -> u64 {
        (self.duration / self.dt()).round() as u64
    }

    /// Total number of periods in the run.
    pub fn total_periods(&self) -> u64 {
        (self.duration / self.period).round() as u64
    }
}

impl fmt::Display for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim(rc={} rs={} V={} T={} dur={}s seed={})",
            self.rc, self.rs, self.speed, self.period, self.duration, self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let cfg = SimConfig::paper(60.0, 40.0);
        assert_eq!(cfg.speed, 2.0);
        assert_eq!(cfg.period, 1.0);
        assert_eq!(cfg.duration, 750.0);
        assert_eq!(cfg.max_step(), 2.0);
        assert_eq!(cfg.total_ticks(), 3750);
        assert_eq!(cfg.total_periods(), 750);
        assert_eq!(cfg.base, Point::ORIGIN);
    }

    #[test]
    fn builder_methods() {
        let cfg = SimConfig::paper(30.0, 40.0)
            .with_seed(9)
            .with_duration(10.0)
            .with_coverage_cell(5.0)
            .with_base(Point::new(3.0, 4.0));
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.duration, 10.0);
        assert_eq!(cfg.coverage_cell, 5.0);
        assert_eq!(cfg.base, Point::new(3.0, 4.0));
        assert_eq!(cfg.total_ticks(), 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        SimConfig::paper(0.0, 40.0);
    }
}
