//! Seeded, deterministic mid-run world events.
//!
//! A dynamic run is a static run interrupted at scheduled instants:
//! sensors fail (battery death, damage), reinforcements arrive,
//! obstacles appear or collapse, the base station relocates. The
//! schedule lives in the scenario spec; execution draws every random
//! choice (which sensors fail, where reinforcements land, restarted
//! segment seeds) from [`event_stream_seed`] over a dedicated per-run
//! event seed, so batches stay byte-identical at any thread count and
//! across `--resume`.

use msn_geom::{Point, Rect};

/// How many sensors an event touches: an absolute count or a fraction
/// of the currently alive fleet (rounded down, at least one when the
/// fraction is positive and anything is alive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailCount {
    /// Exactly this many sensors (clamped to the alive count).
    Count(usize),
    /// This fraction of the alive fleet, in `(0, 1]`.
    Frac(f64),
}

impl FailCount {
    /// Resolves the count against the number of alive sensors.
    pub fn resolve(&self, alive: usize) -> usize {
        match *self {
            FailCount::Count(k) => k.min(alive),
            FailCount::Frac(f) => {
                let k = (f * alive as f64).floor() as usize;
                if k == 0 && f > 0.0 && alive > 0 {
                    1
                } else {
                    k.min(alive)
                }
            }
        }
    }
}

/// Which sensors a failure event selects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailMode {
    /// A uniformly random subset of the alive fleet (seeded
    /// Fisher–Yates over the alive list in index order).
    Random,
    /// The sensors with the highest cumulative travelled distance —
    /// the battery-death model; ties break toward the lower index.
    Drained,
    /// Every alive sensor inside the rectangle (localized damage).
    Region(Rect),
}

/// One scheduled world mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum EventAction {
    /// Kill sensors: they stop covering, relaying and moving.
    Fail {
        /// How many sensors die.
        count: FailCount,
        /// How the victims are selected.
        mode: FailMode,
    },
    /// Insert fresh sensors scattered uniformly inside a rectangle
    /// (positions drawn from the event seed stream).
    Reinforce {
        /// How many sensors arrive.
        count: usize,
        /// The drop zone.
        rect: Rect,
    },
    /// A new rectangular obstacle appears.
    ObstacleAdd {
        /// The obstacle footprint.
        rect: Rect,
    },
    /// The obstacle at this index (field order: seed obstacles first,
    /// then event-added ones in schedule order) is removed.
    ObstacleRemove {
        /// Index into the field's obstacle list at event time.
        index: usize,
    },
    /// The base station moves; connectivity re-anchors there and the
    /// schemes of later segments aim at the new origin.
    RelocateBase {
        /// The new base position.
        to: Point,
    },
}

impl EventAction {
    /// Short machine-readable kind tag (the TOML `kind` value).
    pub fn kind(&self) -> &'static str {
        match self {
            EventAction::Fail { .. } => "fail",
            EventAction::Reinforce { .. } => "reinforce",
            EventAction::ObstacleAdd { .. } => "obstacle-add",
            EventAction::ObstacleRemove { .. } => "obstacle-remove",
            EventAction::RelocateBase { .. } => "relocate-base",
        }
    }
}

/// An [`EventAction`] bound to a simulation instant.
#[derive(Debug, Clone, PartialEq)]
pub struct DynEvent {
    /// Simulation time (s) at which the action fires; strictly inside
    /// `(0, duration)`.
    pub time: f64,
    /// The world mutation.
    pub action: EventAction,
}

/// A complete event schedule plus the recovery threshold used by the
/// recovery metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSchedule {
    /// Events in non-decreasing time order.
    pub events: Vec<DynEvent>,
    /// A dip counts as recovered once coverage returns to this
    /// fraction of its pre-event value (default 0.95).
    pub recovery_frac: f64,
}

impl EventSchedule {
    /// The default recovery threshold: 95 % of pre-event coverage.
    pub const DEFAULT_RECOVERY_FRAC: f64 = 0.95;

    /// A schedule over the given events with the default threshold.
    pub fn new(events: Vec<DynEvent>) -> Self {
        EventSchedule {
            events,
            recovery_frac: Self::DEFAULT_RECOVERY_FRAC,
        }
    }

    /// Total sensors added by reinforcement events — the reserve the
    /// world must pre-allocate so trackers never grow mid-run.
    pub fn reinforce_total(&self) -> usize {
        self.events
            .iter()
            .map(|e| match e.action {
                EventAction::Reinforce { count, .. } => count,
                _ => 0,
            })
            .sum()
    }

    /// Validates times (finite, strictly increasing¹ within
    /// `(0, duration)`) and the recovery fraction. ¹Non-decreasing:
    /// several events may share an instant and fire in schedule order.
    pub fn validate(&self, duration: f64) -> Result<(), String> {
        if !(self.recovery_frac > 0.0 && self.recovery_frac <= 1.0) {
            return Err(format!(
                "dynamics.recovery_frac must be in (0, 1], got {}",
                self.recovery_frac
            ));
        }
        let mut prev = 0.0;
        for (i, e) in self.events.iter().enumerate() {
            if !e.time.is_finite() || e.time <= 0.0 || e.time >= duration {
                return Err(format!(
                    "dynamics event {i} time {} must lie strictly inside (0, {duration})",
                    e.time
                ));
            }
            if e.time < prev {
                return Err(format!(
                    "dynamics event {i} time {} is earlier than its predecessor {prev}",
                    e.time
                ));
            }
            prev = e.time;
            match &e.action {
                EventAction::Fail {
                    count: FailCount::Frac(f),
                    ..
                } if !(*f > 0.0 && *f <= 1.0) => {
                    return Err(format!("dynamics event {i} frac {f} must be in (0, 1]"));
                }
                EventAction::Reinforce { count: 0, .. } => {
                    return Err(format!("dynamics event {i} reinforces zero sensors"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

/// A cursor over a schedule, in time order.
#[derive(Debug, Clone)]
pub struct EventQueue<'a> {
    events: &'a [DynEvent],
    next: usize,
}

impl<'a> EventQueue<'a> {
    /// A queue over a validated (time-sorted) schedule.
    pub fn new(schedule: &'a EventSchedule) -> Self {
        EventQueue {
            events: &schedule.events,
            next: 0,
        }
    }

    /// The instant of the next pending event, if any.
    pub fn next_time(&self) -> Option<f64> {
        self.events.get(self.next).map(|e| e.time)
    }

    /// Pops every event due at exactly the next pending instant
    /// (several events may share it; they apply in schedule order).
    pub fn pop_batch(&mut self) -> &'a [DynEvent] {
        let Some(t) = self.next_time() else {
            return &[];
        };
        let start = self.next;
        while self.next < self.events.len() && self.events[self.next].time == t {
            self.next += 1;
        }
        &self.events[start..self.next]
    }

    /// True once every event has been popped.
    pub fn is_empty(&self) -> bool {
        self.next >= self.events.len()
    }
}

/// SplitMix64 step — the same generator the scenario layer uses for
/// matrix-coordinate seed derivation.
fn split_mix_64(state: &mut u64) {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    *state = z ^ (z >> 31);
}

/// Derives the `k`-th independent stream from a per-run event seed.
/// Stream 0 seeds the failure/reinforcement RNG of event index 0,
/// stream 1 event index 1, and so on; stream `1_000_000 + k` seeds
/// the restarted scheme segment that begins after event index `k`. The
/// derivation is pure, so any thread (or a resumed process) computing
/// the same `(event_seed, k)` gets the same stream.
pub fn event_stream_seed(event_seed: u64, k: u64) -> u64 {
    let mut s = event_seed ^ 0xd1b5_4a32_d192_ed03;
    split_mix_64(&mut s);
    let mut s = s ^ k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    split_mix_64(&mut s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fail_at(t: f64) -> DynEvent {
        DynEvent {
            time: t,
            action: EventAction::Fail {
                count: FailCount::Count(2),
                mode: FailMode::Random,
            },
        }
    }

    #[test]
    fn fail_count_resolution() {
        assert_eq!(FailCount::Count(3).resolve(10), 3);
        assert_eq!(FailCount::Count(30).resolve(10), 10);
        assert_eq!(FailCount::Frac(0.25).resolve(10), 2);
        assert_eq!(
            FailCount::Frac(0.01).resolve(10),
            1,
            "positive frac kills at least one"
        );
        assert_eq!(FailCount::Frac(0.5).resolve(0), 0);
    }

    #[test]
    fn queue_batches_simultaneous_events() {
        let schedule = EventSchedule::new(vec![fail_at(10.0), fail_at(10.0), fail_at(20.0)]);
        let mut q = EventQueue::new(&schedule);
        assert_eq!(q.next_time(), Some(10.0));
        assert_eq!(q.pop_batch().len(), 2);
        assert_eq!(q.next_time(), Some(20.0));
        assert_eq!(q.pop_batch().len(), 1);
        assert!(q.is_empty());
        assert!(q.pop_batch().is_empty());
    }

    #[test]
    fn validation_rejects_bad_schedules() {
        let dur = 100.0;
        assert!(EventSchedule::new(vec![fail_at(10.0)])
            .validate(dur)
            .is_ok());
        assert!(EventSchedule::new(vec![fail_at(0.0)])
            .validate(dur)
            .is_err());
        assert!(EventSchedule::new(vec![fail_at(100.0)])
            .validate(dur)
            .is_err());
        assert!(EventSchedule::new(vec![fail_at(20.0), fail_at(10.0)])
            .validate(dur)
            .is_err());
        let mut s = EventSchedule::new(vec![fail_at(10.0)]);
        s.recovery_frac = 0.0;
        assert!(s.validate(dur).is_err());
        let bad_frac = EventSchedule::new(vec![DynEvent {
            time: 5.0,
            action: EventAction::Fail {
                count: FailCount::Frac(1.5),
                mode: FailMode::Random,
            },
        }]);
        assert!(bad_frac.validate(dur).is_err());
        let zero_reinforce = EventSchedule::new(vec![DynEvent {
            time: 5.0,
            action: EventAction::Reinforce {
                count: 0,
                rect: Rect::new(0.0, 0.0, 1.0, 1.0),
            },
        }]);
        assert!(zero_reinforce.validate(dur).is_err());
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let a = event_stream_seed(42, 0);
        let b = event_stream_seed(42, 1);
        let c = event_stream_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, event_stream_seed(42, 0), "pure function of (seed, k)");
    }

    #[test]
    fn reinforce_total_sums_reserve() {
        let s = EventSchedule::new(vec![
            fail_at(5.0),
            DynEvent {
                time: 8.0,
                action: EventAction::Reinforce {
                    count: 3,
                    rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                },
            },
            DynEvent {
                time: 9.0,
                action: EventAction::Reinforce {
                    count: 2,
                    rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                },
            },
        ]);
        assert_eq!(s.reinforce_total(), 5);
    }
}
