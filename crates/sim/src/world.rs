//! The mutable simulation state.

use crate::SimConfig;
use msn_field::{CoverageGrid, CoverageTracker, Field};
use msn_geom::Point;
use msn_net::{AdjacencyTracker, ConnectivityTracker, DiskGraph, MessageCounter, PointIndex};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// Borrowed structure-of-arrays view of all sensor positions.
///
/// `World` stores coordinates as split `xs`/`ys` arrays (cache-friendly
/// at 10k+ sensors, where scanning interleaved `Point`s wastes half of
/// every cache line on the coordinate a pass does not read). This view
/// is the thin `Point`-shaped window over those halves: call sites that
/// held a `&[Point]` migrate mechanically — `positions()[i]` becomes
/// `positions().get(i)`, and slice-taking oracles take
/// `&positions().to_vec()`.
#[derive(Clone, Copy, Debug)]
pub struct PositionsView<'a> {
    xs: &'a [f64],
    ys: &'a [f64],
}

impl<'a> PositionsView<'a> {
    /// Number of sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether there are no sensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Position of sensor `i`, recomposed from the two halves.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Iterates positions in index order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + 'a {
        self.xs
            .iter()
            .zip(self.ys.iter())
            .map(|(&x, &y)| Point::new(x, y))
    }

    /// Materializes the view as a contiguous `Vec<Point>` — for the
    /// slice-taking oracle paths (graph builds, rasterization) that are
    /// cold by design.
    pub fn to_vec(&self) -> Vec<Point> {
        self.iter().collect()
    }
}

/// One position change, the single record every mutation path builds
/// before anything is written. Applying it updates both SoA halves,
/// the moved-distance array and every installed tracker in one step,
/// so no tracker can observe an `x` that has moved while `y` has not.
struct PosChange {
    i: usize,
    p: Point,
    /// Path length charged to the sensor's moving-distance account
    /// (zero for teleports).
    charged: f64,
    /// Whether this change counts as a movement for the
    /// movement-cost aggregates (teleports and cost-free layout
    /// adjustments do not).
    counted: bool,
}

/// All mutable state of one simulation run: sensor positions with
/// moving-distance accounting, simulated time, a seeded RNG and the
/// message counter.
///
/// Deployment schemes (in `msn-deploy`) drive a `World` through their
/// protocol phases; the engine itself is policy-free.
///
/// # Examples
///
/// ```
/// use msn_field::Field;
/// use msn_geom::Point;
/// use msn_sim::{SimConfig, World};
///
/// let field = Field::open(100.0, 100.0);
/// let cfg = SimConfig::paper(20.0, 15.0).with_duration(5.0);
/// let mut world = World::new(field, cfg, vec![Point::new(10.0, 10.0)]);
/// world.set_pos(0, Point::new(12.0, 10.0));
/// assert_eq!(world.moved(0), 2.0);
/// ```
#[derive(Debug)]
pub struct World {
    field: Field,
    cfg: SimConfig,
    /// Sensor x coordinates (SoA half; see [`PositionsView`]).
    xs: Vec<f64>,
    /// Sensor y coordinates (SoA half; see [`PositionsView`]).
    ys: Vec<f64>,
    /// Liveness mask for dynamic runs: dead sensors stay in the
    /// arrays (parked far off-field) so tracker slot counts never
    /// change, but they neither cover, relay, nor move.
    alive: Vec<bool>,
    moved: Vec<f64>,
    /// Number of charged movements (`set_pos` family, not teleports) —
    /// maintained natively so movement-cost summaries work without
    /// profiling and under `obs-off`.
    move_count: u64,
    /// Total path length charged through the `set_pos` family.
    move_charged: f64,
    time: f64,
    tick: u64,
    rng: SmallRng,
    msgs: MessageCounter,
    /// Incremental coverage counts, fed by every position change once
    /// [`World::track_coverage`] is called.
    tracker: Option<CoverageTracker>,
    /// Incremental base-rooted connectivity, fed by every position
    /// change once [`World::track_connectivity`] is called.
    conn: Option<ConnectivityTracker>,
    /// Incremental proximity index, fed by every position change once
    /// [`World::track_points`] is called.
    points_index: Option<PointIndex>,
    /// Incremental disk-graph adjacency, fed by every position change
    /// once [`World::track_adjacency`] is called.
    adj: Option<AdjacencyTracker>,
}

impl World {
    /// Creates a world with sensors at `positions`.
    pub fn new(field: Field, cfg: SimConfig, positions: Vec<Point>) -> Self {
        let n = positions.len();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let (xs, ys) = positions.into_iter().map(|p| (p.x, p.y)).unzip();
        World {
            field,
            cfg,
            xs,
            ys,
            alive: vec![true; n],
            moved: vec![0.0; n],
            move_count: 0,
            move_charged: 0.0,
            time: 0.0,
            tick: 0,
            rng,
            msgs: MessageCounter::new(),
            tracker: None,
            conn: None,
            points_index: None,
            adj: None,
        }
    }

    /// Creates a world with live sensors at `positions` plus `reserve`
    /// pre-allocated dead slots appended after them. Trackers size
    /// themselves at installation and never grow, so dynamic runs
    /// allocate every reinforcement slot up front and revive slots via
    /// [`World::insert_sensor`] when the schedule fires. Reserve slots
    /// start parked (see [`World::park_position`]) and dead.
    pub fn with_reserve(
        field: Field,
        cfg: SimConfig,
        positions: Vec<Point>,
        reserve: usize,
    ) -> Self {
        let n = positions.len();
        let mut world = World::new(field, cfg, positions);
        for k in 0..reserve {
            let i = n + k;
            let p = world.park_position(i);
            world.xs.push(p.x);
            world.ys.push(p.y);
            world.alive.push(false);
            world.moved.push(0.0);
        }
        world
    }

    /// Number of sensors (slots), dead ones included.
    #[inline]
    pub fn n(&self) -> usize {
        self.xs.len()
    }

    /// The deterministic off-field parking spot for slot `i`. Parked
    /// sensors cover no cell (the disk clips entirely off-field), link
    /// to nothing (pairwise spacing exceeds `rc`, and the lot sits
    /// ~1e7 m from the field and base), and never move — so a dead
    /// sensor is invisible to every tracker without changing any
    /// tracker's slot count.
    pub fn park_position(&self, i: usize) -> Point {
        let pitch = 4.0 * self.cfg.rc.max(1.0);
        Point::new(-1.0e7 - i as f64 * pitch, -1.0e7)
    }

    /// Whether slot `i` holds a live sensor. Worlds built by
    /// [`World::new`] are fully alive; only dynamic-run churn
    /// ([`World::remove_sensor`] / [`World::insert_sensor`]) and
    /// reserve slots change this.
    #[inline]
    pub fn alive(&self, i: usize) -> bool {
        self.alive[i]
    }

    /// Number of live sensors.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Indices of live sensors, in slot order.
    pub fn alive_indices(&self) -> Vec<usize> {
        (0..self.n()).filter(|&i| self.alive[i]).collect()
    }

    /// Kills sensor `i`: parks it off-field through the change-record
    /// funnel (every installed tracker sees the departure as an
    /// ordinary move) and marks the slot dead. Charges no movement —
    /// a dead sensor does not drive away.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already dead.
    pub fn remove_sensor(&mut self, i: usize) {
        assert!(self.alive[i], "sensor {i} is already dead");
        self.alive[i] = false;
        let park = self.park_position(i);
        self.apply_change(PosChange {
            i,
            p: park,
            charged: 0.0,
            counted: false,
        });
    }

    /// Revives slot `i` at position `p` (a reinforcement arriving, or
    /// a repaired sensor returning). The arrival teleports in through
    /// the change-record funnel; deployment cost before arrival is out
    /// of scope, matching the paper's free initial placement.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already alive.
    pub fn insert_sensor(&mut self, i: usize, p: Point) {
        assert!(!self.alive[i], "sensor {i} is already alive");
        self.alive[i] = true;
        self.apply_change(PosChange {
            i,
            p,
            charged: 0.0,
            counted: false,
        });
    }

    /// Moves the base station. The connectivity tracker (if installed)
    /// is re-anchored at the new origin by reinstallation from current
    /// positions — base moves are rare schedule events, not tick-path
    /// work, so the rebuild cost is irrelevant.
    pub fn set_base(&mut self, base: Point) {
        self.cfg.base = base;
        if self.conn.is_some() {
            self.track_connectivity();
        }
    }

    /// The sensing field.
    #[inline]
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// The simulation configuration.
    #[inline]
    pub fn cfg(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current simulated time (s).
    #[inline]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current micro-tick index.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Advances the clock by one micro-tick.
    pub fn advance_tick(&mut self) {
        self.tick += 1;
        self.time = self.tick as f64 * self.cfg.dt();
    }

    /// Returns `true` if sensor `i` plans a new step at the current
    /// tick. Planning instants are phase-offset per sensor
    /// (`i mod ticks_per_period`), modeling the asynchronous network
    /// of §4.2.
    pub fn is_plan_tick(&self, i: usize) -> bool {
        let tpp = self.cfg.ticks_per_period as u64;
        self.tick % tpp == (i as u64) % tpp
    }

    /// Simulated time at which sensor `i`'s current period ends (its
    /// next planning instant) — the `t′` of the connectivity-preserving
    /// conditions.
    pub fn period_end(&self, i: usize) -> f64 {
        let tpp = self.cfg.ticks_per_period as u64;
        let phase = (i as u64) % tpp;
        let current = self.tick;
        let next = if current % tpp < phase {
            current - (current % tpp) + phase
        } else {
            current - (current % tpp) + phase + tpp
        };
        next as f64 * self.cfg.dt()
    }

    /// Position of sensor `i`.
    #[inline]
    pub fn pos(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// View of all sensor positions (structure-of-arrays backed; see
    /// [`PositionsView`]).
    #[inline]
    pub fn positions(&self) -> PositionsView<'_> {
        PositionsView {
            xs: &self.xs,
            ys: &self.ys,
        }
    }

    /// The raw x-coordinate array (SoA half) — for vectorizable passes
    /// that scan one axis.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The raw y-coordinate array (SoA half).
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Moves sensor `i` to `p`, charging the straight-line distance.
    pub fn set_pos(&mut self, i: usize, p: Point) {
        let dist = self.pos(i).dist(p);
        self.apply_change(PosChange {
            i,
            p,
            charged: dist,
            counted: true,
        });
    }

    /// Applies one change record: movement accounting, both SoA
    /// halves, then every installed tracker — the only path that
    /// writes positions, so readers and trackers never see the halves
    /// out of step.
    fn apply_change(&mut self, c: PosChange) {
        if c.counted {
            msn_obs::counter("world.moves", 1);
            msn_obs::value("world.move_dist", c.charged);
            self.move_count += 1;
            self.move_charged += c.charged;
        }
        self.moved[c.i] += c.charged;
        self.xs[c.i] = c.p.x;
        self.ys[c.i] = c.p.y;
        self.feed_trackers(c.i, c.p);
    }

    /// Feeds an updated position to every installed tracker.
    #[inline]
    fn feed_trackers(&mut self, i: usize, p: Point) {
        if let Some(t) = self.tracker.as_mut() {
            t.set_sensor(i, p);
        }
        if let Some(c) = self.conn.as_mut() {
            c.set_sensor(i, p);
        }
        if let Some(x) = self.points_index.as_mut() {
            x.set_point(i, p);
        }
        if let Some(a) = self.adj.as_mut() {
            a.set_sensor(i, p);
        }
    }

    /// Moves sensor `i` to `p`, charging an explicit path length
    /// `dist` (BUG2 boundary-following covers more ground than the
    /// displacement).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dist` is shorter than the
    /// displacement (path lengths can never undercut a straight line).
    pub fn set_pos_with_distance(&mut self, i: usize, p: Point, dist: f64) {
        debug_assert!(
            dist + 1e-6 >= self.pos(i).dist(p),
            "path length {dist} below displacement {}",
            self.pos(i).dist(p)
        );
        self.apply_change(PosChange {
            i,
            p,
            charged: dist,
            counted: true,
        });
    }

    /// Places sensor `i` without charging distance (initial layout
    /// adjustments whose cost is charged elsewhere, e.g. Hungarian
    /// matching baselines).
    pub fn teleport(&mut self, i: usize, p: Point) {
        self.apply_change(PosChange {
            i,
            p,
            charged: 0.0,
            counted: false,
        });
    }

    /// Distance sensor `i` has moved so far.
    #[inline]
    pub fn moved(&self, i: usize) -> f64 {
        self.moved[i]
    }

    /// Charges extra moving distance to sensor `i` without changing
    /// its position.
    pub fn add_distance(&mut self, i: usize, dist: f64) {
        debug_assert!(dist >= 0.0);
        self.moved[i] += dist;
    }

    /// Total moving distance over all sensors.
    pub fn total_moved(&self) -> f64 {
        self.moved.iter().sum()
    }

    /// Average moving distance per sensor.
    pub fn avg_moved(&self) -> f64 {
        if self.moved.is_empty() {
            0.0
        } else {
            self.total_moved() / self.moved.len() as f64
        }
    }

    /// Number of charged movements so far (`set_pos` /
    /// `set_pos_with_distance` calls; teleports excluded) — the
    /// `world.moves` aggregate, maintained natively so it is available
    /// without profiling and under `obs-off`.
    #[inline]
    pub fn move_count(&self) -> u64 {
        self.move_count
    }

    /// Total path length charged through the `set_pos` family — the
    /// `world.move_dist` aggregate. Unlike [`World::total_moved`] this
    /// excludes [`World::add_distance`] adjustments: it is movement
    /// the fleet actually executed, the headline movement-cost metric
    /// at scale.
    #[inline]
    pub fn move_dist(&self) -> f64 {
        self.move_charged
    }

    /// Builds the current `rc`-disk graph.
    pub fn graph(&self) -> DiskGraph {
        DiskGraph::build(&self.positions().to_vec(), self.cfg.rc)
    }

    /// Connected-to-base mask for the current positions, by full graph
    /// rebuild + flood (the reference oracle; unaffected by any
    /// installed tracker).
    pub fn connected_mask(&self) -> Vec<bool> {
        let pts = self.positions().to_vec();
        DiskGraph::build(&pts, self.cfg.rc).flood_from_base(&pts, self.cfg.base, self.cfg.rc)
    }

    /// Installs an incremental [`ConnectivityTracker`] on the current
    /// positions. From here on every position change feeds it, and the
    /// `*_tracked` connectivity queries answer from the maintained hop
    /// distances — bit-identical to the build + flood oracle, but
    /// `O(moved sensors · local repair)` per query instead of
    /// `O(N · deg + N + E)`.
    pub fn track_connectivity(&mut self) {
        self.conn = Some(ConnectivityTracker::new(
            &self.positions().to_vec(),
            self.cfg.base,
            self.cfg.rc,
        ));
    }

    /// Whether sensor `i` is connected to the base, from the installed
    /// tracker.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_connectivity`] was never called.
    pub fn connected_tracked(&mut self, i: usize) -> bool {
        self.conn
            .as_mut()
            .expect("connected_tracked requires track_connectivity")
            .is_connected(i)
    }

    /// Connected-to-base mask from the installed tracker — equal to
    /// [`World::connected_mask`] at every instant.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_connectivity`] was never called.
    pub fn connected_mask_tracked(&mut self) -> Vec<bool> {
        self.conn
            .as_mut()
            .expect("connected_mask_tracked requires track_connectivity")
            .connected_mask()
    }

    /// Whether every sensor is connected to the base, from the
    /// installed tracker.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_connectivity`] was never called.
    pub fn all_connected_tracked(&mut self) -> bool {
        self.conn
            .as_mut()
            .expect("all_connected_tracked requires track_connectivity")
            .all_connected()
    }

    /// Installs an incremental [`PointIndex`] over the current
    /// positions, with cell size `rc` (the largest radius the
    /// deployment schemes query at). From here on every position
    /// change feeds it, and the `neighbors_tracked*` queries answer
    /// from maintained buckets — byte-identical, order included, to a
    /// fresh per-tick [`msn_net::SpatialGrid::build`], but `O(moved
    /// sensors)` reconciliation per query round instead of `O(N)`
    /// rebuilds.
    pub fn track_points(&mut self) {
        self.points_index = Some(PointIndex::new(
            &self.positions().to_vec(),
            self.cfg.rc.max(1.0),
        ));
    }

    /// Sensors within `r` of sensor `i` (excluding `i`), from the
    /// installed point index — byte-identical, order included, to
    /// `SpatialGrid::build(positions, rc.max(1.0)).neighbors(positions, i, r)`.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_points`] was never called.
    pub fn neighbors_tracked(&mut self, i: usize, r: f64) -> Vec<usize> {
        self.points_index
            .as_mut()
            .expect("neighbors_tracked requires track_points")
            .neighbors_within(i, r)
    }

    /// Like [`World::neighbors_tracked`], but ordered as a
    /// `SpatialGrid::build(positions, order_cell)` query would order
    /// it — for call sites replacing a per-tick grid whose cell size
    /// differed from `rc`, whose tie-breaks must stay byte-identical.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_points`] was never called.
    pub fn neighbors_tracked_grid_order(
        &mut self,
        i: usize,
        r: f64,
        order_cell: f64,
    ) -> Vec<usize> {
        self.points_index
            .as_mut()
            .expect("neighbors_tracked_grid_order requires track_points")
            .neighbors_within_grid_order(i, r, order_cell)
    }

    /// Installs an incremental [`AdjacencyTracker`] on the current
    /// positions at the configured `rc`. From here on every position
    /// change feeds it, and [`World::adjacency`] answers graph queries
    /// from maintained neighbor lists — equal to a fresh
    /// [`World::graph`] build, order included, but `O(moved sensors ·
    /// local repair)` per tick instead of `O(N · deg)`.
    pub fn track_adjacency(&mut self) {
        self.adj = Some(AdjacencyTracker::new(
            &self.positions().to_vec(),
            self.cfg.rc,
        ));
    }

    /// The installed incremental adjacency view.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_adjacency`] was never called.
    pub fn adjacency(&mut self) -> &mut AdjacencyTracker {
        self.adj
            .as_mut()
            .expect("adjacency requires track_adjacency")
    }

    /// The adjacency view (synced) and the RNG, borrowed together —
    /// for consumers like [`msn_net::random_walk`] that draw picks
    /// from neighbor lists while consuming the world RNG.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_adjacency`] was never called.
    pub fn adjacency_and_rng(&mut self) -> (&AdjacencyTracker, &mut SmallRng) {
        let adj = self
            .adj
            .as_mut()
            .expect("adjacency_and_rng requires track_adjacency");
        adj.sync();
        (adj, &mut self.rng)
    }

    /// The seeded RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The message counter.
    #[inline]
    pub fn msgs(&mut self) -> &mut MessageCounter {
        &mut self.msgs
    }

    /// Read-only view of the message counter.
    #[inline]
    pub fn msgs_ref(&self) -> &MessageCounter {
        &self.msgs
    }

    /// Builds a coverage grid for this world's field at the configured
    /// resolution.
    pub fn coverage_grid(&self) -> CoverageGrid {
        CoverageGrid::new(&self.field, self.cfg.coverage_cell)
    }

    /// Installs an incremental [`CoverageTracker`] on `grid` (a raster
    /// of this world's field at `cfg.coverage_cell`). From here on
    /// every position change feeds the tracker, and
    /// [`World::coverage_tracked`] answers from the maintained
    /// counts — bit-identical to the full rasterization, but
    /// `O(disk)` per moved sensor instead of `O(N · disk)` per
    /// measurement.
    pub fn track_coverage(&mut self, grid: CoverageGrid) {
        self.tracker = Some(CoverageTracker::new(
            grid,
            &self.positions().to_vec(),
            self.cfg.rs,
        ));
    }

    /// Current coverage fraction from the installed tracker.
    ///
    /// # Panics
    ///
    /// Panics if [`World::track_coverage`] was never called — the
    /// tracker's raster is the measurement authority, so there is no
    /// grid to silently fall back to.
    pub fn coverage_tracked(&mut self) -> f64 {
        self.tracker
            .as_mut()
            .expect("coverage_tracked requires track_coverage")
            .coverage()
    }

    /// Current coverage fraction measured on `grid` by full
    /// rasterization (the reference oracle; unaffected by any
    /// installed tracker).
    pub fn coverage(&self, grid: &CoverageGrid) -> f64 {
        grid.coverage(&self.positions().to_vec(), self.cfg.rs)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "world(n={}, t={:.1}s, moved {:.1} m total)",
            self.n(),
            self.time,
            self.total_moved()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_with(n: usize) -> World {
        let field = Field::open(100.0, 100.0);
        let cfg = SimConfig::paper(20.0, 15.0).with_duration(10.0);
        let positions = (0..n)
            .map(|i| Point::new(5.0 * i as f64 + 5.0, 5.0))
            .collect();
        World::new(field, cfg, positions)
    }

    #[test]
    fn distance_accounting() {
        let mut w = world_with(2);
        w.set_pos(0, Point::new(8.0, 9.0)); // from (5,5): 3-4-5 triangle
        assert_eq!(w.moved(0), 5.0);
        w.set_pos_with_distance(1, Point::new(10.0, 8.0), 7.0);
        assert_eq!(w.moved(1), 7.0);
        assert_eq!(w.total_moved(), 12.0);
        assert_eq!(w.avg_moved(), 6.0);
        w.teleport(0, Point::new(0.0, 0.0));
        assert_eq!(w.moved(0), 5.0, "teleport charges nothing");
        w.add_distance(0, 1.5);
        assert_eq!(w.moved(0), 6.5);
    }

    #[test]
    fn clock_and_phases() {
        let mut w = world_with(3);
        assert_eq!(w.time(), 0.0);
        assert!(w.is_plan_tick(0), "sensor 0 plans at tick 0");
        assert!(!w.is_plan_tick(1));
        w.advance_tick();
        assert!(w.is_plan_tick(1), "sensor 1 plans at tick 1");
        assert_eq!(w.time(), 0.2);
        // period_end: sensor 1 at tick 1 has period ending at tick 6
        assert!((w.period_end(1) - 1.2).abs() < 1e-12);
        // sensor 0 (phase 0) at tick 1: period ends at tick 5
        assert!((w.period_end(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_mask() {
        let w = world_with(3); // at x = 5, 10, 15 with rc = 20: all near base
        let mask = w.connected_mask();
        assert_eq!(mask, vec![true, true, true]);
        let mut w2 = world_with(3);
        w2.teleport(2, Point::new(90.0, 90.0));
        assert_eq!(w2.connected_mask(), vec![true, true, false]);
    }

    #[test]
    fn coverage_measurement() {
        let w = world_with(1);
        let grid = w.coverage_grid();
        let cov = w.coverage(&grid);
        assert!(cov > 0.0 && cov < 0.2);
    }

    #[test]
    fn tracked_coverage_equals_rasterized_coverage() {
        let plain = world_with(3);
        let mut tracked = world_with(3);
        let grid = plain.coverage_grid();
        tracked.track_coverage(grid.clone());
        assert_eq!(tracked.coverage_tracked(), plain.coverage(&grid));
        for (i, p) in [
            (0, Point::new(70.0, 30.0)),
            (2, Point::new(-5.0, 50.0)), // off-field clips like the oracle
            (1, Point::new(40.0, 90.0)),
        ] {
            tracked.set_pos(i, p);
            assert_eq!(tracked.coverage_tracked(), tracked.coverage(&grid));
        }
        tracked.teleport(0, Point::new(10.0, 10.0));
        assert_eq!(tracked.coverage_tracked(), tracked.coverage(&grid));
    }

    #[test]
    fn tracked_connectivity_equals_flood_oracle() {
        let mut w = world_with(4);
        w.track_connectivity();
        assert_eq!(w.connected_mask_tracked(), w.connected_mask());
        assert!(w.all_connected_tracked());
        for (i, p) in [
            (3, Point::new(95.0, 95.0)), // out of everyone's range
            (0, Point::new(60.0, 60.0)),
            (3, Point::new(30.0, 5.0)), // rejoins via the chain
        ] {
            w.set_pos(i, p);
            assert_eq!(w.connected_mask_tracked(), w.connected_mask());
        }
        w.teleport(1, Point::new(90.0, 5.0));
        assert_eq!(w.connected_mask_tracked(), w.connected_mask());
        let oracle = w.connected_mask();
        for (i, &c) in oracle.iter().enumerate() {
            assert_eq!(w.connected_tracked(i), c);
        }
        assert_eq!(w.all_connected_tracked(), oracle.iter().all(|&c| c));
    }

    #[test]
    fn tracked_neighbors_equal_fresh_grid_builds() {
        use msn_net::SpatialGrid;
        let mut w = world_with(5);
        w.track_points();
        let rc = w.cfg().rc;
        let oracle = |w: &World, i: usize, r: f64, cell: f64| {
            let pts = w.positions().to_vec();
            SpatialGrid::build(&pts, cell).neighbors(&pts, i, r)
        };
        for (i, p) in [
            (0, Point::new(70.0, 30.0)),
            (3, Point::new(12.0, 6.0)),
            (0, Point::new(14.0, 5.5)),
        ] {
            w.set_pos(i, p);
            for q in 0..w.n() {
                assert_eq!(
                    w.neighbors_tracked(q, rc),
                    oracle(&w, q, rc, rc.max(1.0)),
                    "sensor {q} at rc"
                );
                assert_eq!(
                    w.neighbors_tracked_grid_order(q, 8.0, 8.0),
                    oracle(&w, q, 8.0, 8.0),
                    "sensor {q} at stop-dist order"
                );
            }
        }
        w.teleport(2, Point::new(11.0, 7.0));
        assert_eq!(w.neighbors_tracked(2, rc), oracle(&w, 2, rc, rc.max(1.0)));
    }

    #[test]
    fn tracked_adjacency_equals_graph_builds() {
        let mut w = world_with(5);
        w.track_adjacency();
        for (i, p) in [
            (0, Point::new(70.0, 30.0)),
            (3, Point::new(12.0, 6.0)),
            (4, Point::new(95.0, 95.0)), // disconnects
            (0, Point::new(14.0, 5.5)),
        ] {
            w.set_pos(i, p);
            let g = w.graph();
            for q in 0..w.n() {
                assert_eq!(w.adjacency().neighbors(q), g.neighbors(q), "list {q}");
                assert_eq!(w.adjacency().hop_distances(q), g.hop_distances(q));
            }
        }
        w.teleport(2, Point::new(11.0, 7.0));
        let n = w.n();
        let g = w.graph();
        let (adj, _rng) = w.adjacency_and_rng();
        use msn_net::Neighbors;
        for q in 0..n {
            assert_eq!(adj.neighbors_of(q), g.neighbors(q));
        }
    }

    #[test]
    fn soa_view_matches_point_accessors() {
        let mut w = world_with(4);
        w.set_pos(1, Point::new(33.0, 44.0));
        w.teleport(3, Point::new(-2.0, 7.5));
        let view = w.positions();
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        for i in 0..w.n() {
            assert_eq!(view.get(i), w.pos(i));
            assert_eq!(w.xs()[i], w.pos(i).x);
            assert_eq!(w.ys()[i], w.pos(i).y);
        }
        let materialized = view.to_vec();
        assert_eq!(materialized.len(), 4);
        assert_eq!(materialized[1], Point::new(33.0, 44.0));
        assert_eq!(view.iter().collect::<Vec<_>>(), materialized);
    }

    #[test]
    fn native_movement_aggregates() {
        let mut w = world_with(2);
        assert_eq!(w.move_count(), 0);
        assert_eq!(w.move_dist(), 0.0);
        w.set_pos(0, Point::new(8.0, 9.0)); // 5 m
        w.set_pos_with_distance(1, Point::new(10.0, 8.0), 7.0);
        assert_eq!(w.move_count(), 2);
        assert_eq!(w.move_dist(), 12.0);
        // Teleports and side-channel charges are not fleet movement.
        w.teleport(0, Point::new(0.0, 0.0));
        w.add_distance(0, 1.5);
        assert_eq!(w.move_count(), 2);
        assert_eq!(w.move_dist(), 12.0);
        assert_eq!(w.total_moved(), 13.5, "total_moved still sees add_distance");
    }

    #[test]
    fn churn_feeds_every_tracker_oracle_identically() {
        // remove/insert ride the same change funnel as moves, so all
        // four trackers must agree with their batch oracles after
        // every liveness flip — parked sensors included.
        let mut w = world_with(4);
        let grid = w.coverage_grid();
        w.track_coverage(grid.clone());
        w.track_connectivity();
        w.track_points();
        w.track_adjacency();
        let rc = w.cfg().rc;
        let check = |w: &mut World| {
            assert_eq!(w.coverage_tracked(), w.coverage(&grid));
            assert_eq!(w.connected_mask_tracked(), w.connected_mask());
            let pts = w.positions().to_vec();
            let g = DiskGraph::build(&pts, rc);
            let spatial = msn_net::SpatialGrid::build(&pts, rc.max(1.0));
            for q in 0..w.n() {
                assert_eq!(w.adjacency().neighbors(q), g.neighbors(q), "adj {q}");
                assert_eq!(w.neighbors_tracked(q, rc), spatial.neighbors(&pts, q, rc));
            }
        };
        w.remove_sensor(1);
        assert!(!w.alive(1));
        assert_eq!(w.alive_count(), 3);
        check(&mut w);
        w.remove_sensor(3);
        assert_eq!(w.alive_indices(), vec![0, 2]);
        check(&mut w);
        // a dead sensor covers nothing and links to nothing
        assert!(!w.connected_mask()[1]);
        w.insert_sensor(1, Point::new(40.0, 40.0));
        assert!(w.alive(1));
        check(&mut w);
        // churn charges no movement
        assert_eq!(w.move_count(), 0);
        assert_eq!(w.total_moved(), 0.0);
    }

    #[test]
    fn reserve_slots_start_dead_and_parked() {
        let field = Field::open(100.0, 100.0);
        let cfg = SimConfig::paper(20.0, 15.0).with_duration(10.0);
        let positions = vec![Point::new(5.0, 5.0), Point::new(10.0, 5.0)];
        let mut w = World::with_reserve(field, cfg, positions, 2);
        assert_eq!(w.n(), 4);
        assert_eq!(w.alive_count(), 2);
        assert_eq!(w.pos(2), w.park_position(2));
        assert_eq!(w.pos(3), w.park_position(3));
        // parked slots are pairwise out of radio range
        assert!(w.park_position(2).dist(w.park_position(3)) > w.cfg().rc);
        // a revived reserve slot behaves like any sensor
        let grid = w.coverage_grid();
        w.track_coverage(grid.clone());
        let before = w.coverage_tracked();
        w.insert_sensor(2, Point::new(50.0, 50.0));
        assert!(w.coverage_tracked() > before);
        assert_eq!(w.coverage_tracked(), w.coverage(&grid));
    }

    #[test]
    fn set_base_reanchors_connectivity() {
        let mut w = world_with(3); // x = 5, 10, 15; base at origin
        w.track_connectivity();
        assert!(w.all_connected_tracked());
        w.set_base(Point::new(90.0, 90.0));
        assert_eq!(w.cfg().base, Point::new(90.0, 90.0));
        assert_eq!(w.connected_mask_tracked(), w.connected_mask());
        assert!(!w.all_connected_tracked(), "fleet is far from the new base");
        w.set_pos(2, Point::new(80.0, 80.0));
        assert_eq!(w.connected_mask_tracked(), w.connected_mask());
    }

    #[test]
    fn deterministic_rng() {
        use rand::Rng;
        let mut a = world_with(1);
        let mut b = world_with(1);
        let x: u64 = a.rng().gen();
        let y: u64 = b.rng().gen();
        assert_eq!(x, y);
    }
}
