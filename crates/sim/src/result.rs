//! Per-run metrics.

use msn_geom::Point;
use msn_net::MessageCounter;
use std::fmt;

/// Everything one simulation run reports — the quantities behind every
/// figure and table of the paper's evaluation.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Scheme name ("CPVF", "FLOOR", "VOR", "Minimax", "OPT").
    pub scheme: String,
    /// Final coverage fraction of free area.
    pub coverage: f64,
    /// Average moving distance per sensor (m).
    pub avg_move: f64,
    /// Maximum moving distance over sensors (m).
    pub max_move: f64,
    /// Total moving distance (m).
    pub total_move: f64,
    /// Message transmissions by kind.
    pub messages: MessageCounter,
    /// Whether every sensor ended connected (multi-hop) to the base.
    pub connected: bool,
    /// `(time, coverage)` samples over the run.
    pub coverage_timeline: Vec<(f64, f64)>,
    /// Time to reach 95 % of final coverage, if the run converged.
    pub convergence_time: Option<f64>,
    /// Final sensor positions.
    pub positions: Vec<Point>,
    /// Annotations such as `Disconn.` or `Incorrect VD` (Figure 10).
    pub flags: Vec<String>,
    /// Number of movement actions performed (the `world.moves`
    /// aggregate): how many times a sensor was commanded to a new
    /// position, as opposed to how far it travelled.
    pub moves: u64,
    /// Total commanded travel distance (m; the `world.move_dist`
    /// aggregate). Unlike [`RunResult::total_move`] this excludes
    /// bookkeeping penalties charged via detour accounting, so it is
    /// the movement-energy headline metric of the scale tier.
    pub move_dist: f64,
    /// Per-sensor travelled distance (m), in slot order — the raw
    /// vector behind [`RunResult::avg_move`]/[`RunResult::max_move`].
    /// The dynamic-run engine stitches restarted segments together by
    /// adding each segment's per-sensor distances onto its persistent
    /// ledger, which needs the vector, not just the aggregates.
    pub per_move: Vec<f64>,
}

impl RunResult {
    /// Convenience constructor filling derived fields from raw data.
    pub fn from_run(
        scheme: impl Into<String>,
        coverage: f64,
        moved: &[f64],
        messages: MessageCounter,
        connected: bool,
        coverage_timeline: Vec<(f64, f64)>,
        positions: Vec<Point>,
    ) -> Self {
        let total_move: f64 = moved.iter().sum();
        let avg_move = if moved.is_empty() {
            0.0
        } else {
            total_move / moved.len() as f64
        };
        let max_move = moved.iter().copied().fold(0.0, f64::max);
        let convergence_time = convergence_time(&coverage_timeline, coverage, 0.95);
        RunResult {
            scheme: scheme.into(),
            coverage,
            avg_move,
            max_move,
            total_move,
            messages,
            connected,
            coverage_timeline,
            convergence_time,
            positions,
            flags: Vec::new(),
            moves: 0,
            move_dist: 0.0,
            per_move: moved.to_vec(),
        }
    }

    /// Adds an annotation flag (builder style).
    #[must_use]
    pub fn with_flag(mut self, flag: impl Into<String>) -> Self {
        self.flags.push(flag.into());
        self
    }

    /// Records the movement-cost aggregates (builder style): schemes
    /// running on a [`crate::World`] pass
    /// `world.move_count()` / `world.move_dist()`; synthetic schemes
    /// count their own position updates.
    #[must_use]
    pub fn with_movement(mut self, moves: u64, move_dist: f64) -> Self {
        self.moves = moves;
        self.move_dist = move_dist;
        self
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: coverage {:.1}%, avg move {:.1} m, {} msgs{}{}",
            self.scheme,
            self.coverage * 100.0,
            self.avg_move,
            self.messages.total(),
            if self.connected {
                ""
            } else {
                " [disconnected]"
            },
            if self.flags.is_empty() {
                String::new()
            } else {
                format!(" [{}]", self.flags.join(", "))
            }
        )
    }
}

/// The first time the coverage timeline reaches `frac` of the final
/// coverage (`None` for an empty timeline or zero final coverage).
pub fn convergence_time(timeline: &[(f64, f64)], final_coverage: f64, frac: f64) -> Option<f64> {
    if final_coverage <= 0.0 {
        return None;
    }
    let threshold = final_coverage * frac;
    timeline
        .iter()
        .find(|&&(_, c)| c >= threshold)
        .map(|&(t, _)| t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_fields() {
        let r = RunResult::from_run(
            "TEST",
            0.5,
            &[1.0, 3.0],
            MessageCounter::new(),
            true,
            vec![(0.0, 0.1), (10.0, 0.48), (20.0, 0.5)],
            vec![],
        );
        assert_eq!(r.total_move, 4.0);
        assert_eq!(r.avg_move, 2.0);
        assert_eq!(r.max_move, 3.0);
        assert_eq!(r.convergence_time, Some(10.0), "0.48 >= 0.95 * 0.5");
        assert!(r.flags.is_empty());
        let flagged = r.with_flag("Disconn.");
        assert_eq!(flagged.flags, vec!["Disconn.".to_string()]);
    }

    #[test]
    fn convergence_edge_cases() {
        assert_eq!(convergence_time(&[], 0.5, 0.95), None);
        assert_eq!(convergence_time(&[(0.0, 0.1)], 0.0, 0.95), None);
        assert_eq!(
            convergence_time(&[(0.0, 0.6)], 0.5, 0.95),
            Some(0.0),
            "already above threshold at t=0"
        );
        assert_eq!(convergence_time(&[(0.0, 0.1), (5.0, 0.2)], 0.5, 0.95), None);
    }

    #[test]
    fn display_contains_key_metrics() {
        let r = RunResult::from_run(
            "CPVF",
            0.745,
            &[2.0],
            MessageCounter::new(),
            false,
            vec![],
            vec![],
        );
        let s = format!("{r}");
        assert!(s.contains("CPVF"));
        assert!(s.contains("74.5%"));
        assert!(s.contains("disconnected"));
    }
}
