//! A single Voronoi cell and the movement targets derived from it.

use msn_geom::{min_enclosing_circle, Point, Polygon};
use std::fmt;

/// The (possibly empty) Voronoi cell of one site, as a convex polygon.
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Rect};
/// use msn_voronoi::VoronoiDiagram;
///
/// let sites = vec![Point::new(10.0, 50.0), Point::new(90.0, 50.0)];
/// let vd = VoronoiDiagram::compute(&sites, Rect::new(0.0, 0.0, 100.0, 100.0));
/// let cell = vd.cell(0);
/// // The farthest vertex of the left cell is a corner of the split line
/// // or the outer boundary.
/// let fv = cell.farthest_vertex().unwrap();
/// assert!(fv.dist(sites[0]) > 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VoronoiCell {
    site: Point,
    vertices: Vec<Point>,
}

impl VoronoiCell {
    /// Creates a cell from its site and convex-polygon vertices (CCW).
    ///
    /// An empty or degenerate (<3 vertices) vertex list produces an
    /// empty cell.
    pub fn new(site: Point, vertices: Vec<Point>) -> Self {
        let vertices = if vertices.len() < 3 {
            Vec::new()
        } else {
            vertices
        };
        VoronoiCell { site, vertices }
    }

    /// The site this cell belongs to.
    #[inline]
    pub fn site(&self) -> Point {
        self.site
    }

    /// The cell's polygon vertices (CCW); empty for an empty cell.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Returns `true` if the cell is empty (site crowded out or outside
    /// the bounds).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Cell area (0 for an empty cell).
    pub fn area(&self) -> f64 {
        if self.is_degenerate() {
            0.0
        } else {
            Polygon::new(self.vertices.clone()).area()
        }
    }

    /// Returns `true` if `p` lies in the closed cell.
    pub fn contains(&self, p: Point) -> bool {
        if self.is_degenerate() {
            return false;
        }
        Polygon::new(self.vertices.clone()).contains(p)
    }

    /// The cell vertex farthest from the site — the VOR scheme's
    /// movement target (the worst-covered corner of the cell).
    ///
    /// Returns `None` for an empty cell.
    pub fn farthest_vertex(&self) -> Option<Point> {
        self.vertices.iter().copied().max_by(|a, b| {
            self.site
                .dist_sq(*a)
                .partial_cmp(&self.site.dist_sq(*b))
                .expect("finite")
        })
    }

    /// The *minimax point*: the point minimizing the maximum distance to
    /// the cell's vertices — the Minimax scheme's movement target.
    ///
    /// For a convex cell this is the center of the minimum enclosing
    /// circle of the vertices. Returns `None` for an empty cell.
    pub fn minimax_point(&self) -> Option<Point> {
        min_enclosing_circle(&self.vertices).map(|c| c.center)
    }

    /// Maximum distance from `p` to any cell vertex (`None` if empty).
    pub fn max_vertex_dist(&self, p: Point) -> Option<f64> {
        self.vertices
            .iter()
            .map(|v| v.dist(p))
            .fold(None, |acc, d| Some(acc.map_or(d, |m: f64| m.max(d))))
    }
}

impl fmt::Display for VoronoiCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cell(site {}, {} vertices, area {:.3})",
            self.site,
            self.vertices.len(),
            self.area()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn square_cell() -> VoronoiCell {
        VoronoiCell::new(
            Point::new(2.0, 2.0),
            Rect::new(0.0, 0.0, 10.0, 10.0)
                .to_polygon()
                .vertices()
                .to_vec(),
        )
    }

    #[test]
    fn farthest_vertex_of_offset_site() {
        let cell = square_cell();
        let fv = cell.farthest_vertex().unwrap();
        assert!(fv.approx_eq(Point::new(10.0, 10.0)));
    }

    #[test]
    fn minimax_point_of_square_is_center() {
        let cell = square_cell();
        let mp = cell.minimax_point().unwrap();
        assert!(mp.approx_eq(Point::new(5.0, 5.0)));
        // Minimax point is at least as good as the site itself.
        let at_site = cell.max_vertex_dist(cell.site()).unwrap();
        let at_minimax = cell.max_vertex_dist(mp).unwrap();
        assert!(at_minimax <= at_site + 1e-9);
    }

    #[test]
    fn degenerate_cell_behaviour() {
        let cell = VoronoiCell::new(Point::new(1.0, 1.0), vec![]);
        assert!(cell.is_degenerate());
        assert_eq!(cell.area(), 0.0);
        assert_eq!(cell.farthest_vertex(), None);
        assert_eq!(cell.minimax_point(), None);
        assert_eq!(cell.max_vertex_dist(Point::ORIGIN), None);
        assert!(!cell.contains(Point::new(1.0, 1.0)));
        // fewer than 3 vertices is also degenerate
        let two = VoronoiCell::new(Point::ORIGIN, vec![Point::ORIGIN, Point::new(1.0, 0.0)]);
        assert!(two.is_degenerate());
    }

    #[test]
    fn containment() {
        let cell = square_cell();
        assert!(cell.contains(Point::new(5.0, 5.0)));
        assert!(cell.contains(Point::new(0.0, 0.0)));
        assert!(!cell.contains(Point::new(-1.0, 5.0)));
    }
}
