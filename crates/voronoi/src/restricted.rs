//! Communication-restricted Voronoi cells (Figure 1 of the paper).

use crate::{cell_of, VoronoiCell};
use msn_geom::{Point, Rect};

/// Computes the Voronoi cell of `sites[site_idx]` as the sensor itself
/// would: clipping only against the given `neighbors` (typically the
/// sites within communication range `rc`).
///
/// The restricted cell always *contains* the true cell; with too few
/// neighbors it can be much larger, which misleads VOR/Minimax into
/// chasing phantom coverage holes (paper §1, Figure 1).
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Rect};
/// use msn_voronoi::{restricted_cell, VoronoiDiagram};
///
/// let sites = vec![
///     Point::new(30.0, 50.0),
///     Point::new(50.0, 50.0),
///     Point::new(70.0, 50.0),
/// ];
/// let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
/// // Sensor 0 only hears sensor 1, not sensor 2.
/// let restricted = restricted_cell(0, &sites, &[1], bounds);
/// let full = VoronoiDiagram::compute(&sites, bounds);
/// assert!(restricted.area() >= full.cell(0).area() - 1e-9);
/// ```
pub fn restricted_cell(
    site_idx: usize,
    sites: &[Point],
    neighbors: &[usize],
    bounds: Rect,
) -> VoronoiCell {
    cell_of(
        site_idx,
        sites,
        neighbors.iter().copied().filter(|&j| j != site_idx),
        bounds,
    )
}

/// Returns `true` if two cells are geometrically identical within
/// tolerance `tol` (same area and pairwise-matched vertices).
///
/// Used to detect whether a communication-restricted cell equals the
/// true cell — the paper's "Incorrect VD" annotation in Figure 10
/// triggers when any sensor's restricted cell differs.
pub fn cells_match(a: &VoronoiCell, b: &VoronoiCell, tol: f64) -> bool {
    if (a.area() - b.area()).abs() > tol * tol.max(1.0) {
        return false;
    }
    match (a.is_degenerate(), b.is_degenerate()) {
        (true, true) => return true,
        (true, false) | (false, true) => return false,
        (false, false) => {}
    }
    // Same convex region iff every vertex of each polygon lies on (or
    // within tol of) the other's boundary. This is robust to duplicate
    // or collinear vertices that different clipping orders can leave
    // behind.
    let pa = msn_geom::Polygon::new(a.vertices().to_vec());
    let pb = msn_geom::Polygon::new(b.vertices().to_vec());
    a.vertices().iter().all(|v| pb.boundary_dist(*v) <= tol)
        && b.vertices().iter().all(|v| pa.boundary_dist(*v) <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VoronoiDiagram;

    fn bounds() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    fn line_sites() -> Vec<Point> {
        vec![
            Point::new(20.0, 50.0),
            Point::new(40.0, 50.0),
            Point::new(60.0, 50.0),
            Point::new(80.0, 50.0),
        ]
    }

    #[test]
    fn all_neighbors_reproduces_full_cell() {
        let sites = line_sites();
        let full = VoronoiDiagram::compute(&sites, bounds());
        for i in 0..sites.len() {
            let others: Vec<usize> = (0..sites.len()).filter(|&j| j != i).collect();
            let r = restricted_cell(i, &sites, &others, bounds());
            assert!(cells_match(&r, full.cell(i), 1e-6), "cell {i} must match");
        }
    }

    #[test]
    fn fewer_neighbors_gives_superset() {
        let sites = line_sites();
        let full = VoronoiDiagram::compute(&sites, bounds());
        // Sensor 0 hears only sensor 1.
        let r = restricted_cell(0, &sites, &[1], bounds());
        assert!(r.area() >= full.cell(0).area() - 1e-9);
        // In this geometry they coincide (site 1 dominates the bisectors),
        // but dropping ALL neighbors definitely inflates the cell.
        let alone = restricted_cell(0, &sites, &[], bounds());
        assert!((alone.area() - 10_000.0).abs() < 1e-6);
        assert!(!cells_match(&alone, full.cell(0), 1e-6));
    }

    #[test]
    fn missing_far_neighbor_detected_by_cells_match() {
        // Square of sites; the diagonal neighbor matters for the corner
        // cell shape.
        let sites = vec![
            Point::new(30.0, 30.0),
            Point::new(70.0, 30.0),
            Point::new(30.0, 70.0),
            Point::new(70.0, 70.0),
        ];
        let full = VoronoiDiagram::compute(&sites, bounds());
        // With only the horizontal neighbor, the cell keeps the full
        // vertical extent — a wrong cell.
        let r = restricted_cell(0, &sites, &[1], bounds());
        assert!(!cells_match(&r, full.cell(0), 1e-6));
        assert!(r.area() > full.cell(0).area() + 1.0);
    }

    #[test]
    fn self_index_in_neighbors_is_ignored() {
        let sites = line_sites();
        let with_self = restricted_cell(0, &sites, &[0, 1], bounds());
        let without = restricted_cell(0, &sites, &[1], bounds());
        assert!(cells_match(&with_self, &without, 1e-9));
    }

    #[test]
    fn cells_match_tolerates_jitter() {
        let a = VoronoiCell::new(
            Point::new(5.0, 5.0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
        );
        let b = VoronoiCell::new(
            Point::new(5.0, 5.0),
            vec![
                Point::new(1e-8, 0.0),
                Point::new(10.0, 1e-8),
                Point::new(10.0, 10.0),
                Point::new(0.0, 10.0),
            ],
        );
        assert!(cells_match(&a, &b, 1e-6));
        assert!(!cells_match(&a, &b, 1e-12));
    }
}
