//! Bounded and communication-restricted Voronoi cells.
//!
//! The VOR and Minimax deployment baselines (Wang et al., INFOCOM'04)
//! move every sensor according to its Voronoi cell. A real sensor can
//! only learn the positions of neighbors within its communication range
//! `rc`, so it computes a **restricted** cell from that subset — which
//! may be strictly larger than the true cell when `rc` is small
//! (Figure 1 of the paper). This crate provides both:
//!
//! * [`VoronoiDiagram::compute`] — the exact diagram, every cell clipped
//!   to a bounding rectangle;
//! * [`restricted_cell`] — the cell a sensor would compute from a given
//!   neighbor subset;
//! * [`VoronoiCell::farthest_vertex`] / [`VoronoiCell::minimax_point`] —
//!   the two movement targets the baselines need.
//!
//! Cells are computed by iterative half-plane clipping of the bounding
//! rectangle: `O(k)` clips per cell for `k` sites considered, `O(n²)`
//! for the full diagram — ample for the few hundred sensors simulated.
//!
//! # Examples
//!
//! ```
//! use msn_geom::{Point, Rect};
//! use msn_voronoi::VoronoiDiagram;
//!
//! let sites = vec![Point::new(25.0, 50.0), Point::new(75.0, 50.0)];
//! let vd = VoronoiDiagram::compute(&sites, Rect::new(0.0, 0.0, 100.0, 100.0));
//! // The two half-field cells split the area evenly.
//! assert!((vd.cell(0).area() - 5000.0).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cell;
mod restricted;

pub use cell::VoronoiCell;
pub use restricted::{cells_match, restricted_cell};

use msn_geom::{Point, Rect};

/// The Voronoi diagram of a set of sites, bounded by a rectangle.
///
/// Cell `i` corresponds to site `i` of the input slice.
#[derive(Debug, Clone)]
pub struct VoronoiDiagram {
    cells: Vec<VoronoiCell>,
    bounds: Rect,
}

impl VoronoiDiagram {
    /// Computes the bounded Voronoi diagram of `sites`.
    ///
    /// Sites outside `bounds` still get (possibly empty) cells.
    /// Duplicate sites yield empty cells for all but one copy.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn compute(sites: &[Point], bounds: Rect) -> Self {
        assert!(!sites.is_empty(), "at least one site required");
        let cells = (0..sites.len())
            .map(|i| cell_of(i, sites, (0..sites.len()).filter(|&j| j != i), bounds))
            .collect();
        VoronoiDiagram { cells, bounds }
    }

    /// The cell of site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn cell(&self, i: usize) -> &VoronoiCell {
        &self.cells[i]
    }

    /// All cells, in site order.
    pub fn cells(&self) -> &[VoronoiCell] {
        &self.cells
    }

    /// The bounding rectangle the diagram was clipped to.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of cells (== number of sites).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the diagram has no cells.
    ///
    /// Always `false`: construction requires at least one site.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Computes the Voronoi cell of `sites[site_idx]` against an iterator of
/// competitor site indices, clipped to `bounds`.
pub(crate) fn cell_of<I>(site_idx: usize, sites: &[Point], others: I, bounds: Rect) -> VoronoiCell
where
    I: IntoIterator<Item = usize>,
{
    let site = sites[site_idx];
    let mut poly: Vec<Point> = bounds.to_polygon().vertices().to_vec();
    for j in others {
        if poly.is_empty() {
            break;
        }
        let other = sites[j];
        if other.approx_eq(site) {
            // Duplicate site: by convention the later index loses its cell.
            if j < site_idx {
                poly.clear();
            }
            continue;
        }
        poly = msn_geom::HalfPlane::bisector(site, other).clip(&poly);
    }
    VoronoiCell::new(site, poly)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 100.0)
    }

    #[test]
    fn single_site_owns_everything() {
        let vd = VoronoiDiagram::compute(&[Point::new(10.0, 10.0)], bounds());
        assert_eq!(vd.len(), 1);
        assert!(!vd.is_empty());
        assert!((vd.cell(0).area() - 10_000.0).abs() < 1e-6);
        assert_eq!(vd.bounds(), bounds());
    }

    #[test]
    fn two_sites_split_evenly() {
        let sites = vec![Point::new(25.0, 50.0), Point::new(75.0, 50.0)];
        let vd = VoronoiDiagram::compute(&sites, bounds());
        assert!((vd.cell(0).area() - 5000.0).abs() < 1e-6);
        assert!((vd.cell(1).area() - 5000.0).abs() < 1e-6);
        // every cell vertex of cell 0 has x <= 50
        for v in vd.cell(0).vertices() {
            assert!(v.x <= 50.0 + 1e-9);
        }
    }

    #[test]
    fn grid_sites_tile_area() {
        let mut sites = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                sites.push(Point::new(12.5 + 25.0 * i as f64, 12.5 + 25.0 * j as f64));
            }
        }
        let vd = VoronoiDiagram::compute(&sites, bounds());
        let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
        assert!((total - 10_000.0).abs() < 1e-6);
        for c in vd.cells() {
            assert!((c.area() - 625.0).abs() < 1e-6, "uniform grid: equal cells");
        }
    }

    #[test]
    fn nearest_site_rule_holds_on_samples() {
        // Deterministic pseudo-random sites.
        let sites: Vec<Point> = (0..25)
            .map(|i| {
                let a = i as f64;
                Point::new(
                    50.0 + 49.0 * (a * 1.618).sin(),
                    50.0 + 49.0 * (a * 2.414).cos(),
                )
            })
            .collect();
        let vd = VoronoiDiagram::compute(&sites, bounds());
        for gx in 0..20 {
            for gy in 0..20 {
                let p = Point::new(2.5 + 5.0 * gx as f64, 2.5 + 5.0 * gy as f64);
                let nearest = (0..sites.len())
                    .min_by(|&a, &b| {
                        sites[a]
                            .dist_sq(p)
                            .partial_cmp(&sites[b].dist_sq(p))
                            .expect("finite")
                    })
                    .expect("non-empty");
                assert!(
                    vd.cell(nearest).contains(p),
                    "point {p} must lie in the cell of its nearest site"
                );
            }
        }
    }

    #[test]
    fn duplicate_sites_leave_one_cell() {
        let sites = vec![Point::new(50.0, 50.0), Point::new(50.0, 50.0)];
        let vd = VoronoiDiagram::compute(&sites, bounds());
        let a0 = vd.cell(0).area();
        let a1 = vd.cell(1).area();
        assert!((a0 + a1 - 10_000.0).abs() < 1e-6);
        assert!(a0 == 0.0 || a1 == 0.0);
    }
}
