//! Property-based tests for Voronoi cells.

use msn_geom::{Point, Rect};
use msn_voronoi::{cells_match, restricted_cell, VoronoiDiagram};
use proptest::prelude::*;

fn sites_strategy() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((1.0..999.0f64, 1.0..999.0f64), 2..25)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

fn bounds() -> Rect {
    Rect::new(0.0, 0.0, 1000.0, 1000.0)
}

proptest! {
    #[test]
    fn cells_tile_the_bounds(sites in sites_strategy()) {
        let vd = VoronoiDiagram::compute(&sites, bounds());
        let total: f64 = vd.cells().iter().map(|c| c.area()).sum();
        prop_assert!((total - bounds().area()).abs() < 1.0,
            "cells must tile the field, got {total}");
    }

    #[test]
    fn each_cell_contains_its_site(sites in sites_strategy()) {
        let vd = VoronoiDiagram::compute(&sites, bounds());
        for (i, c) in vd.cells().iter().enumerate() {
            if !c.is_degenerate() {
                prop_assert!(c.contains(sites[i]),
                    "cell {i} must contain its own site");
            }
        }
    }

    #[test]
    fn restricted_cell_is_superset(sites in sites_strategy(), k in 0usize..5) {
        let vd = VoronoiDiagram::compute(&sites, bounds());
        // site 0 with only the first k other sites as neighbors
        let neighbors: Vec<usize> = (1..sites.len()).take(k).collect();
        let r = restricted_cell(0, &sites, &neighbors, bounds());
        prop_assert!(r.area() >= vd.cell(0).area() - 1e-6);
    }

    #[test]
    fn full_neighbor_set_matches_diagram(sites in sites_strategy()) {
        let vd = VoronoiDiagram::compute(&sites, bounds());
        let all: Vec<usize> = (1..sites.len()).collect();
        let r = restricted_cell(0, &sites, &all, bounds());
        prop_assert!(cells_match(&r, vd.cell(0), 1e-6));
    }

    #[test]
    fn minimax_point_no_worse_than_site(sites in sites_strategy()) {
        let vd = VoronoiDiagram::compute(&sites, bounds());
        for c in vd.cells() {
            if let (Some(mp), Some(site_max)) = (c.minimax_point(), c.max_vertex_dist(c.site())) {
                let mp_max = c.max_vertex_dist(mp).unwrap();
                prop_assert!(mp_max <= site_max + 1e-6,
                    "minimax point must not increase the max vertex distance");
            }
        }
    }
}
