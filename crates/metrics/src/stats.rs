//! Streaming summary statistics.

use std::fmt;

/// Streaming min / max / mean / standard deviation over `f64`
/// samples (Welford's online algorithm).
///
/// # Examples
///
/// ```
/// use msn_metrics::Summary;
///
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std(), 2.138089935299395);
/// assert_eq!(s.min(), 2.0);
/// assert_eq!(s.max(), 9.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite.
    pub fn add(&mut self, x: f64) {
        assert!(x.is_finite(), "samples must be finite");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Returns `true` before any sample was added.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample standard deviation (n−1 denominator; 0 for < 2 samples).
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Standard error of the mean (0 for < 2 samples).
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval
    /// of the mean (`1.96 · std_err`; 0 for < 2 samples).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }

    /// Smallest sample (+∞ for an empty summary).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (−∞ for an empty summary).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.n,
            self.mean(),
            self.std(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.std(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let s: Summary = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.std() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci95_shrinks_with_samples() {
        let small: Summary = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let big: Summary = (0..100).map(|i| 1.0 + (i % 4) as f64).collect();
        assert!(small.ci95_half_width() > 0.0);
        assert!(big.ci95_half_width() < small.ci95_half_width());
        assert_eq!(Summary::new().ci95_half_width(), 0.0);
        let one: Summary = [5.0].into_iter().collect();
        assert_eq!(one.std_err(), 0.0);
    }

    #[test]
    fn extend_accumulates() {
        let mut s = Summary::new();
        s.extend([1.0, 2.0]);
        s.extend([3.0]);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        Summary::new().add(f64::NAN);
    }
}
