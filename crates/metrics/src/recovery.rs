//! Recovery metrics for dynamic runs.
//!
//! When a scheduled event perturbs a run (sensors fail, an obstacle
//! appears, the base relocates), coverage dips and the scheme heals
//! it. Three numbers characterize each dip: how deep it went, how
//! long it took to climb back to a fraction of the pre-event
//! coverage, and how much movement the healing cost. This module
//! computes them from the stitched coverage timeline and the event
//! records a dynamic run produces — it depends on nothing but plain
//! timelines, so the crate stays dependency-free.

/// What recovery analysis needs to know about one fired event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMark {
    /// Simulation time (s) at which the event fired.
    pub time: f64,
    /// Machine-readable event kind (`"fail"`, `"obstacle-add"`, …).
    pub kind: String,
    /// Coverage fraction sampled immediately before the event.
    pub pre_coverage: f64,
    /// Coverage fraction sampled immediately after the event.
    pub post_coverage: f64,
    /// Commanded travel distance (m) accumulated from this event to
    /// the end of the run — the movement the recovery cost.
    pub post_move_dist: f64,
}

/// The recovery story of one event: the dip depth, the climb-back
/// time and the movement bill.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryStat {
    /// Simulation time (s) at which the event fired.
    pub event_time: f64,
    /// Machine-readable event kind.
    pub kind: String,
    /// Coverage immediately before the event.
    pub pre_coverage: f64,
    /// Coverage immediately after the event.
    pub post_coverage: f64,
    /// Minimum coverage between this event and the next (or the end
    /// of the run) — the bottom of the dip.
    pub min_coverage: f64,
    /// Seconds from the event until coverage first returns to
    /// `recovery_frac · pre_coverage`, searching to the end of the
    /// run; `None` if it never does.
    pub recovery_time: Option<f64>,
    /// Commanded travel distance (m) spent after the event.
    pub post_move_dist: f64,
}

/// Computes per-event recovery statistics from a `(time, coverage)`
/// timeline and the events that fired during it.
///
/// For each event, `min_coverage` is taken over the window from the
/// event to the next event (exclusive) or the end of the run — a
/// later event's dip is its own story. `recovery_time` searches past
/// later events to the end of the run: recovery interrupted by a
/// second failure and completed afterwards still counts, with the
/// waiting time included. Samples at exactly the event instant count
/// toward the window (the runner pushes a post-event sample there).
pub fn recovery_stats(
    timeline: &[(f64, f64)],
    events: &[EventMark],
    recovery_frac: f64,
) -> Vec<RecoveryStat> {
    events
        .iter()
        .enumerate()
        .map(|(k, e)| {
            // The runner pushes a pre-event sample and a post-event
            // sample at the same instant; analysis starts at the
            // post-event one (the last sample at exactly the event
            // time), so the pre-event sample can neither count as
            // instant recovery nor leak into the dip window.
            let mut start = timeline.partition_point(|&(t, _)| t < e.time);
            while start + 1 < timeline.len() && timeline[start + 1].0 == e.time {
                start += 1;
            }
            let window_end = events.get(k + 1).map(|n| n.time);
            let min_coverage = timeline[start.min(timeline.len())..]
                .iter()
                .take_while(|&&(t, _)| window_end.is_none_or(|w| t < w))
                .map(|&(_, c)| c)
                .fold(e.post_coverage, f64::min);
            let threshold = recovery_frac * e.pre_coverage;
            let recovery_time = timeline[start.min(timeline.len())..]
                .iter()
                .find(|&&(_, c)| c >= threshold)
                .map(|&(t, _)| t - e.time);
            RecoveryStat {
                event_time: e.time,
                kind: e.kind.clone(),
                pre_coverage: e.pre_coverage,
                post_coverage: e.post_coverage,
                min_coverage,
                recovery_time,
                post_move_dist: e.post_move_dist,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mark(time: f64, pre: f64, post: f64) -> EventMark {
        EventMark {
            time,
            kind: "fail".to_string(),
            pre_coverage: pre,
            post_coverage: post,
            post_move_dist: 10.0,
        }
    }

    #[test]
    fn single_dip_recovers() {
        let timeline = vec![
            (0.0, 0.2),
            (10.0, 0.8),
            (10.0, 0.5), // post-event sample
            (15.0, 0.45),
            (20.0, 0.7),
            (25.0, 0.78),
        ];
        let stats = recovery_stats(&timeline, &[mark(10.0, 0.8, 0.5)], 0.95);
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.min_coverage, 0.45);
        // threshold 0.76: first reached at t=25
        assert_eq!(s.recovery_time, Some(15.0));
        assert_eq!(s.post_move_dist, 10.0);
    }

    #[test]
    fn unrecovered_dip_has_no_time() {
        let timeline = vec![(0.0, 0.9), (10.0, 0.9), (10.0, 0.4), (20.0, 0.6)];
        let stats = recovery_stats(&timeline, &[mark(10.0, 0.9, 0.4)], 0.95);
        assert_eq!(stats[0].recovery_time, None);
        assert_eq!(stats[0].min_coverage, 0.4);
    }

    #[test]
    fn windows_split_at_the_next_event_but_recovery_searches_past_it() {
        let timeline = vec![
            (0.0, 0.8),
            (10.0, 0.8),
            (10.0, 0.5),
            (15.0, 0.6),
            (20.0, 0.6),
            (20.0, 0.3), // second failure
            (30.0, 0.85),
        ];
        let events = vec![mark(10.0, 0.8, 0.5), mark(20.0, 0.6, 0.3)];
        let stats = recovery_stats(&timeline, &events, 0.95);
        // first dip bottoms at 0.5 inside its own window, not 0.3
        assert_eq!(stats[0].min_coverage, 0.5);
        // but its recovery (threshold 0.76) happens after event 2
        assert_eq!(stats[0].recovery_time, Some(20.0));
        assert_eq!(stats[1].min_coverage, 0.3);
        // second dip: threshold 0.57, reached at t=30
        assert_eq!(stats[1].recovery_time, Some(10.0));
    }

    #[test]
    fn instant_recovery_when_dip_stays_above_threshold() {
        // a tiny event that never drops below the threshold recovers
        // at the post-event sample itself
        let timeline = vec![(0.0, 0.8), (10.0, 0.8), (10.0, 0.79)];
        let stats = recovery_stats(&timeline, &[mark(10.0, 0.8, 0.79)], 0.95);
        assert_eq!(stats[0].recovery_time, Some(0.0));
    }

    #[test]
    fn empty_events_empty_stats() {
        assert!(recovery_stats(&[(0.0, 0.5)], &[], 0.95).is_empty());
    }
}
