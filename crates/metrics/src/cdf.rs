//! Empirical cumulative distribution functions (Figure 13).

use std::fmt;

/// An empirical CDF over `f64` samples.
///
/// # Examples
///
/// ```
/// use msn_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.fraction_below(2.5), 0.5);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// assert_eq!(cdf.median(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples, or `None` if `samples` is empty.
    ///
    /// # Panics
    ///
    /// Panics if any sample is not finite.
    pub fn from_samples(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Cdf { sorted: samples })
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` (construction rejects empty sample sets).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` — the CDF value F(x).
    pub fn fraction_below(&self, x: f64) -> f64 {
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1), lower-interpolation convention:
    /// the smallest sample `v` with `F(v) >= q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Median (0.5 quantile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Exports `(x, F(x))` pairs at `steps + 1` evenly spaced x values
    /// spanning the sample range — the series a plotting tool would
    /// consume to draw Figure 13.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0);
        let (lo, hi) = (self.min(), self.max());
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.fraction_below(x))
            })
            .collect()
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cdf(n={}, median={:.3}, mean={:.3}, range [{:.3}, {:.3}])",
            self.len(),
            self.median(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_none() {
        assert!(Cdf::from_samples(vec![]).is_none());
    }

    #[test]
    fn fraction_below_is_monotone_step() {
        let cdf = Cdf::from_samples(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.fraction_below(0.5), 0.0);
        assert!((cdf.fraction_below(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((cdf.fraction_below(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cdf.fraction_below(10.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let cdf = Cdf::from_samples((1..=10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.1), 1.0);
        assert_eq!(cdf.quantile(0.5), 5.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
        assert_eq!(cdf.median(), 5.0);
        assert_eq!(cdf.min(), 1.0);
        assert_eq!(cdf.max(), 10.0);
        assert_eq!(cdf.mean(), 5.5);
    }

    #[test]
    fn series_spans_range_and_ends_at_one() {
        let cdf = Cdf::from_samples(vec![0.0, 5.0, 10.0]).unwrap();
        let series = cdf.series(10);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].0, 0.0);
        assert_eq!(series[10].0, 10.0);
        assert_eq!(series[10].1, 1.0);
        // monotone
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn identical_samples() {
        let cdf = Cdf::from_samples(vec![7.0; 5]).unwrap();
        assert_eq!(cdf.median(), 7.0);
        assert_eq!(cdf.fraction_below(6.9), 0.0);
        assert_eq!(cdf.fraction_below(7.0), 1.0);
        let series = cdf.series(4);
        assert_eq!(series.len(), 5);
    }
}
