//! Plain-text tables and CSV export.

use std::fmt;

/// A plain-text table with aligned columns, used by every experiment
/// binary to print paper-style result tables.
///
/// # Examples
///
/// ```
/// use msn_metrics::Table;
///
/// let mut t = Table::new(vec!["scheme", "coverage"]);
/// t.row(vec!["CPVF".into(), "74.5%".into()]);
/// t.row(vec!["FLOOR".into(), "78.8%".into()]);
/// let text = t.to_string();
/// assert!(text.contains("FLOOR"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Convenience: appends a row of display-able cells.
    pub fn row_display<D: fmt::Display>(&mut self, cells: Vec<D>) -> &mut Self {
        self.row(cells.into_iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows as raw cells (for CSV export or further processing).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>w$} |", w = widths[i])?;
            }
            writeln!(f)
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        writeln!(f, "{sep}")?;
        write_row(f, &self.headers)?;
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        write!(f, "{sep}")?;
        let _ = ncols;
        Ok(())
    }
}

/// Serializes headers and rows as CSV (RFC-4180-style quoting for
/// cells containing commas, quotes or newlines).
///
/// # Examples
///
/// ```
/// use msn_metrics::to_csv;
///
/// let csv = to_csv(
///     &["a".into(), "b".into()],
///     &[vec!["1".into(), "x,y".into()]],
/// );
/// assert_eq!(csv, "a,b\n1,\"x,y\"\n");
/// ```
pub fn to_csv(headers: &[String], rows: &[Vec<String>]) -> String {
    fn quote(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_borders() {
        let mut t = Table::new(vec!["n", "value"]);
        t.row_display(vec![1, 100]);
        t.row_display(vec![22, 3]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with('+'));
        // all lines equal width
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
        assert_eq!(t.headers().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn csv_quoting() {
        let csv = to_csv(
            &["h1".into(), "h\"2".into()],
            &[vec!["plain".into(), "with,comma".into()]],
        );
        assert_eq!(csv, "h1,\"h\"\"2\"\nplain,\"with,comma\"\n");
    }

    #[test]
    fn csv_roundtrip_simple() {
        let mut t = Table::new(vec!["x", "y"]);
        t.row_display(vec![1.5, 2.5]);
        let csv = to_csv(t.headers(), t.rows());
        assert_eq!(csv, "x,y\n1.5,2.5\n");
    }
}
