//! Statistics, CDFs and table formatting for experiment reports.
//!
//! The paper reports scalar summaries (mean coverage, average moving
//! distance), cumulative distribution functions (Figure 13) and tables
//! (Table 1). This crate provides the small measurement/reporting
//! toolkit the experiment harness uses:
//!
//! * [`Summary`] — streaming min/max/mean/std over `f64` samples;
//! * [`Cdf`] — empirical CDFs with quantile queries and fixed-step
//!   series export;
//! * [`Table`] — plain-text table builder with aligned columns;
//! * [`to_csv`] — CSV export of row-oriented data;
//! * [`recovery_stats`] — per-event coverage-dip / recovery-time
//!   analysis for dynamic runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod recovery;
mod stats;
mod table;

pub use cdf::Cdf;
pub use recovery::{recovery_stats, EventMark, RecoveryStat};
pub use stats::Summary;
pub use table::{to_csv, Table};
