//! The Hungarian algorithm (shortest-augmenting-path formulation).

use crate::CostMatrix;
use std::fmt;

/// The result of an assignment solve.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `assignment[row] = column` matched to that row.
    pub assignment: Vec<usize>,
    /// Sum of the costs of the matched pairs.
    pub total_cost: f64,
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assignment of {} rows, total cost {:.3}",
            self.assignment.len(),
            self.total_cost
        )
    }
}

/// Solves the minimum-cost assignment problem exactly.
///
/// Uses the `O(n²·m)` shortest-augmenting-path formulation with row and
/// column potentials (the "Hungarian algorithm" as commonly implemented
/// for dense matrices). Handles rectangular instances with
/// `rows <= cols`; every row is matched to a distinct column.
///
/// The paper uses this to compute (a) the minimum moving distance of
/// the VOR/Minimax explosion phase and (b) the optimal-movement
/// baselines of Figure 11.
///
/// # Panics
///
/// Panics if the matrix has more rows than columns.
///
/// # Examples
///
/// ```
/// use msn_assign::{hungarian, CostMatrix};
///
/// let m = CostMatrix::from_rows(vec![
///     vec![4.0, 1.0, 3.0],
///     vec![2.0, 0.0, 5.0],
///     vec![3.0, 2.0, 2.0],
/// ]);
/// let sol = hungarian(&m);
/// assert_eq!(sol.total_cost, 5.0); // 1 + 2 + 2
/// ```
pub fn hungarian(costs: &CostMatrix) -> Assignment {
    let n = costs.rows();
    let m = costs.cols();
    assert!(
        n <= m,
        "hungarian requires rows <= cols; transpose the problem"
    );

    // 1-indexed potentials and matching, per the classic formulation:
    // u[i] for rows, v[j] for columns, way[j] = previous column on the
    // augmenting path, p[j] = row matched to column j (0 = none).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = costs.get(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path back to the virtual column 0.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assignment.iter().all(|&c| c != usize::MAX));
    let total_cost = costs.assignment_cost(&assignment);
    Assignment {
        assignment,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive minimum over all permutations, for cross-checking.
    fn brute_force(costs: &CostMatrix) -> f64 {
        fn rec(costs: &CostMatrix, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == costs.rows() {
                *best = best.min(acc);
                return;
            }
            if acc >= *best {
                return;
            }
            for c in 0..costs.cols() {
                if !used[c] {
                    used[c] = true;
                    rec(costs, row + 1, used, acc + costs.get(row, c), best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(costs, 0, &mut vec![false; costs.cols()], 0.0, &mut best);
        best
    }

    #[test]
    fn one_by_one() {
        let m = CostMatrix::from_rows(vec![vec![7.0]]);
        let sol = hungarian(&m);
        assert_eq!(sol.assignment, vec![0]);
        assert_eq!(sol.total_cost, 7.0);
    }

    #[test]
    fn identity_is_optimal_for_diagonal_matrix() {
        let m = CostMatrix::from_fn(4, 4, |r, c| if r == c { 0.0 } else { 10.0 });
        let sol = hungarian(&m);
        assert_eq!(sol.assignment, vec![0, 1, 2, 3]);
        assert_eq!(sol.total_cost, 0.0);
    }

    #[test]
    fn classic_3x3() {
        let m = CostMatrix::from_rows(vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ]);
        let sol = hungarian(&m);
        assert_eq!(sol.total_cost, 5.0);
        assert_eq!(sol.total_cost, brute_force(&m));
    }

    #[test]
    fn rectangular_chooses_best_columns() {
        let m = CostMatrix::from_rows(vec![
            vec![10.0, 10.0, 1.0, 10.0],
            vec![10.0, 2.0, 10.0, 10.0],
        ]);
        let sol = hungarian(&m);
        assert_eq!(sol.assignment, vec![2, 1]);
        assert_eq!(sol.total_cost, 3.0);
    }

    #[test]
    fn matches_brute_force_on_pseudorandom_instances() {
        for seed in 0..30u64 {
            // xorshift-style deterministic costs
            let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 10.0
            };
            let n = 2 + (seed % 5) as usize; // 2..=6
            let m_cols = n + (seed % 3) as usize;
            let m = CostMatrix::from_fn(n, m_cols, |_, _| next());
            let sol = hungarian(&m);
            let bf = brute_force(&m);
            assert!(
                (sol.total_cost - bf).abs() < 1e-9,
                "seed {seed}: hungarian {} != brute force {bf}",
                sol.total_cost
            );
            // assignment is a valid injection
            let mut seen = vec![false; m_cols];
            for &c in &sol.assignment {
                assert!(!seen[c], "column used twice");
                seen[c] = true;
            }
        }
    }

    #[test]
    fn all_equal_costs_any_permutation_is_fine() {
        let m = CostMatrix::from_fn(5, 5, |_, _| 3.0);
        let sol = hungarian(&m);
        assert_eq!(sol.total_cost, 15.0);
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn more_rows_than_cols_panics() {
        let m = CostMatrix::from_rows(vec![vec![1.0], vec![2.0]]);
        hungarian(&m);
    }
}
