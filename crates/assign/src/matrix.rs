//! Dense cost matrices.

use std::fmt;

/// A dense row-major cost matrix for assignment problems.
///
/// Rows are "sources" (initial sensor positions), columns are "sinks"
/// (target positions). All costs must be finite and non-negative.
///
/// # Examples
///
/// ```
/// use msn_assign::CostMatrix;
///
/// let m = CostMatrix::from_fn(2, 3, |r, c| (r + c) as f64);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m.get(1, 2), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Builds a matrix from a row-of-rows representation.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty, ragged, or contain non-finite or
    /// negative values.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Self {
        assert!(!rows.is_empty(), "cost matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "cost matrix needs at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in &rows {
            assert_eq!(row.len(), cols, "ragged cost matrix");
            for &v in row {
                assert!(v.is_finite() && v >= 0.0, "costs must be finite and >= 0");
                data.push(v);
            }
        }
        CostMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds an `n × m` matrix by evaluating `f(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `m` is zero, or `f` returns a non-finite or
    /// negative value.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, m: usize, mut f: F) -> Self {
        assert!(n > 0 && m > 0, "cost matrix must be non-empty");
        let mut data = Vec::with_capacity(n * m);
        for r in 0..n {
            for c in 0..m {
                let v = f(r, c);
                assert!(v.is_finite() && v >= 0.0, "costs must be finite and >= 0");
                data.push(v);
            }
        }
        CostMatrix {
            rows: n,
            cols: m,
            data,
        }
    }

    /// Euclidean distances from each source point to each target point.
    ///
    /// This is the matrix used throughout the paper's moving-distance
    /// baselines.
    ///
    /// # Panics
    ///
    /// Panics if either slice is empty.
    pub fn euclidean(sources: &[msn_geom::Point], targets: &[msn_geom::Point]) -> Self {
        CostMatrix::from_fn(sources.len(), targets.len(), |r, c| {
            sources[r].dist(targets[c])
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cost at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Total cost of a row-to-column assignment (`assignment[r] = c`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is the wrong length or indexes out of
    /// range.
    pub fn assignment_cost(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.rows, "assignment length mismatch");
        assignment
            .iter()
            .enumerate()
            .map(|(r, &c)| self.get(r, c))
            .sum()
    }
}

impl fmt::Display for CostMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} cost matrix", self.rows, self.cols)?;
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:8.2} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Point;

    #[test]
    fn from_rows_roundtrip() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 4.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        CostMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_costs_panic() {
        CostMatrix::from_rows(vec![vec![-1.0]]);
    }

    #[test]
    fn euclidean_costs() {
        let src = [Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let dst = [Point::new(3.0, 4.0)];
        let m = CostMatrix::euclidean(&src, &dst);
        assert_eq!(m.get(0, 0), 5.0);
        assert!((m.get(1, 0) - 65f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn assignment_cost_sums_entries() {
        let m = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.assignment_cost(&[1, 0]), 5.0);
        assert_eq!(m.assignment_cost(&[0, 1]), 5.0);
    }
}
