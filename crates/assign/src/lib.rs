//! Assignment solvers for deployment baselines.
//!
//! The paper charges the VOR/Minimax "explosion" phase and the OPT
//! baselines the *minimum possible* total moving distance, computed as a
//! minimum-weight bipartite matching between initial sensor positions
//! and target positions (§6.2, solved with the Hungarian algorithm).
//!
//! * [`hungarian`] — exact `O(n²·m)` minimum-cost assignment
//!   (shortest-augmenting-path formulation with potentials);
//! * [`greedy_assignment`] — fast upper bound, used in tests as a
//!   sanity cross-check;
//! * [`CostMatrix`] — dense row-major cost storage with a builder for
//!   Euclidean point-to-point costs.
//!
//! # Examples
//!
//! ```
//! use msn_assign::{hungarian, CostMatrix};
//!
//! // Two workers, two tasks: the off-diagonal assignment is cheaper.
//! let costs = CostMatrix::from_rows(vec![vec![10.0, 1.0], vec![1.0, 10.0]]);
//! let sol = hungarian(&costs);
//! assert_eq!(sol.assignment, vec![1, 0]);
//! assert_eq!(sol.total_cost, 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hungarian;
mod matrix;

pub use hungarian::{hungarian, Assignment};
pub use matrix::CostMatrix;

/// Greedy assignment: repeatedly matches the globally cheapest
/// remaining (row, column) pair.
///
/// Runs in `O(n·m·log(n·m))`; the result is an upper bound on the
/// optimal cost, typically within a few percent for random Euclidean
/// instances. Returns the column assigned to each row.
///
/// # Panics
///
/// Panics if the matrix has more rows than columns.
pub fn greedy_assignment(costs: &CostMatrix) -> Assignment {
    let (n, m) = (costs.rows(), costs.cols());
    assert!(n <= m, "greedy assignment requires rows <= cols");
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * m);
    for r in 0..n {
        for c in 0..m {
            pairs.push((costs.get(r, c), r, c));
        }
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
    let mut row_done = vec![false; n];
    let mut col_done = vec![false; m];
    let mut assignment = vec![usize::MAX; n];
    let mut total = 0.0;
    let mut matched = 0;
    for (cost, r, c) in pairs {
        if matched == n {
            break;
        }
        if !row_done[r] && !col_done[c] {
            row_done[r] = true;
            col_done[c] = true;
            assignment[r] = c;
            total += cost;
            matched += 1;
        }
    }
    Assignment {
        assignment,
        total_cost: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_matches_trivial_instance() {
        let costs = CostMatrix::from_rows(vec![vec![1.0, 5.0], vec![5.0, 1.0]]);
        let sol = greedy_assignment(&costs);
        assert_eq!(sol.assignment, vec![0, 1]);
        assert_eq!(sol.total_cost, 2.0);
    }

    #[test]
    fn greedy_handles_rectangular() {
        let costs = CostMatrix::from_rows(vec![vec![9.0, 2.0, 7.0]]);
        let sol = greedy_assignment(&costs);
        assert_eq!(sol.assignment, vec![1]);
        assert_eq!(sol.total_cost, 2.0);
    }

    #[test]
    fn greedy_never_beats_hungarian() {
        // A classic greedy trap: taking the cheapest edge first forces an
        // expensive completion.
        let costs = CostMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 100.0]]);
        let g = greedy_assignment(&costs);
        let h = hungarian(&costs);
        assert!(h.total_cost <= g.total_cost);
        assert_eq!(h.total_cost, 4.0);
        assert_eq!(g.total_cost, 101.0);
    }
}
