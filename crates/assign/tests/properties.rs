//! Property-based tests for assignment solvers.

use msn_assign::{greedy_assignment, hungarian, CostMatrix};
use msn_geom::Point;
use proptest::prelude::*;

proptest! {
    #[test]
    fn hungarian_not_worse_than_greedy(
        rows in prop::collection::vec(prop::collection::vec(0.0..100.0f64, 6), 1..6)
    ) {
        let cols = rows[0].len();
        prop_assume!(rows.len() <= cols);
        let m = CostMatrix::from_rows(rows);
        let h = hungarian(&m);
        let g = greedy_assignment(&m);
        prop_assert!(h.total_cost <= g.total_cost + 1e-9);
    }

    #[test]
    fn hungarian_not_worse_than_identity_permutation(
        vals in prop::collection::vec(0.0..100.0f64, 16)
    ) {
        let m = CostMatrix::from_fn(4, 4, |r, c| vals[r * 4 + c]);
        let h = hungarian(&m);
        let identity: Vec<usize> = (0..4).collect();
        prop_assert!(h.total_cost <= m.assignment_cost(&identity) + 1e-9);
        // and not worse than the reversal either
        let rev: Vec<usize> = (0..4).rev().collect();
        prop_assert!(h.total_cost <= m.assignment_cost(&rev) + 1e-9);
    }

    #[test]
    fn assignment_is_injective(
        vals in prop::collection::vec(0.0..50.0f64, 30)
    ) {
        let m = CostMatrix::from_fn(5, 6, |r, c| vals[r * 6 + c]);
        let h = hungarian(&m);
        let mut seen = [false; 6];
        for &c in &h.assignment {
            prop_assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn euclidean_self_assignment_is_zero(
        xs in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..10)
    ) {
        let pts: Vec<Point> = xs.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let m = CostMatrix::euclidean(&pts, &pts);
        let h = hungarian(&m);
        prop_assert!(h.total_cost <= 1e-9, "matching a set to itself costs nothing");
    }
}
