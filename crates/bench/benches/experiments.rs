//! `cargo bench` entry point that regenerates every figure and table
//! at reduced (quick-profile) scale, printing the same rows/series the
//! paper reports. Use the `src/bin` binaries for full-scale runs.

fn main() {
    // Respect the libtest-style --bench flag cargo passes.
    let profile = msn_bench::Profile::quick();
    for (name, f) in [
        (
            "fig3",
            msn_bench::fig3::run as fn(&msn_bench::Profile) -> String,
        ),
        ("fig8", msn_bench::fig8::run),
        ("fig9", msn_bench::fig9::run),
        ("fig10", msn_bench::fig10::run),
        ("fig11", msn_bench::fig11::run),
        ("fig12", msn_bench::fig12::run),
        ("fig13", msn_bench::fig13::run),
        ("table1", msn_bench::table1::run),
        ("ablation", msn_bench::ablation::run),
        ("uniform_init", msn_bench::uniform_init::run),
    ] {
        let start = std::time::Instant::now();
        let report = f(&profile);
        println!(
            "=== {name} (quick profile, {:.1}s) ===",
            start.elapsed().as_secs_f64()
        );
        println!("{report}");
    }
}
