//! Criterion micro-benchmarks of the computational kernels every
//! experiment leans on: Voronoi cell construction, Hungarian matching,
//! minimum enclosing circles, coverage rasters (full, scratch-reuse
//! and incremental-tracker paths), BUG2 navigation and disk-graph
//! construction.
//!
//! Besides printing per-iteration times, the harness exports the
//! measurements as a machine-readable perf record: `BENCH_pr8.json`
//! in the working directory, or wherever `MSN_BENCH_OUT` points. CI
//! uploads it as an artifact and gates it against the committed
//! `BENCH_pr7.json` baseline via `scenario bench-diff` (see the
//! baseline-rotation policy in the README's Performance section).

use criterion::{BatchSize, Criterion};
use msn_assign::{hungarian, CostMatrix};
use msn_field::{CoverageGrid, CoverageTracker, Field};
use msn_geom::{min_enclosing_circle, Point, Rect, Segment};
use msn_nav::{Hand, NavContext, Navigator};
use msn_net::{AdjacencyTracker, ConnectivityTracker, DiskGraph, PointIndex, SpatialGrid};
use msn_scenario::Json;
use msn_voronoi::VoronoiDiagram;
use std::hint::black_box;
use std::sync::Arc;

fn sites(n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = i as f64;
            Point::new(
                500.0 + 480.0 * (a * 0.7321).sin(),
                500.0 + 480.0 * (a * 1.1173).cos(),
            )
        })
        .collect()
}

fn bench_voronoi(c: &mut Criterion) {
    let pts = sites(240);
    let bounds = Rect::new(0.0, 0.0, 1000.0, 1000.0);
    c.bench_function("voronoi_diagram_240_sites", |b| {
        b.iter(|| VoronoiDiagram::compute(black_box(&pts), bounds))
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let src = sites(240);
    let dst: Vec<Point> = sites(240)
        .into_iter()
        .map(|p| Point::new(p.y, p.x))
        .collect();
    c.bench_function("hungarian_240x240_euclidean", |b| {
        b.iter_batched(
            || CostMatrix::euclidean(&src, &dst),
            |m| hungarian(black_box(&m)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_mec(c: &mut Criterion) {
    let pts = sites(200);
    c.bench_function("min_enclosing_circle_200_points", |b| {
        b.iter(|| min_enclosing_circle(black_box(&pts)))
    });
}

fn bench_coverage(c: &mut Criterion) {
    let field = Field::open(1000.0, 1000.0);
    let grid = CoverageGrid::new(&field, 2.5);
    let pts = sites(240);
    c.bench_function("coverage_grid_240_sensors_rs40", |b| {
        b.iter(|| grid.coverage(black_box(&pts), 40.0))
    });
    c.bench_function("covered_mask_240_sensors_rs40", |b| {
        b.iter(|| grid.covered_mask(black_box(&pts), 40.0))
    });
    // the reusable-scratch variant the hot paths use
    let mut scratch = Vec::new();
    c.bench_function("covered_mask_into_reused_scratch", |b| {
        b.iter(|| grid.covered_mask_into(black_box(&pts), 40.0, &mut scratch))
    });
}

fn bench_tracker(c: &mut Criterion) {
    let field = Field::open(1000.0, 1000.0);
    let grid = CoverageGrid::new(&field, 2.5);
    let pts = sites(240);
    let mut tracker = CoverageTracker::new(grid, &pts, 40.0);
    // Settle the initial stamps, then measure the steady state: one
    // sensor moved per query — the O(disk) path that replaces the
    // O(N·disk) full rasterization.
    tracker.coverage();
    let mut step = 0u64;
    c.bench_function("tracker_move_one_sensor_and_query", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let wobble = (step % 16) as f64;
            tracker.set_sensor(
                (step % 240) as usize,
                Point::new(500.0 + wobble, 500.0 - wobble),
            );
            black_box(tracker.coverage())
        })
    });
}

fn bench_bug2(c: &mut Criterion) {
    let field = Field::with_obstacles(
        1000.0,
        1000.0,
        vec![
            Rect::new(300.0, 200.0, 400.0, 800.0).to_polygon(),
            Rect::new(600.0, 100.0, 700.0, 600.0).to_polygon(),
        ],
    );
    c.bench_function("bug2_full_path_two_obstacles", |b| {
        b.iter(|| {
            let mut nav = Navigator::new(
                &field,
                Point::new(50.0, 500.0),
                Point::new(950.0, 500.0),
                Hand::Right,
            );
            while !nav.is_done() && !nav.is_stuck() {
                nav.advance(10.0);
            }
            black_box(nav.traveled())
        })
    });
}

fn bench_nav_context(c: &mut Criterion) {
    // A dense obstacle field — a 6×6 grid of rectangles, ~300
    // offset-ring edges — the regime the random-obstacle sweeps push
    // navigation into.
    let mut obstacles = Vec::new();
    for gy in 0..6 {
        for gx in 0..6 {
            let x = 80.0 + 150.0 * gx as f64;
            let y = 80.0 + 150.0 * gy as f64;
            obstacles.push(Rect::new(x, y, x + 70.0, y + 70.0).to_polygon());
        }
    }
    let field = Field::with_obstacles(1000.0, 1000.0, obstacles);
    let ctx = NavContext::new(&field);
    // Probe mix matching BUG2's queries: mostly step-length segments,
    // a few long can-progress sight lines.
    let probes: Vec<Segment> = (0..64)
        .map(|i| {
            let a = i as f64;
            let from = Point::new(
                500.0 + 480.0 * (a * 0.7321).sin(),
                500.0 + 480.0 * (a * 1.1173).cos(),
            );
            let to = if i % 4 == 0 {
                Point::new(
                    500.0 + 480.0 * (a * 1.9731).sin(),
                    500.0 + 480.0 * (a * 0.4177).cos(),
                )
            } else {
                from + Point::from_angle(a * 2.39996) * 25.0
            };
            Segment::new(from, to)
        })
        .collect();
    c.bench_function("first_ring_hit_linear_dense_field", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for seg in &probes {
                if ctx
                    .first_ring_hit_linear(black_box(seg), None, true)
                    .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    let mut scratch = ctx.scratch();
    c.bench_function("first_ring_hit_indexed_dense_field", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for seg in &probes {
                if ctx
                    .first_ring_hit(&mut scratch, black_box(seg), None, true)
                    .is_some()
                {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    // End-to-end: a full BUG2 plan through the shared context (the
    // pattern FLOOR's relocations and CPVF's walkers now use).
    let ctx = Arc::new(ctx);
    c.bench_function("bug2_plan_obstacle_field", |b| {
        b.iter(|| {
            let mut nav = Navigator::with_context(
                ctx.clone(),
                Point::new(20.0, 15.0),
                Point::new(980.0, 985.0),
                Hand::Right,
            );
            while !nav.is_done() && !nav.is_stuck() {
                nav.advance(10.0);
            }
            black_box(nav.traveled())
        })
    });
}

fn bench_disk_stamp(c: &mut Criterion) {
    let field = Field::open(1000.0, 1000.0);
    let grid = CoverageGrid::new(&field, 2.5);
    let centers = sites(64);
    // The scanline stamp (row spans refined with the exact per-cell
    // predicate) vs the chord oracle it replaced (per-cell distance
    // test across the padded chord window). Identical visited sets;
    // bench-diff keeps the scanline ahead.
    c.bench_function("stamp_scanline_vs_chord", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &s in &centers {
                total += grid.disk_cells(black_box(s), 40.0).len();
            }
            black_box(total)
        })
    });
    c.bench_function("stamp_chord_reference", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &s in &centers {
                total += grid.disk_cells_chord(black_box(s), 40.0).len();
            }
            black_box(total)
        })
    });
}

fn bench_diskgraph(c: &mut Criterion) {
    let pts = sites(240);
    c.bench_function("disk_graph_build_240_rc60", |b| {
        b.iter(|| DiskGraph::build(black_box(&pts), 60.0))
    });
}

fn bench_conntrack(c: &mut Criterion) {
    let orig = sites(240);
    let base = Point::new(500.0, 500.0);
    let rc = 60.0;
    // One sensor jitters around its home position each iteration —
    // bounded, so the workload stays stationary however many
    // iterations the harness settles on, yet the jitter is large
    // enough (±24 m at rc 60) to churn real link events.
    let wobble = |pts: &mut [Point], step: u64| {
        let i = (step % 240) as usize;
        // 240 is a multiple of 16, so fold the revisit count in: each
        // time a sensor's turn comes around it lands somewhere new.
        let w = ((step + step / 240) % 16) as f64;
        let p = orig[i] + Point::new(3.0 * w - 24.0, 16.0 - 2.0 * w);
        pts[i] = p;
        (i, p)
    };
    // The per-tick pattern the tracker replaces: rebuild the whole
    // disk graph and re-flood from the base after one sensor moved.
    let mut pts = orig.clone();
    let mut step = 0u64;
    c.bench_function("conn_rebuild_move_one_and_requery", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, _) = wobble(&mut pts, step);
            let g = DiskGraph::build(black_box(&pts), rc);
            black_box(g.flood_from_base(&pts, base, rc)[i])
        })
    });
    // The incremental path: same move, same question, answered from
    // the maintained hop distances.
    let mut pts = orig.clone();
    let mut tracker = ConnectivityTracker::new(&pts, base, rc);
    let mut step = 0u64;
    c.bench_function("conn_tracker_move_one_and_requery", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            tracker.set_sensor(i, p);
            black_box(tracker.is_connected(i))
        })
    });
}

fn bench_adjacency(c: &mut Criterion) {
    let orig = sites(240);
    let rc = 60.0;
    // The same bounded wobble the other incremental-kernel pairs use.
    let wobble = |pts: &mut [Point], step: u64| {
        let i = (step % 240) as usize;
        let w = ((step + step / 240) % 16) as f64;
        let p = orig[i] + Point::new(3.0 * w - 24.0, 16.0 - 2.0 * w);
        pts[i] = p;
        (i, p)
    };
    // The per-tick pattern FLOOR used: rebuild the whole disk graph
    // after one sensor moved, then read a neighbor list.
    let mut pts = orig.clone();
    let mut step = 0u64;
    c.bench_function("tick_graph_rebuild_move_one", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, _) = wobble(&mut pts, step);
            let g = DiskGraph::build(black_box(&pts), rc);
            black_box(g.neighbors(i).len())
        })
    });
    // The incremental path: same move, same read, served from
    // maintained grid-order lists.
    let mut pts = orig.clone();
    let mut tracker = AdjacencyTracker::new(&pts, rc);
    let mut step = 0u64;
    c.bench_function("tick_adjacency_move_one", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            tracker.set_sensor(i, p);
            black_box(tracker.neighbors(i).len())
        })
    });
}

fn bench_point_index(c: &mut Criterion) {
    let orig = sites(240);
    let r = 60.0;
    // One sensor jitters around its home position each iteration (the
    // same bounded wobble the connectivity kernels use).
    let wobble = |pts: &mut [Point], step: u64| {
        let i = (step % 240) as usize;
        let w = ((step + step / 240) % 16) as f64;
        let p = orig[i] + Point::new(3.0 * w - 24.0, 16.0 - 2.0 * w);
        pts[i] = p;
        (i, p)
    };
    // The per-tick pattern the index replaces: rebuild a SpatialGrid
    // from scratch after one sensor moved, then range-query it.
    let mut pts = orig.clone();
    let mut step = 0u64;
    c.bench_function("spatial_rebuild_move_one_and_requery", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, _) = wobble(&mut pts, step);
            let grid = SpatialGrid::build(black_box(&pts), r);
            black_box(grid.neighbors(&pts, i, r).len())
        })
    });
    // The incremental path: same move, same query, answered from
    // maintained buckets (byte-identical results, order included).
    let mut pts = orig.clone();
    let mut index = PointIndex::new(&pts, r);
    let mut step = 0u64;
    c.bench_function("point_index_move_one_and_requery", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            index.set_point(i, p);
            black_box(index.neighbors_within(i, r).len())
        })
    });
    // Overhead guard for the observability probes: the identical
    // workload with an msn-obs collector installed. bench-diff keeps
    // this within tolerance of the unprobed kernel above, so a probe
    // that grows a syscall or an allocation shows up as a regression.
    let mut pts = orig.clone();
    let mut index = PointIndex::new(&pts, r);
    let mut step = 0u64;
    msn_obs::start();
    c.bench_function("point_index_move_one_probed", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            index.set_point(i, p);
            black_box(index.neighbors_within(i, r).len())
        })
    });
    black_box(msn_obs::finish());
}

/// A quasi-uniform fleet over an `extent`-sized square (the R2
/// low-discrepancy sequence), deterministic and dense enough that
/// every sensor has a handful of rc-neighbors — the scale-tier
/// analogue of [`sites`].
fn fleet(n: usize, extent: f64) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let a = i as f64 + 1.0;
            Point::new(
                extent * (a * 0.754_877_666_2).fract(),
                extent * (a * 0.569_840_290_998).fract(),
            )
        })
        .collect()
}

fn bench_scale_10k(c: &mut Criterion) {
    // The 10k tier of the incremental move-one kernels: same bounded
    // wobble, same single-sensor query, a fleet 40x larger spread over
    // a 7 km field at comparable density. bench-diff keeps these
    // within tolerance so the sharded index's per-move cost stays
    // O(neighborhood) — a fleet-size-proportional sync would blow the
    // gate immediately.
    let n = 10_000;
    let extent = 7_000.0;
    let rc = 60.0;
    let orig = fleet(n, extent);
    let wobble = |pts: &mut [Point], step: u64| {
        let i = (step % n as u64) as usize;
        let w = ((step + step / n as u64) % 16) as f64;
        let p = orig[i] + Point::new(3.0 * w - 24.0, 16.0 - 2.0 * w);
        pts[i] = p;
        (i, p)
    };
    let mut pts = orig.clone();
    let mut index = PointIndex::new(&pts, rc);
    let mut step = 0u64;
    c.bench_function("point_index_move_one_10k", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            index.set_point(i, p);
            black_box(index.neighbors_within(i, rc).len())
        })
    });
    let mut pts = orig.clone();
    let mut tracker = AdjacencyTracker::new(&pts, rc);
    let mut step = 0u64;
    c.bench_function("tick_adjacency_move_one_10k", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            tracker.set_sensor(i, p);
            black_box(tracker.neighbors(i).len())
        })
    });
    let mut pts = orig.clone();
    let base = Point::new(extent / 2.0, extent / 2.0);
    let mut tracker = ConnectivityTracker::new(&pts, base, rc);
    let mut step = 0u64;
    c.bench_function("conn_tracker_move_one_10k", |b| {
        b.iter(|| {
            step = step.wrapping_add(1);
            let (i, p) = wobble(&mut pts, step);
            tracker.set_sensor(i, p);
            black_box(tracker.is_connected(i))
        })
    });
}

/// Runs every kernel group and writes the perf record. A hand-rolled
/// `main` (instead of `criterion_main!`) so the collected
/// measurements can be serialized after the run.
fn main() {
    let mut c = Criterion::default();
    bench_voronoi(&mut c);
    bench_hungarian(&mut c);
    bench_mec(&mut c);
    bench_coverage(&mut c);
    bench_tracker(&mut c);
    bench_bug2(&mut c);
    bench_nav_context(&mut c);
    bench_disk_stamp(&mut c);
    bench_diskgraph(&mut c);
    bench_conntrack(&mut c);
    bench_adjacency(&mut c);
    bench_point_index(&mut c);
    bench_scale_10k(&mut c);

    let kernels: Vec<Json> = c
        .results()
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name.as_str())
                .field("ns_per_iter", r.ns_per_iter)
                .field("iters", r.iters)
        })
        .collect();
    let record = Json::obj()
        .field("record", "BENCH_pr8")
        .field("suite", "kernels")
        .field("kernels", Json::Arr(kernels))
        .pretty();
    let out = std::env::var("MSN_BENCH_OUT").unwrap_or_else(|_| "BENCH_pr8.json".into());
    // Fail loudly: CI gates on this file, so an unwritable path must
    // break the job, not quietly skip the artifact.
    if let Err(e) = std::fs::write(&out, record) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out}");
}
