//! Figure 9: coverage of CPVF, FLOOR and OPT for varying numbers of
//! sensors and three (rc, rs) combinations.
//!
//! Implemented as a thin client of the `msn-scenario` engine: the
//! sweep is declared as a [`ScenarioSpec`] and executed by the
//! parallel [`BatchRunner`]; this module only formats the paper's
//! tables from the aggregated result.
//!
//! The paper's findings this experiment should reproduce in shape:
//! FLOOR beats CPVF everywhere, with the largest margin at small
//! `rc/rs` (e.g. rc = 20, rs = 60: CPVF ≈ 20 % vs FLOOR ≈ 46 % at 240
//! sensors); FLOOR approaches OPT as `rc` and `n` grow (within ~4 % at
//! rc = rs = 60 and n ≥ 200).

use crate::{pct, Profile};
use msn_deploy::SchemeKind;
use msn_metrics::Table;
use msn_scenario::{BatchRunner, RadioSpec, ScenarioSpec};

/// The (rc, rs) combinations the paper's Figure 9 sweeps.
pub const COMBOS: [(f64, f64); 3] = [(20.0, 60.0), (40.0, 60.0), (60.0, 60.0)];

/// The schemes Figure 9 compares, in column order.
const SCHEMES: [SchemeKind; 3] = [SchemeKind::Cpvf, SchemeKind::Floor, SchemeKind::Opt];

/// The experiment as a declarative scenario spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig9")
        .with_description("Figure 9: coverage vs sensor count for three (rc, rs) combos")
        .with_schemes(SCHEMES.to_vec())
        .with_sensor_counts(profile.n_sweep.clone())
        .with_radios(COMBOS.to_vec())
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// Runs Figure 9 (in parallel, via the scenario engine) and formats
/// the report.
pub fn run(profile: &Profile) -> String {
    let result = BatchRunner::new()
        .run(&spec(profile))
        .expect("fig9 spec is valid");
    let stats = result.cell_stats();
    let mut out = String::from("Figure 9 — coverage of CPVF, FLOOR and OPT vs sensor count\n");
    for (rc, rs) in COMBOS {
        let radio = RadioSpec::new(rc, rs);
        let mut table = Table::new(vec!["n", "CPVF", "FLOOR", "OPT"]);
        for &n in &profile.n_sweep {
            let mut cells = vec![n.to_string()];
            for scheme in SCHEMES {
                let cell = stats
                    .iter()
                    .find(|s| s.radio == radio && s.n == n && s.scheme == scheme)
                    .expect("matrix covers every (radio, n, scheme)");
                cells.push(pct(cell.coverage.mean()));
            }
            table.row(cells);
        }
        out.push_str(&format!("\nrc = {rc} m, rs = {rs} m\n{table}\n"));
    }
    out
}
