//! Figure 9: coverage of CPVF, FLOOR and OPT for varying numbers of
//! sensors and three (rc, rs) combinations.
//!
//! The paper's findings this experiment should reproduce in shape:
//! FLOOR beats CPVF everywhere, with the largest margin at small
//! `rc/rs` (e.g. rc = 20, rs = 60: CPVF ≈ 20 % vs FLOOR ≈ 46 % at 240
//! sensors); FLOOR approaches OPT as `rc` and `n` grow (within ~4 % at
//! rc = rs = 60 and n ≥ 200).

use crate::{clustered_initial, pct, Profile};
use msn_deploy::{run_scheme, SchemeKind};
use msn_field::paper_field;
use msn_metrics::Table;

/// The (rc, rs) combinations the paper's Figure 9 sweeps.
pub const COMBOS: [(f64, f64); 3] = [(20.0, 60.0), (40.0, 60.0), (60.0, 60.0)];

/// Runs Figure 9 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from("Figure 9 — coverage of CPVF, FLOOR and OPT vs sensor count\n");
    let field = paper_field();
    for (rc, rs) in COMBOS {
        let mut table = Table::new(vec!["n", "CPVF", "FLOOR", "OPT"]);
        for &n in &profile.n_sweep {
            let initial = clustered_initial(&field, n, profile.seed);
            let cfg = profile.cfg(rc, rs);
            let mut cells = vec![n.to_string()];
            for kind in [SchemeKind::Cpvf, SchemeKind::Floor, SchemeKind::Opt] {
                let r = run_scheme(kind, &field, &initial, &cfg);
                cells.push(pct(r.coverage));
            }
            table.row(cells);
        }
        out.push_str(&format!("\nrc = {rc} m, rs = {rs} m\n{table}\n"));
    }
    out
}
