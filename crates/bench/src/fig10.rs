//! Figure 10: coverage of FLOOR, VOR and Minimax for rs = 60 m and
//! rc/rs from 0.8 to 4, with the paper's `Disconn.` and
//! `Incorrect VD` annotations.
//!
//! Findings to reproduce in shape: VOR/Minimax lose connectivity for
//! `rc/rs ≤ 2` and compute incorrect Voronoi cells until `rc/rs`
//! reaches ≈3–4; Minimax collapses entirely (a few percent coverage)
//! below `rc/rs = 1`; with large `rc/rs` both can edge past FLOOR
//! because they ignore connectivity.

use crate::{clustered_initial, pct, Profile};
use msn_deploy::{floor, vd};
use msn_field::paper_field;
use msn_metrics::Table;

/// The rc/rs ratios swept (rs is fixed at 60 m).
pub const RATIOS: [f64; 7] = [0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0];

/// Runs Figure 10 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Figure 10 — coverage of FLOOR, VOR and Minimax vs rc/rs (rs = 60 m)\n\n");
    let field = paper_field();
    let rs = 60.0;
    let mut table = Table::new(vec!["rc/rs", "FLOOR", "VOR", "flags", "Minimax", "flags"]);
    for ratio in RATIOS {
        let rc = rs * ratio;
        let initial = clustered_initial(&field, profile.n_base, profile.seed);
        let cfg = profile.cfg(rc, rs);
        let fl = floor::run(&field, &initial, &floor::FloorParams::default(), &cfg);
        let vor = vd::run(
            &field,
            &initial,
            vd::VdVariant::Vor,
            &vd::VdParams::default(),
            &cfg,
        );
        let mm = vd::run(
            &field,
            &initial,
            vd::VdVariant::Minimax,
            &vd::VdParams::default(),
            &cfg,
        );
        table.row(vec![
            format!("{ratio:.1}"),
            pct(fl.coverage),
            pct(vor.coverage),
            vor.flags.join("+"),
            pct(mm.coverage),
            mm.flags.join("+"),
        ]);
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
