//! Figure 10: coverage of FLOOR, VOR and Minimax for rs = 60 m and
//! rc/rs from 0.8 to 4, with the paper's `Disconn.` and
//! `Incorrect VD` annotations.
//!
//! A thin client of the `msn-scenario` engine (bundled spec
//! `scenarios/fig10.toml`): the ratio sweep is the spec's radio axis
//! and the annotations surface through the per-cell flag union; this
//! module only formats the paper's table.
//!
//! Findings to reproduce in shape: VOR/Minimax lose connectivity for
//! `rc/rs ≤ 2` and compute incorrect Voronoi cells until `rc/rs`
//! reaches ≈3–4; Minimax collapses entirely (a few percent coverage)
//! below `rc/rs = 1`; with large `rc/rs` both can edge past FLOOR
//! because they ignore connectivity.

use crate::{pct, Profile};
use msn_deploy::SchemeKind;
use msn_metrics::Table;
use msn_scenario::{BatchRunner, RadioSpec, ScenarioSpec};

/// The rc/rs ratios swept (rs is fixed at 60 m).
pub const RATIOS: [f64; 7] = [0.8, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0];

/// Sensing range of the sweep (m).
pub const RS: f64 = 60.0;

/// The experiment as a declarative scenario spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig10")
        .with_description("Figure 10: FLOOR vs VOR vs Minimax over rc/rs ratios (rs = 60 m)")
        .with_schemes(vec![
            SchemeKind::Floor,
            SchemeKind::Vor,
            SchemeKind::Minimax,
        ])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(RATIOS.iter().map(|r| (r * RS, RS)).collect())
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// Runs Figure 10 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Figure 10 — coverage of FLOOR, VOR and Minimax vs rc/rs (rs = 60 m)\n\n");
    let result = BatchRunner::new()
        .run(&spec(profile))
        .expect("fig10 spec is valid");
    let stats = result.cell_stats();
    let mut table = Table::new(vec!["rc/rs", "FLOOR", "VOR", "flags", "Minimax", "flags"]);
    for ratio in RATIOS {
        let radio = RadioSpec::new(ratio * RS, RS);
        let find = |scheme| {
            stats
                .iter()
                .find(|s| s.radio == radio && s.scheme == scheme)
                .expect("matrix covers every (radio, scheme)")
        };
        let fl = find(SchemeKind::Floor);
        let vor = find(SchemeKind::Vor);
        let mm = find(SchemeKind::Minimax);
        table.row(vec![
            format!("{ratio:.1}"),
            pct(fl.coverage.mean()),
            pct(vor.coverage.mean()),
            vor.flags.join("+"),
            pct(mm.coverage.mean()),
            mm.flags.join("+"),
        ]);
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
