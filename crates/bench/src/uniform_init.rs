//! Uniform initial distribution (extension of Figures 9/11).
//!
//! §6 of the paper: "We have also tested an initial distribution in
//! which sensors are placed in the field uniformly at random; the
//! results are consistent with the clustered case". This experiment
//! verifies that claim for our implementation: coverage ordering
//! (FLOOR ≥ CPVF) and the moving-distance gap must persist, with both
//! schemes moving *less* than from the clustered start (sensors begin
//! closer to their final spots).

use crate::{clustered_initial, pct, Profile};
use msn_deploy::{cpvf, floor};
use msn_field::{paper_field, scatter_uniform};
use msn_metrics::Table;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs the comparison and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from(
        "Uniform vs clustered initial distribution (extension; rc = 60 m, rs = 40 m)\n\n",
    );
    let field = paper_field();
    let cfg = profile.cfg(60.0, 40.0);
    let n = profile.n_base;

    let clustered = clustered_initial(&field, n, profile.seed);
    let uniform = {
        let mut rng = SmallRng::seed_from_u64(profile.seed);
        scatter_uniform(&field, n, &mut rng)
    };

    let mut table = Table::new(vec![
        "initial",
        "scheme",
        "coverage",
        "avg move (m)",
        "connected",
    ]);
    for (dist_name, initial) in [("clustered", &clustered), ("uniform", &uniform)] {
        let r_cpvf = cpvf::run(&field, initial, &cpvf::CpvfParams::default(), &cfg);
        let r_floor = floor::run(&field, initial, &floor::FloorParams::default(), &cfg);
        for r in [r_cpvf, r_floor] {
            table.row(vec![
                dist_name.to_string(),
                r.scheme.clone(),
                pct(r.coverage),
                format!("{:.0}", r.avg_move),
                r.connected.to_string(),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\n\nThe paper reports the uniform case to be consistent with the\n\
         clustered one: the same ordering should hold in both halves of\n\
         the table.\n",
    );
    out
}
