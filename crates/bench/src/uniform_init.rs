//! Uniform initial distribution (extension of Figures 9/11).
//!
//! §6 of the paper: "We have also tested an initial distribution in
//! which sensors are placed in the field uniformly at random; the
//! results are consistent with the clustered case". This experiment
//! verifies that claim for our implementation: coverage ordering
//! (FLOOR ≥ CPVF) and the moving-distance gap must persist, with both
//! schemes moving *less* than from the clustered start (sensors begin
//! closer to their final spots).
//!
//! A thin client of the `msn-scenario` engine: the uniform half is
//! the bundled `scenarios/uniform-init.toml`; the clustered
//! comparison run is the same spec with the paper's clustered-quarter
//! scatter swapped in.

use crate::{pct, Profile};
use msn_deploy::SchemeKind;
use msn_metrics::Table;
use msn_scenario::{BatchRunner, ScatterSpec, ScenarioSpec};

/// The uniform-scatter experiment as a declarative spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("uniform-init")
        .with_description("Uniform initial scatter: CPVF vs FLOOR (extension of Figures 9/11)")
        .with_scatter(ScatterSpec::Uniform)
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// Runs the comparison (via the scenario engine) and formats the
/// report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from(
        "Uniform vs clustered initial distribution (extension; rc = 60 m, rs = 40 m)\n\n",
    );
    let uniform = spec(profile);
    let clustered = uniform
        .clone()
        .with_name("uniform-init-clustered")
        .with_scatter(ScatterSpec::ClusteredQuarter);
    let mut table = Table::new(vec![
        "initial",
        "scheme",
        "coverage",
        "avg move (m)",
        "connected",
    ]);
    for (dist_name, spec) in [("clustered", clustered), ("uniform", uniform)] {
        let result = BatchRunner::new().run(&spec).expect("spec is valid");
        for record in &result.records {
            table.row(vec![
                dist_name.to_string(),
                record.cell.scheme.name().to_string(),
                pct(record.coverage),
                format!("{:.0}", record.avg_move),
                record.connected.to_string(),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out.push_str(
        "\n\nThe paper reports the uniform case to be consistent with the\n\
         clustered one: the same ordering should hold in both halves of\n\
         the table.\n",
    );
    out
}
