//! Figure 13: CDFs of coverage and average moving distance for CPVF
//! vs FLOOR over repeated runs with 1–4 random rectangular obstacles.
//!
//! Implemented as a thin client of the `msn-scenario` engine: the
//! repeated random-obstacle workload is a [`ScenarioSpec`] with a
//! `random-obstacles` field and N repetitions, executed in parallel
//! by the [`BatchRunner`]; both schemes face identical environments
//! in every repetition (shared per-rep environment seed). This module
//! only builds the CDF tables from the per-run records.
//!
//! Findings to reproduce in shape: FLOOR's mean coverage exceeds
//! CPVF's by 20+ percentage points, at less than half the mean moving
//! distance.

use crate::{pct, Profile};
use msn_deploy::SchemeKind;
use msn_field::RandomObstacleParams;
use msn_metrics::{Cdf, Table};
use msn_scenario::{BatchRunner, FieldSpec, ScenarioSpec};

/// One scheme's samples across the random-obstacle runs.
#[derive(Debug, Clone)]
pub struct SchemeSamples {
    /// Scheme name.
    pub name: &'static str,
    /// Final coverage per run.
    pub coverage: Vec<f64>,
    /// Average moving distance per run.
    pub avg_move: Vec<f64>,
}

/// The experiment as a declarative scenario spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig13")
        .with_description("Figure 13: CPVF vs FLOOR CDFs over random-obstacle fields")
        .with_field(FieldSpec::RandomObstacles(RandomObstacleParams::default()))
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_repetitions(profile.fig13_runs)
        .with_seed(profile.seed)
}

/// Executes the experiment (in parallel, via the scenario engine),
/// returning raw samples for both schemes.
pub fn samples(profile: &Profile) -> (SchemeSamples, SchemeSamples) {
    let result = BatchRunner::new()
        .run(&spec(profile))
        .expect("fig13 spec is valid");
    let collect = |kind: SchemeKind, name: &'static str| {
        let records = result.scheme_records(kind);
        SchemeSamples {
            name,
            coverage: records.iter().map(|r| r.coverage).collect(),
            avg_move: records.iter().map(|r| r.avg_move).collect(),
        }
    };
    (
        collect(SchemeKind::Cpvf, "CPVF"),
        collect(SchemeKind::Floor, "FLOOR"),
    )
}

/// Runs Figure 13 and formats the CDF report.
pub fn run(profile: &Profile) -> String {
    let (c, f) = samples(profile);
    let mut out = format!(
        "Figure 13 — CDFs over {} random-obstacle runs (1-4 rectangles)\n\n",
        profile.fig13_runs
    );

    let mut summary = Table::new(vec![
        "scheme",
        "mean cov",
        "median cov",
        "mean move (m)",
        "median move (m)",
    ]);
    for s in [&c, &f] {
        let cov = Cdf::from_samples(s.coverage.clone()).expect("runs > 0");
        let mv = Cdf::from_samples(s.avg_move.clone()).expect("runs > 0");
        summary.row(vec![
            s.name.to_string(),
            pct(cov.mean()),
            pct(cov.median()),
            format!("{:.0}", mv.mean()),
            format!("{:.0}", mv.median()),
        ]);
    }
    out.push_str(&summary.to_string());
    out.push_str("\n\n(a) CDF of coverage\n");
    out.push_str(&cdf_table(
        &Cdf::from_samples(c.coverage.clone()).expect("non-empty"),
        &Cdf::from_samples(f.coverage.clone()).expect("non-empty"),
        true,
    ));
    out.push_str("\n(b) CDF of average moving distance\n");
    out.push_str(&cdf_table(
        &Cdf::from_samples(c.avg_move).expect("non-empty"),
        &Cdf::from_samples(f.avg_move).expect("non-empty"),
        false,
    ));
    out
}

fn cdf_table(cpvf: &Cdf, floor: &Cdf, as_pct: bool) -> String {
    let lo = cpvf.min().min(floor.min());
    let hi = cpvf.max().max(floor.max());
    let mut table = Table::new(vec!["x", "F_CPVF(x)", "F_FLOOR(x)"]);
    for i in 0..=10 {
        let x = lo + (hi - lo) * i as f64 / 10.0;
        let label = if as_pct { pct(x) } else { format!("{x:.0}") };
        table.row(vec![
            label,
            format!("{:.2}", cpvf.fraction_below(x)),
            format!("{:.2}", floor.fraction_below(x)),
        ]);
    }
    format!("{table}\n")
}
