//! Figure 13: CDFs of coverage and average moving distance for CPVF
//! vs FLOOR over repeated runs with 1–4 random rectangular obstacles.
//!
//! Findings to reproduce in shape: FLOOR's mean coverage exceeds
//! CPVF's by 20+ percentage points, at less than half the mean moving
//! distance.

use crate::{clustered_initial, pct, Profile};
use msn_deploy::{cpvf, floor};
use msn_field::{random_obstacle_field, RandomObstacleParams};
use msn_metrics::{Cdf, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One scheme's samples across the random-obstacle runs.
#[derive(Debug, Clone)]
pub struct SchemeSamples {
    /// Scheme name.
    pub name: &'static str,
    /// Final coverage per run.
    pub coverage: Vec<f64>,
    /// Average moving distance per run.
    pub avg_move: Vec<f64>,
}

/// Executes the experiment, returning raw samples for both schemes.
pub fn samples(profile: &Profile) -> (SchemeSamples, SchemeSamples) {
    let mut c = SchemeSamples {
        name: "CPVF",
        coverage: Vec::new(),
        avg_move: Vec::new(),
    };
    let mut f = SchemeSamples {
        name: "FLOOR",
        coverage: Vec::new(),
        avg_move: Vec::new(),
    };
    let params = RandomObstacleParams::default();
    for run_idx in 0..profile.fig13_runs {
        let seed = profile.seed + run_idx as u64;
        let mut rng = SmallRng::seed_from_u64(seed);
        let field = random_obstacle_field(&params, &mut rng);
        let initial = clustered_initial(&field, profile.n_base, seed);
        let cfg = profile.cfg(60.0, 40.0).with_seed(seed);
        let rc = cpvf::run(&field, &initial, &cpvf::CpvfParams::default(), &cfg);
        c.coverage.push(rc.coverage);
        c.avg_move.push(rc.avg_move);
        let rf = floor::run(&field, &initial, &floor::FloorParams::default(), &cfg);
        f.coverage.push(rf.coverage);
        f.avg_move.push(rf.avg_move);
    }
    (c, f)
}

/// Runs Figure 13 and formats the CDF report.
pub fn run(profile: &Profile) -> String {
    let (c, f) = samples(profile);
    let mut out = format!(
        "Figure 13 — CDFs over {} random-obstacle runs (1-4 rectangles)\n\n",
        profile.fig13_runs
    );

    let mut summary = Table::new(vec![
        "scheme",
        "mean cov",
        "median cov",
        "mean move (m)",
        "median move (m)",
    ]);
    for s in [&c, &f] {
        let cov = Cdf::from_samples(s.coverage.clone()).expect("runs > 0");
        let mv = Cdf::from_samples(s.avg_move.clone()).expect("runs > 0");
        summary.row(vec![
            s.name.to_string(),
            pct(cov.mean()),
            pct(cov.median()),
            format!("{:.0}", mv.mean()),
            format!("{:.0}", mv.median()),
        ]);
    }
    out.push_str(&summary.to_string());
    out.push_str("\n\n(a) CDF of coverage\n");
    out.push_str(&cdf_table(
        &Cdf::from_samples(c.coverage.clone()).expect("non-empty"),
        &Cdf::from_samples(f.coverage.clone()).expect("non-empty"),
        true,
    ));
    out.push_str("\n(b) CDF of average moving distance\n");
    out.push_str(&cdf_table(
        &Cdf::from_samples(c.avg_move).expect("non-empty"),
        &Cdf::from_samples(f.avg_move).expect("non-empty"),
        false,
    ));
    out
}

fn cdf_table(cpvf: &Cdf, floor: &Cdf, as_pct: bool) -> String {
    let lo = cpvf.min().min(floor.min());
    let hi = cpvf.max().max(floor.max());
    let mut table = Table::new(vec!["x", "F_CPVF(x)", "F_FLOOR(x)"]);
    for i in 0..=10 {
        let x = lo + (hi - lo) * i as f64 / 10.0;
        let label = if as_pct { pct(x) } else { format!("{x:.0}") };
        table.row(vec![
            label,
            format!("{:.2}", cpvf.fraction_below(x)),
            format!("{:.2}", floor.fraction_below(x)),
        ]);
    }
    format!("{table}\n")
}
