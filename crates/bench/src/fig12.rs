//! Figure 12: effect of the oscillation-avoidance factor δ on CPVF's
//! moving distance and coverage.
//!
//! Both one-step and two-step avoidance trade coverage for moving
//! distance: a small δ (aggressive cancellation) cuts distance sharply
//! but freezes sensors before the layout spreads; large δ approaches
//! plain CPVF.

use crate::{clustered_initial, pct, Profile};
use msn_deploy::cpvf::{self, CpvfParams, OscillationAvoidance};
use msn_field::paper_field;
use msn_metrics::Table;

/// The δ values swept.
pub const DELTAS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Runs Figure 12 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Figure 12 — oscillation avoidance for CPVF (rc = 60 m, rs = 40 m)\n\n");
    let field = paper_field();
    let initial = clustered_initial(&field, profile.n_base, profile.seed);
    let cfg = profile.cfg(60.0, 40.0);

    let mut table = Table::new(vec!["variant", "delta", "avg move (m)", "coverage"]);
    let baseline = cpvf::run(&field, &initial, &CpvfParams::default(), &cfg);
    table.row(vec![
        "off".into(),
        "-".into(),
        format!("{:.0}", baseline.avg_move),
        pct(baseline.coverage),
    ]);
    for delta in DELTAS {
        for (name, osc) in [
            ("one-step", OscillationAvoidance::OneStep { delta }),
            ("two-step", OscillationAvoidance::TwoStep { delta }),
        ] {
            let params = CpvfParams {
                oscillation: osc,
                ..CpvfParams::default()
            };
            let r = cpvf::run(&field, &initial, &params, &cfg);
            table.row(vec![
                name.into(),
                format!("{delta}"),
                format!("{:.0}", r.avg_move),
                pct(r.coverage),
            ]);
        }
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
