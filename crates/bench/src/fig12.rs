//! Figure 12: effect of the oscillation-avoidance factor δ on CPVF's
//! moving distance and coverage.
//!
//! A thin client of the `msn-scenario` engine (bundled spec
//! `scenarios/fig12.toml`): the eleven oscillation settings are a
//! parameter-variant sweep — every variant faces the same initial
//! scatter — and this module only formats the table.
//!
//! Both one-step and two-step avoidance trade coverage for moving
//! distance: a small δ (aggressive cancellation) cuts distance sharply
//! but freezes sensors before the layout spreads; large δ approaches
//! plain CPVF.

use crate::{pct, Profile};
use msn_deploy::cpvf::OscillationAvoidance;
use msn_deploy::{CpvfOverrides, SchemeKind, SchemeOverrides};
use msn_metrics::Table;
use msn_scenario::{BatchRunner, ScenarioSpec};

/// The δ values swept.
pub const DELTAS: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// The variant rows in table order: label, human variant name and δ
/// column text.
fn variant_rows() -> Vec<(String, &'static str, String, OscillationAvoidance)> {
    let mut rows = vec![(
        "off".to_string(),
        "off",
        "-".to_string(),
        OscillationAvoidance::Off,
    )];
    for delta in DELTAS {
        rows.push((
            format!("one-step-{delta}"),
            "one-step",
            format!("{delta}"),
            OscillationAvoidance::OneStep { delta },
        ));
        rows.push((
            format!("two-step-{delta}"),
            "two-step",
            format!("{delta}"),
            OscillationAvoidance::TwoStep { delta },
        ));
    }
    rows
}

/// The experiment as a declarative scenario spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new("fig12")
        .with_description("Figure 12: CPVF oscillation avoidance sweep (one-/two-step x delta)")
        .with_schemes(vec![SchemeKind::Cpvf])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed);
    for (label, _, _, osc) in variant_rows() {
        spec = spec.with_variant(
            label,
            SchemeOverrides {
                cpvf: CpvfOverrides {
                    oscillation: Some(osc),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    spec
}

/// Runs Figure 12 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Figure 12 — oscillation avoidance for CPVF (rc = 60 m, rs = 40 m)\n\n");
    let result = BatchRunner::new()
        .run(&spec(profile))
        .expect("fig12 spec is valid");
    let stats = result.cell_stats();
    let mut table = Table::new(vec!["variant", "delta", "avg move (m)", "coverage"]);
    for (label, name, delta, _) in variant_rows() {
        let cell = stats
            .iter()
            .find(|s| s.variant_label == label)
            .expect("matrix covers every variant");
        table.row(vec![
            name.to_string(),
            delta,
            format!("{:.0}", cell.avg_move.mean()),
            pct(cell.coverage.mean()),
        ]);
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
