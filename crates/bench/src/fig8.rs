//! Figure 8: FLOOR layouts and coverage in the same three settings as
//! Figure 3.
//!
//! (a) rc = 60 m, rs = 40 m, obstacle-free — paper: 78.8 % coverage;
//! (b) rc = 30 m, rs = 40 m, obstacle-free — paper: 46.2 %;
//! (c) rc = 60 m, rs = 40 m, two obstacles — paper: 72.5 %.

use crate::{clustered_initial, fig3, pct, Profile};
use msn_deploy::floor::{self, FloorParams};
use msn_field::{ascii_layout, AsciiOptions};
use msn_metrics::Table;

/// Paper-reported coverages for Figure 8's three panels.
pub const PAPER: [f64; 3] = [0.788, 0.462, 0.725];

/// Runs Figure 8 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from("Figure 8 — FLOOR sensor layouts and coverage\n");
    let mut table = Table::new(vec![
        "scenario",
        "coverage",
        "paper",
        "avg move (m)",
        "connected",
    ]);
    for (i, (name, rc, rs, field)) in fig3::scenarios().into_iter().enumerate() {
        let initial = clustered_initial(&field, profile.n_base, profile.seed);
        let cfg = profile.cfg(rc, rs);
        let r = floor::run(&field, &initial, &FloorParams::default(), &cfg);
        table.row(vec![
            name.to_string(),
            pct(r.coverage),
            pct(PAPER[i]),
            format!("{:.0}", r.avg_move),
            r.connected.to_string(),
        ]);
        if profile.layouts {
            out.push_str(&format!("\n{name}: coverage {}\n", pct(r.coverage)));
            out.push_str(&ascii_layout(
                &field,
                &r.positions,
                rs,
                &AsciiOptions::default(),
            ));
            out.push('\n');
        }
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
