//! Figure 8: FLOOR layouts and coverage in the same three settings as
//! Figure 3.
//!
//! (a) rc = 60 m, rs = 40 m, obstacle-free — paper: 78.8 % coverage;
//! (b) rc = 30 m, rs = 40 m, obstacle-free — paper: 46.2 %;
//! (c) rc = 60 m, rs = 40 m, two obstacles — paper: 72.5 %.
//!
//! A thin client of the `msn-scenario` engine: runs the FLOOR slices
//! of the shared `fig38-*` bundled specs (see [`crate::fig3`]).

use crate::{fig3, Profile};
use msn_deploy::SchemeKind;

/// Paper-reported coverages for Figure 8's three panels.
pub const PAPER: [f64; 3] = [0.788, 0.462, 0.725];

/// Runs Figure 8 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    fig3::layout_report(
        "Figure 8 — FLOOR sensor layouts and coverage",
        profile,
        SchemeKind::Floor,
        &PAPER,
    )
}
