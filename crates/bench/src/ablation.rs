//! Ablation study (extension beyond the paper): how much coverage do
//! FLOOR's boundary-guided (BLG) and inter-floor-line-guided (IFLG)
//! expansion patterns contribute?
//!
//! §5.5.1 motivates the three patterns and ranks their priorities but
//! never isolates their effect. A thin client of the `msn-scenario`
//! engine (bundled specs `scenarios/ablation-open.toml` /
//! `ablation-obstacle.toml`): the four switch combinations are a
//! parameter-variant sweep over the Figure 8 environments, so every
//! variant starts from the identical scatter.

use crate::{fig3, pct, Profile};
use msn_deploy::{FloorOverrides, SchemeKind, SchemeOverrides};
use msn_metrics::Table;
use msn_scenario::{BatchRunner, RadioSpec, ScenarioSpec};

/// The ablation variants: label, BLG enabled, IFLG enabled.
pub const VARIANTS: [(&str, bool, bool); 4] = [
    ("full FLOOR", true, true),
    ("no BLG", false, true),
    ("no IFLG", true, false),
    ("FLG only", false, false),
];

fn with_variants(spec: ScenarioSpec) -> ScenarioSpec {
    VARIANTS.iter().fold(spec, |spec, &(label, blg, iflg)| {
        spec.with_variant(
            label,
            SchemeOverrides {
                floor: FloorOverrides {
                    enable_blg: Some(blg),
                    enable_iflg: Some(iflg),
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    })
}

/// The obstacle-free half of the ablation as a declarative spec.
pub fn open_spec(profile: &Profile) -> ScenarioSpec {
    with_variants(
        fig3::open_spec(profile)
            .with_schemes(vec![SchemeKind::Floor])
            .with_description("Ablation (open field): FLOOR expansion-pattern switches"),
    )
    .with_name("ablation-open")
}

/// The two-obstacle half of the ablation as a declarative spec.
pub fn obstacle_spec(profile: &Profile) -> ScenarioSpec {
    with_variants(
        fig3::obstacle_spec(profile)
            .with_schemes(vec![SchemeKind::Floor])
            .with_description("Ablation (two-obstacle): FLOOR expansion-pattern switches"),
    )
    .with_name("ablation-obstacle")
}

/// Runs the ablation (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Ablation — contribution of FLOOR's expansion patterns (extension)\n\n");
    let open = BatchRunner::new()
        .run(&open_spec(profile))
        .expect("ablation-open is valid");
    let obstacle = BatchRunner::new()
        .run(&obstacle_spec(profile))
        .expect("ablation-obstacle is valid");
    for (name, result, radio) in [
        ("(a) rc=60 rs=40 open", &open, RadioSpec::new(60.0, 40.0)),
        ("(b) rc=30 rs=40 open", &open, RadioSpec::new(30.0, 40.0)),
        (
            "(c) rc=60 rs=40 two-obstacle",
            &obstacle,
            RadioSpec::new(60.0, 40.0),
        ),
    ] {
        let stats = result.cell_stats();
        let mut table = Table::new(vec!["variant", "coverage", "avg move (m)", "connected"]);
        for &(label, _, _) in &VARIANTS {
            let cell = stats
                .iter()
                .find(|s| s.radio == radio && s.variant_label == label)
                .expect("matrix covers every (radio, variant)");
            table.row(vec![
                label.to_string(),
                pct(cell.coverage.mean()),
                format!("{:.0}", cell.avg_move.mean()),
                (cell.connected_runs == cell.runs.len()).to_string(),
            ]);
        }
        out.push_str(&format!("{name}\n{table}\n\n"));
    }
    out.push_str(
        "BLG seeds new floors along walls and climbs past obstacles;\n\
         IFLG patches the seams between same-floor neighbors. Without\n\
         BLG the vine cannot reach floors beyond the initial cluster in\n\
         obstructed fields.\n",
    );
    out
}
