//! Ablation study (extension beyond the paper): how much coverage do
//! FLOOR's boundary-guided (BLG) and inter-floor-line-guided (IFLG)
//! expansion patterns contribute?
//!
//! §5.5.1 motivates the three patterns and ranks their priorities but
//! never isolates their effect. This experiment re-runs the Figure 8
//! scenarios with BLG and/or IFLG disabled.

use crate::{clustered_initial, fig3, pct, Profile};
use msn_deploy::floor::{self, FloorParams};
use msn_metrics::Table;

/// The ablation variants.
pub fn variants() -> Vec<(&'static str, FloorParams)> {
    let base = FloorParams::default();
    vec![
        ("full FLOOR", base.clone()),
        (
            "no BLG",
            FloorParams {
                enable_blg: false,
                ..base.clone()
            },
        ),
        (
            "no IFLG",
            FloorParams {
                enable_iflg: false,
                ..base.clone()
            },
        ),
        (
            "FLG only",
            FloorParams {
                enable_blg: false,
                enable_iflg: false,
                ..base
            },
        ),
    ]
}

/// Runs the ablation and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out =
        String::from("Ablation — contribution of FLOOR's expansion patterns (extension)\n\n");
    for (name, rc, rs, field) in fig3::scenarios() {
        let initial = clustered_initial(&field, profile.n_base, profile.seed);
        let cfg = profile.cfg(rc, rs);
        let mut table = Table::new(vec!["variant", "coverage", "avg move (m)", "connected"]);
        for (vname, params) in variants() {
            let r = floor::run(&field, &initial, &params, &cfg);
            table.row(vec![
                vname.to_string(),
                pct(r.coverage),
                format!("{:.0}", r.avg_move),
                r.connected.to_string(),
            ]);
        }
        out.push_str(&format!("{name}\n{table}\n\n"));
    }
    out.push_str(
        "BLG seeds new floors along walls and climbs past obstacles;\n\
         IFLG patches the seams between same-floor neighbors. Without\n\
         BLG the vine cannot reach floors beyond the initial cluster in\n\
         obstructed fields.\n",
    );
    out
}
