//! Table 1: total (and per-node) number of FLOOR protocol messages for
//! varying network size N and invitation TTL, in the obstacle-free and
//! two-obstacle environments.
//!
//! The paper reports totals on the order of 200–1250 thousand messages
//! over the 750 s deployment — a few messages per node per second —
//! growing roughly linearly in the TTL.

use crate::{clustered_initial, Profile};
use msn_deploy::floor::{self, FloorParams};
use msn_field::{paper_field, two_obstacle_field, Field};
use msn_metrics::Table;

/// Network sizes of Table 1.
pub const SIZES: [usize; 4] = [120, 160, 200, 240];

/// TTL values as fractions of N.
pub const TTL_FRACS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// Runs Table 1 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from(
        "Table 1 — total (and per-node) FLOOR protocol messages x1000 during deployment\n",
    );
    for (env_name, field) in [
        ("non-obstacle environment", paper_field()),
        ("two-obstacle environment", two_obstacle_field()),
    ] {
        out.push_str(&format!("\n{env_name}\n"));
        out.push_str(&run_env(&field, profile).to_string());
        out.push('\n');
    }
    out
}

fn run_env(field: &Field, profile: &Profile) -> Table {
    let mut header = vec!["N".to_string()];
    for frac in TTL_FRACS {
        header.push(format!("TTL={frac}N"));
    }
    let mut table = Table::new(header);
    // Scale sensor counts down in quick profiles, dropping duplicates.
    let mut sizes: Vec<usize> = SIZES
        .iter()
        .map(|&s| s.min(profile.n_base.max(SIZES[0])))
        .collect();
    sizes.dedup();
    for n in sizes {
        let initial = clustered_initial(field, n, profile.seed);
        let mut row = vec![n.to_string()];
        for frac in TTL_FRACS {
            let ttl = ((n as f64 * frac).round() as usize).max(1);
            let params = FloorParams {
                invitation_ttl: Some(ttl),
                ..FloorParams::default()
            };
            let cfg = profile.cfg(60.0, 40.0);
            let r = floor::run(field, &initial, &params, &cfg);
            let total_k = r.messages.total() as f64 / 1000.0;
            let per_node_k = total_k / n as f64;
            row.push(format!("{total_k:.0} ({per_node_k:.1})"));
        }
        table.row(row);
    }
    table
}
