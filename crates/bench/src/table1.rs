//! Table 1: total (and per-node) number of FLOOR protocol messages for
//! varying network size N and invitation TTL, in the obstacle-free and
//! two-obstacle environments.
//!
//! A thin client of the `msn-scenario` engine (bundled specs
//! `scenarios/table1-open.toml` / `table1-obstacle.toml`): the TTL
//! columns are a parameter-variant sweep using the `floor.ttl_frac`
//! override, so the TTL scales with each run's sensor count exactly as
//! the paper's `TTL = 0.1N ... 0.4N`.
//!
//! The paper reports totals on the order of 200–1250 thousand messages
//! over the 750 s deployment — a few messages per node per second —
//! growing roughly linearly in the TTL.

use crate::Profile;
use msn_deploy::{FloorOverrides, SchemeKind, SchemeOverrides};
use msn_metrics::Table;
use msn_scenario::{BatchRunner, FieldSpec, ScenarioSpec};

/// Network sizes of Table 1.
pub const SIZES: [usize; 4] = [120, 160, 200, 240];

/// TTL values as fractions of N.
pub const TTL_FRACS: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// The variant label of a TTL fraction.
fn ttl_label(frac: f64) -> String {
    format!("TTL={frac}N")
}

fn base_spec(name: &str, description: &str, profile: &Profile) -> ScenarioSpec {
    // Scale sensor counts down in quick profiles, dropping duplicates.
    let mut sizes: Vec<usize> = SIZES
        .iter()
        .map(|&s| s.min(profile.n_base.max(SIZES[0])))
        .collect();
    sizes.dedup();
    let mut spec = ScenarioSpec::new(name)
        .with_description(description)
        .with_schemes(vec![SchemeKind::Floor])
        .with_sensor_counts(sizes)
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed);
    for frac in TTL_FRACS {
        spec = spec.with_variant(
            ttl_label(frac),
            SchemeOverrides {
                floor: FloorOverrides {
                    ttl_frac: Some(frac),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
    }
    spec
}

/// The obstacle-free half of Table 1 as a declarative spec.
pub fn open_spec(profile: &Profile) -> ScenarioSpec {
    base_spec(
        "table1-open",
        "Table 1 (non-obstacle): FLOOR message totals over N x invitation-TTL",
        profile,
    )
}

/// The two-obstacle half of Table 1 as a declarative spec.
pub fn obstacle_spec(profile: &Profile) -> ScenarioSpec {
    base_spec(
        "table1-obstacle",
        "Table 1 (two-obstacle): FLOOR message totals over N x invitation-TTL",
        profile,
    )
    .with_field(FieldSpec::TwoObstacle)
}

/// Runs Table 1 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from(
        "Table 1 — total (and per-node) FLOOR protocol messages x1000 during deployment\n",
    );
    for (env_name, spec) in [
        ("non-obstacle environment", open_spec(profile)),
        ("two-obstacle environment", obstacle_spec(profile)),
    ] {
        out.push_str(&format!("\n{env_name}\n"));
        out.push_str(&run_env(&spec).to_string());
        out.push('\n');
    }
    out
}

fn run_env(spec: &ScenarioSpec) -> Table {
    let result = BatchRunner::new().run(spec).expect("table1 spec is valid");
    let stats = result.cell_stats();
    let mut header = vec!["N".to_string()];
    for frac in TTL_FRACS {
        header.push(ttl_label(frac));
    }
    let mut table = Table::new(header);
    for &n in &spec.sensor_counts {
        let mut row = vec![n.to_string()];
        for frac in TTL_FRACS {
            let label = ttl_label(frac);
            let cell = stats
                .iter()
                .find(|s| s.n == n && s.variant_label == label)
                .expect("matrix covers every (n, TTL)");
            let total_k = cell.messages.mean() / 1000.0;
            let per_node_k = total_k / n as f64;
            row.push(format!("{total_k:.0} ({per_node_k:.1})"));
        }
        table.row(row);
    }
    table
}
