//! Regenerates the paper's ablation at full scale.
fn main() {
    let profile = msn_bench::Profile::full();
    let report = msn_bench::ablation::run(&profile);
    print!("{report}");
    if let Some(path) = msn_bench::save_report("ablation", &report) {
        eprintln!("saved to {}", path.display());
    }
}
