//! Regenerates the paper's fig9 at full scale.
fn main() {
    let profile = msn_bench::Profile::full();
    let report = msn_bench::fig9::run(&profile);
    print!("{report}");
    if let Some(path) = msn_bench::save_report("fig9", &report) {
        eprintln!("saved to {}", path.display());
    }
}
