//! Runs every figure and table of the paper's evaluation at full
//! scale, printing each report in order. Expect ~15-25 minutes.
fn main() {
    let profile = msn_bench::Profile::full();
    for (name, f) in [
        (
            "fig3",
            msn_bench::fig3::run as fn(&msn_bench::Profile) -> String,
        ),
        ("fig8", msn_bench::fig8::run),
        ("fig9", msn_bench::fig9::run),
        ("fig10", msn_bench::fig10::run),
        ("fig11", msn_bench::fig11::run),
        ("fig12", msn_bench::fig12::run),
        ("fig13", msn_bench::fig13::run),
        ("table1", msn_bench::table1::run),
        ("ablation", msn_bench::ablation::run),
        ("uniform_init", msn_bench::uniform_init::run),
    ] {
        eprintln!(">>> running {name}...");
        let report = f(&profile);
        println!("{report}");
        msn_bench::save_report(name, &report);
    }
}
