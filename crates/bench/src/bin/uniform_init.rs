//! Runs the uniform-vs-clustered initial distribution comparison
//! (extension) at full scale.
fn main() {
    let profile = msn_bench::Profile::full();
    let report = msn_bench::uniform_init::run(&profile);
    print!("{report}");
    msn_bench::save_report("uniform_init", &report);
}
