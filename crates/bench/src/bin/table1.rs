//! Regenerates the paper's table1 at full scale.
fn main() {
    let profile = msn_bench::Profile::full();
    let report = msn_bench::table1::run(&profile);
    print!("{report}");
    if let Some(path) = msn_bench::save_report("table1", &report) {
        eprintln!("saved to {}", path.display());
    }
}
