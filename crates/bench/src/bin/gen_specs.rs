//! Regenerates the bundled scenario specs that mirror the figure and
//! table modules (`scenarios/fig*.toml`, `table1-*.toml`,
//! `ablation-*.toml`, `uniform-init.toml`) from their full-scale
//! in-code definitions, so the TOML files can never drift from the
//! binaries. The hand-curated specs (`paper-field`, `campus-grid`,
//! `corridor`, `disaster-zone`, `random-obstacle-sweep`,
//! `campus-ttl-sweep`, `smoke`, `scale-10k`, `scale-50k`,
//! `failure-recovery`) are left alone.

use msn_bench::{ablation, fig10, fig11, fig12, fig3, table1, uniform_init, Profile};
use msn_scenario::ScenarioSpec;

fn main() {
    let profile = Profile::full();
    let specs: Vec<(ScenarioSpec, &str)> = vec![
        (
            fig3::open_spec(&profile),
            "Figures 3 and 8, panels (a) and (b): CPVF and FLOOR layouts on the\nopen 1 km x 1 km field at rc=60/rs=40 and rc=30/rs=40.",
        ),
        (
            fig3::obstacle_spec(&profile),
            "Figures 3 and 8, panel (c): CPVF and FLOOR layouts in the\ntwo-obstacle field at rc=60/rs=40.",
        ),
        (
            fig10::spec(&profile),
            "Figure 10: coverage of FLOOR, VOR and Minimax while rc/rs sweeps\n0.8..4 at rs = 60 m, with Disconn./Incorrect-VD annotations.",
        ),
        (
            fig11::spec(&profile),
            "Figure 11: average moving distance of all five schemes over the\nsensor-count sweep (the OPT(FLOOR) lower bound is derived by the\nfig11 binary from FLOOR's final positions).",
        ),
        (
            fig12::spec(&profile),
            "Figure 12: CPVF oscillation avoidance — one-step and two-step\ncancellation over delta in {1, 2, 4, 8, 16} as parameter variants.",
        ),
        (
            table1::open_spec(&profile),
            "Table 1, non-obstacle half: FLOOR protocol message totals over\nnetwork size x invitation TTL (ttl_frac variants: TTL = 0.1N..0.4N).",
        ),
        (
            table1::obstacle_spec(&profile),
            "Table 1, two-obstacle half: FLOOR protocol message totals over\nnetwork size x invitation TTL (ttl_frac variants: TTL = 0.1N..0.4N).",
        ),
        (
            ablation::open_spec(&profile),
            "Ablation (extension), open field: FLOOR's BLG/IFLG expansion\npatterns toggled as parameter variants over the Figure 8 panels.",
        ),
        (
            ablation::obstacle_spec(&profile),
            "Ablation (extension), two-obstacle field: FLOOR's BLG/IFLG\nexpansion patterns toggled as parameter variants.",
        ),
        (
            uniform_init::spec(&profile),
            "Uniform initial scatter (extension of Figures 9/11): CPVF vs FLOOR\nfrom a whole-field uniform start.",
        ),
    ];
    for (spec, comment) in specs {
        let path = format!("scenarios/{}.toml", spec.name);
        let header: String = comment
            .lines()
            .map(|l| format!("# {l}\n"))
            .collect::<String>();
        let body = format!("{header}{}", spec.to_toml_string());
        let parsed = ScenarioSpec::from_toml_str(&body).expect("generated spec parses");
        assert_eq!(parsed, spec, "generated TOML round-trips");
        std::fs::write(&path, body).expect("write spec");
        println!("wrote {path}");
    }
}
