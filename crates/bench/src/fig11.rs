//! Figure 11: average moving distance of six schemes.
//!
//! The six series: CPVF, FLOOR, VOR, Minimax, and the two
//! Hungarian-matching lower bounds — the minimum movement to reach the
//! OPT strip pattern ("OPT(pattern)") and to reach FLOOR's *own* final
//! layout ("OPT(FLOOR)").
//!
//! A thin client of the `msn-scenario` engine (bundled spec
//! `scenarios/fig11.toml`): the five schemes ride the engine's run
//! matrix; OPT(FLOOR) is computed after the fact from FLOOR's final
//! positions (kept on each [`msn_scenario::RunRecord`]) and the
//! cell's reconstructed initial scatter.
//!
//! Findings to reproduce in shape: VOR/Minimax pay a large explosion
//! cost; CPVF more than doubles FLOOR's distance through oscillation;
//! FLOOR lands between the two optima — below the cost of the strict
//! OPT pattern but 15–40 % above the optimum for its own layout.

use crate::Profile;
use msn_assign::{hungarian, CostMatrix};
use msn_deploy::SchemeKind;
use msn_metrics::Table;
use msn_scenario::{BatchRunner, ScenarioSpec};

/// The experiment as a declarative scenario spec.
pub fn spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig11")
        .with_description("Figure 11: average moving distance of all schemes vs sensor count")
        .with_schemes(vec![
            SchemeKind::Cpvf,
            SchemeKind::Floor,
            SchemeKind::Vor,
            SchemeKind::Minimax,
            SchemeKind::Opt,
        ])
        .with_sensor_counts(profile.n_sweep.clone())
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// Runs Figure 11 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from("Figure 11 — average moving distance (m), rc = 60 m, rs = 40 m\n\n");
    let spec = spec(profile);
    let result = BatchRunner::new().run(&spec).expect("fig11 spec is valid");
    let mut table = Table::new(vec![
        "n",
        "CPVF",
        "FLOOR",
        "VOR",
        "Minimax",
        "OPT(pattern)",
        "OPT(FLOOR)",
    ]);
    for &n in &profile.n_sweep {
        let find = |scheme| {
            result
                .records
                .iter()
                .find(|r| r.cell.n == n && r.cell.scheme == scheme)
                .expect("matrix covers every (n, scheme)")
        };
        let r_floor = find(SchemeKind::Floor);
        // Hungarian optimum for reaching FLOOR's own layout, from the
        // same initial scatter the schemes started at. Restored
        // (resumed) records carry no layout — computing the bound from
        // an empty vector would silently degenerate it to zero.
        let floor_positions = r_floor
            .require_positions()
            .unwrap_or_else(|e| panic!("cannot compute OPT(FLOOR) lower bound: {e}"));
        let floor_lb = {
            let (_, initial) = r_floor.cell.build_environment(&spec);
            let costs = CostMatrix::euclidean(&initial, floor_positions);
            hungarian(&costs).total_cost / n as f64
        };
        table.row(vec![
            n.to_string(),
            format!("{:.0}", find(SchemeKind::Cpvf).avg_move),
            format!("{:.0}", r_floor.avg_move),
            format!("{:.0}", find(SchemeKind::Vor).avg_move),
            format!("{:.0}", find(SchemeKind::Minimax).avg_move),
            format!("{:.0}", find(SchemeKind::Opt).avg_move),
            format!("{floor_lb:.0}"),
        ]);
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
