//! Figure 11: average moving distance of six schemes.
//!
//! The six series: CPVF, FLOOR, VOR, Minimax, and the two
//! Hungarian-matching lower bounds — the minimum movement to reach the
//! OPT strip pattern ("OPT(pattern)") and to reach FLOOR's *own* final
//! layout ("OPT(FLOOR)").
//!
//! Findings to reproduce in shape: VOR/Minimax pay a large explosion
//! cost; CPVF more than doubles FLOOR's distance through oscillation;
//! FLOOR lands between the two optima — below the cost of the strict
//! OPT pattern but 15–40 % above the optimum for its own layout.

use crate::{clustered_initial, Profile};
use msn_assign::{hungarian, CostMatrix};
use msn_deploy::{cpvf, floor, opt, vd};
use msn_field::paper_field;
use msn_metrics::Table;

/// Runs Figure 11 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from("Figure 11 — average moving distance (m), rc = 60 m, rs = 40 m\n\n");
    let field = paper_field();
    let (rc, rs) = (60.0, 40.0);
    let mut table = Table::new(vec![
        "n",
        "CPVF",
        "FLOOR",
        "VOR",
        "Minimax",
        "OPT(pattern)",
        "OPT(FLOOR)",
    ]);
    for &n in &profile.n_sweep {
        let initial = clustered_initial(&field, n, profile.seed);
        let cfg = profile.cfg(rc, rs);
        let r_cpvf = cpvf::run(&field, &initial, &cpvf::CpvfParams::default(), &cfg);
        let r_floor = floor::run(&field, &initial, &floor::FloorParams::default(), &cfg);
        let r_vor = vd::run(
            &field,
            &initial,
            vd::VdVariant::Vor,
            &vd::VdParams::default(),
            &cfg,
        );
        let r_mm = vd::run(
            &field,
            &initial,
            vd::VdVariant::Minimax,
            &vd::VdParams::default(),
            &cfg,
        );
        let r_opt = opt::run(&field, &initial, &opt::OptParams::default(), &cfg);
        // Hungarian optimum for reaching FLOOR's own layout.
        let floor_lb = {
            let costs = CostMatrix::euclidean(&initial, &r_floor.positions);
            hungarian(&costs).total_cost / n as f64
        };
        table.row(vec![
            n.to_string(),
            format!("{:.0}", r_cpvf.avg_move),
            format!("{:.0}", r_floor.avg_move),
            format!("{:.0}", r_vor.avg_move),
            format!("{:.0}", r_mm.avg_move),
            format!("{:.0}", r_opt.avg_move),
            format!("{:.0}", floor_lb),
        ]);
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
