//! Experiment harness regenerating every table and figure of the
//! paper's evaluation (§4.3, §5.6 and §6).
//!
//! Every `figN`/`table1`/`ablation` module is a thin client of the
//! `msn-scenario` engine: it declares its sweep as a
//! [`msn_scenario::ScenarioSpec`] (mirrored by a bundled TOML file
//! under `scenarios/`), executes it through the parallel
//! `BatchRunner`, and only formats the paper's tables from the
//! aggregated result. Each module exposes `run(&Profile) -> String`;
//! the binaries in `src/bin/` run the full-scale versions and the
//! `benches/experiments.rs` bench target runs reduced
//! [`Profile::quick`] versions so `cargo bench` regenerates every
//! series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod uniform_init;

/// Experiment scale: `full` replicates the paper's parameters; `quick`
/// shrinks sensor counts, durations and repetitions so the whole
/// evaluation fits in a `cargo bench` run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Sensor count used where the paper uses 240.
    pub n_base: usize,
    /// Sweep of sensor counts for Figures 9 and 11.
    pub n_sweep: Vec<usize>,
    /// Simulated duration (paper: 750 s).
    pub duration: f64,
    /// Coverage raster cell (m).
    pub coverage_cell: f64,
    /// Repetitions for the random-obstacle CDFs (paper: 300).
    pub fig13_runs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Print ASCII layout snapshots in fig3/fig8 reports.
    pub layouts: bool,
}

impl Profile {
    /// The paper's full-scale parameters.
    pub fn full() -> Self {
        Profile {
            n_base: 240,
            n_sweep: vec![120, 160, 200, 240, 280],
            duration: 750.0,
            coverage_cell: 2.5,
            fig13_runs: 300,
            seed: 42,
            layouts: true,
        }
    }

    /// Reduced-scale profile for `cargo bench`.
    pub fn quick() -> Self {
        Profile {
            n_base: 120,
            n_sweep: vec![80, 120],
            duration: 300.0,
            coverage_cell: 5.0,
            fig13_runs: 12,
            seed: 42,
            layouts: false,
        }
    }
}

/// Formats a coverage fraction as the paper prints them.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Saves an experiment report under `results/<name>.txt` (creating the
/// directory if needed) and returns the path. Errors are reported, not
/// fatal — the report was already printed.
pub fn save_report(name: &str, contents: &str) -> Option<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return None;
    }
    let path = dir.join(format!("{name}.txt"));
    match std::fs::write(&path, contents) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: cannot write {path:?}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        let full = Profile::full();
        assert_eq!(full.n_base, 240);
        assert_eq!(full.duration, 750.0);
        let quick = Profile::quick();
        assert!(quick.n_base < full.n_base);
        assert!(quick.fig13_runs < full.fig13_runs);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.788), "78.8%");
    }
}
