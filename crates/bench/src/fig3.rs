//! Figure 3: CPVF layouts and coverage in three typical settings.
//!
//! (a) rc = 60 m, rs = 40 m, obstacle-free — paper: 74.5 % coverage;
//! (b) rc = 30 m, rs = 40 m, obstacle-free — paper: 26.4 %;
//! (c) rc = 60 m, rs = 40 m, two obstacles — paper: 37.1 %.
//!
//! Implemented as a thin client of the `msn-scenario` engine: the
//! three panels are the CPVF slices of the two `fig38-*` bundled
//! specs (shared with Figure 8, which runs FLOOR on the same
//! environments); this module only formats the paper's table and
//! layout snapshots from the per-run records.

use crate::{pct, Profile};
use msn_deploy::SchemeKind;
use msn_field::{ascii_layout, AsciiOptions};
use msn_metrics::Table;
use msn_scenario::{BatchRunner, FieldSpec, RadioSpec, RunRecord, ScenarioSpec};

/// Paper-reported coverages for Figure 3's three panels.
pub const PAPER: [f64; 3] = [0.745, 0.264, 0.371];

/// The obstacle-free half of the Figure 3/8 panels (panels a and b),
/// bundled as `scenarios/fig38-open.toml`.
pub fn open_spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig38-open")
        .with_description(
            "Figures 3/8 panels (a)+(b): CPVF and FLOOR layouts on the open paper field",
        )
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(vec![(60.0, 40.0), (30.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// The two-obstacle half of the Figure 3/8 panels (panel c), bundled
/// as `scenarios/fig38-obstacle.toml`.
pub fn obstacle_spec(profile: &Profile) -> ScenarioSpec {
    ScenarioSpec::new("fig38-obstacle")
        .with_description("Figures 3/8 panel (c): CPVF and FLOOR layouts in the two-obstacle field")
        .with_field(FieldSpec::TwoObstacle)
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![profile.n_base])
        .with_radios(vec![(60.0, 40.0)])
        .with_duration(profile.duration)
        .with_coverage_cell(profile.coverage_cell)
        .with_seed(profile.seed)
}

/// The three panels of Figures 3 and 8 for one scheme, in paper
/// order: each entry is the panel name, its spec and the matching
/// run record.
pub fn panels(profile: &Profile, scheme: SchemeKind) -> Vec<(String, ScenarioSpec, RunRecord)> {
    // Restricting the scheme set leaves environment seeds untouched
    // (they derive from radio/count/rep coordinates only), so these
    // slices are identical to the bundled specs' matching cells.
    let open = open_spec(profile).with_schemes(vec![scheme]);
    let obstacle = obstacle_spec(profile).with_schemes(vec![scheme]);
    let open_result = BatchRunner::new().run(&open).expect("fig38-open is valid");
    let obstacle_result = BatchRunner::new()
        .run(&obstacle)
        .expect("fig38-obstacle is valid");
    let find = |result: &msn_scenario::BatchResult, radio: RadioSpec| -> RunRecord {
        result
            .records
            .iter()
            .find(|r| r.cell.radio == radio)
            .expect("matrix covers the panel radio")
            .clone()
    };
    vec![
        (
            "(a) rc=60 rs=40 open".into(),
            open.clone(),
            find(&open_result, RadioSpec::new(60.0, 40.0)),
        ),
        (
            "(b) rc=30 rs=40 open".into(),
            open,
            find(&open_result, RadioSpec::new(30.0, 40.0)),
        ),
        (
            "(c) rc=60 rs=40 two-obstacle".into(),
            obstacle,
            find(&obstacle_result, RadioSpec::new(60.0, 40.0)),
        ),
    ]
}

/// Formats the shared Figure 3/8 report body for one scheme.
pub fn layout_report(
    title: &str,
    profile: &Profile,
    scheme: SchemeKind,
    paper: &[f64; 3],
) -> String {
    let mut out = format!("{title}\n");
    let mut table = Table::new(vec![
        "scenario",
        "coverage",
        "paper",
        "avg move (m)",
        "connected",
    ]);
    for (i, (name, spec, record)) in panels(profile, scheme).into_iter().enumerate() {
        table.row(vec![
            name.clone(),
            pct(record.coverage),
            pct(paper[i]),
            format!("{:.0}", record.avg_move),
            record.connected.to_string(),
        ]);
        if profile.layouts {
            // restored (resumed) records carry no layouts; rendering
            // them would silently print a blank field
            let positions = record
                .require_positions()
                .unwrap_or_else(|e| panic!("cannot render layout snapshot: {e}"));
            let (field, _) = record.cell.build_environment(&spec);
            out.push_str(&format!("\n{name}: coverage {}\n", pct(record.coverage)));
            out.push_str(&ascii_layout(
                &field,
                positions,
                record.cell.radio.rs,
                &AsciiOptions::default(),
            ));
            out.push('\n');
        }
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}

/// Runs Figure 3 (via the scenario engine) and formats the report.
pub fn run(profile: &Profile) -> String {
    layout_report(
        "Figure 3 — CPVF sensor layouts and coverage",
        profile,
        SchemeKind::Cpvf,
        &PAPER,
    )
}
