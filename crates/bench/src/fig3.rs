//! Figure 3: CPVF layouts and coverage in three typical settings.
//!
//! (a) rc = 60 m, rs = 40 m, obstacle-free — paper: 74.5 % coverage;
//! (b) rc = 30 m, rs = 40 m, obstacle-free — paper: 26.4 %;
//! (c) rc = 60 m, rs = 40 m, two obstacles — paper: 37.1 %.

use crate::{clustered_initial, pct, Profile};
use msn_deploy::cpvf::{self, CpvfParams};
use msn_field::{ascii_layout, paper_field, two_obstacle_field, AsciiOptions, Field};
use msn_metrics::Table;

/// The three scenarios shared by Figures 3 and 8.
pub fn scenarios() -> Vec<(&'static str, f64, f64, Field)> {
    vec![
        ("(a) rc=60 rs=40 open", 60.0, 40.0, paper_field()),
        ("(b) rc=30 rs=40 open", 30.0, 40.0, paper_field()),
        (
            "(c) rc=60 rs=40 two-obstacle",
            60.0,
            40.0,
            two_obstacle_field(),
        ),
    ]
}

/// Paper-reported coverages for Figure 3's three panels.
pub const PAPER: [f64; 3] = [0.745, 0.264, 0.371];

/// Runs Figure 3 and formats the report.
pub fn run(profile: &Profile) -> String {
    let mut out = String::from("Figure 3 — CPVF sensor layouts and coverage\n");
    let mut table = Table::new(vec![
        "scenario",
        "coverage",
        "paper",
        "avg move (m)",
        "connected",
    ]);
    for (i, (name, rc, rs, field)) in scenarios().into_iter().enumerate() {
        let initial = clustered_initial(&field, profile.n_base, profile.seed);
        let cfg = profile.cfg(rc, rs);
        let r = cpvf::run(&field, &initial, &CpvfParams::default(), &cfg);
        table.row(vec![
            name.to_string(),
            pct(r.coverage),
            pct(PAPER[i]),
            format!("{:.0}", r.avg_move),
            r.connected.to_string(),
        ]);
        if profile.layouts {
            out.push_str(&format!("\n{name}: coverage {}\n", pct(r.coverage)));
            out.push_str(&ascii_layout(
                &field,
                &r.positions,
                rs,
                &AsciiOptions::default(),
            ));
            out.push('\n');
        }
    }
    out.push_str(&table.to_string());
    out.push('\n');
    out
}
