//! Shared per-run navigation context: offset rings computed once per
//! `(field, clearance)` plus a segment-vs-edge bucket grid.
//!
//! Before this module every [`crate::Navigator`] re-offset *all*
//! obstacle polygons at construction and scanned every edge of every
//! ring on every segment probe. A [`NavContext`] is built once per
//! scheme run, shared by every navigator via [`std::sync::Arc`], and
//! answers the probe query (*first ring edge hit by this segment*)
//! from a `PointIndex`-style bucket grid: each edge is registered in
//! every grid cell its bounding box touches, and a probe only tests
//! edges registered in the cells its own (padded) bounding box
//! overlaps.
//!
//! Bit-identity contract: [`NavContext::first_ring_hit`] returns
//! exactly what the linear scan
//! ([`NavContext::first_ring_hit_linear`]) returns — the minimum over
//! `(t, ring index, edge index)` in lexicographic order, with the same
//! `t > 1e-6 / len` near-start rejection and the same `skip_inside`
//! ring filtering. The property tests in `tests/properties.rs` pin
//! the two against each other over random fields and probes.

use crate::offset_polygon;
use msn_field::Field;
use msn_geom::{Point, Polygon, Rect, Segment};

/// Target number of bucket cells per axis for the edge grid.
const GRID_RES: usize = 64;

/// Padding applied to a probe's bounding box before collecting cells.
///
/// `Segment::first_hit` accepts intersections within small tolerances
/// (`EPS = 1e-9` relative), so a reported hit point can sit slightly
/// outside the edge's exact bounding box. The worst-case geometric
/// slack is well below a micrometer for the segment lengths this
/// workspace uses; a one-millimeter pad makes the candidate set
/// provably a superset of the linear scan's hits.
const QUERY_PAD: f64 = 1e-3;

/// Reusable per-navigator query scratch for [`NavContext`] probes.
///
/// Holds the stamp-based visited marks that deduplicate edges
/// registered in several grid cells and cache the per-ring
/// `skip_inside` test within one probe. Obtain one from
/// [`NavContext::scratch`]; it allocates once and is reused across
/// probes.
#[derive(Debug, Clone, Default)]
pub struct NavScratch {
    stamp: u64,
    edge_seen: Vec<u64>,
    ring_stamp: Vec<u64>,
    ring_skip: Vec<bool>,
}

impl NavScratch {
    fn begin(&mut self, n_edges: usize, n_rings: usize) {
        if self.edge_seen.len() < n_edges {
            self.edge_seen.resize(n_edges, 0);
        }
        if self.ring_stamp.len() < n_rings {
            self.ring_stamp.resize(n_rings, 0);
            self.ring_skip.resize(n_rings, false);
        }
        self.stamp += 1;
    }

    #[inline]
    fn first_visit(&mut self, eid: u32) -> bool {
        let seen = &mut self.edge_seen[eid as usize];
        if *seen == self.stamp {
            false
        } else {
            *seen = self.stamp;
            true
        }
    }
}

/// Offset obstacle rings plus an edge bucket grid, shared by every
/// navigator of one scheme run.
///
/// Build one with [`NavContext::new`] (default clearance) or
/// [`NavContext::with_clearance`], wrap it in an [`std::sync::Arc`],
/// and hand it to [`crate::Navigator::with_context`] /
/// [`crate::MultiLegPlan::with_context`]. The context is immutable
/// after construction, so sharing needs no locks.
#[derive(Debug, Clone)]
pub struct NavContext {
    rings: Vec<Polygon>,
    bounds: Rect,
    clearance: f64,
    total_perimeter: f64,
    /// Flat edge array over all rings, in (ring, edge) order.
    edges: Vec<Segment>,
    edge_ring: Vec<u32>,
    edge_idx: Vec<u32>,
    grid_origin: Point,
    inv_cell: f64,
    nx: usize,
    ny: usize,
    /// CSR bucket layout: edge ids for cell `c` live at
    /// `cell_edges[cell_start[c]..cell_start[c + 1]]`.
    cell_start: Vec<u32>,
    cell_edges: Vec<u32>,
}

impl NavContext {
    /// Builds the context for `field` with the default wall clearance
    /// ([`crate::DEFAULT_CLEARANCE`]).
    pub fn new(field: &Field) -> Self {
        Self::with_clearance(field, crate::DEFAULT_CLEARANCE)
    }

    /// Builds the context keeping `clearance` meters from obstacle
    /// walls.
    ///
    /// # Panics
    ///
    /// Panics if `clearance` is negative.
    pub fn with_clearance(field: &Field, clearance: f64) -> Self {
        let _span = msn_obs::span("nav.context");
        let rings: Vec<Polygon> = field
            .obstacles()
            .iter()
            .map(|o| offset_polygon(o, clearance))
            .collect();
        let total_perimeter: f64 = rings.iter().map(Polygon::perimeter).sum();

        let mut edges = Vec::new();
        let mut edge_ring = Vec::new();
        let mut edge_idx = Vec::new();
        for (ri, ring) in rings.iter().enumerate() {
            for ei in 0..ring.len() {
                edges.push(ring.edge(ei));
                edge_ring.push(ri as u32);
                edge_idx.push(ei as u32);
            }
        }

        let mut ctx = NavContext {
            rings,
            bounds: field.bounds(),
            clearance,
            total_perimeter,
            edges,
            edge_ring,
            edge_idx,
            grid_origin: Point::ORIGIN,
            inv_cell: 0.0,
            nx: 0,
            ny: 0,
            cell_start: vec![0],
            cell_edges: Vec::new(),
        };
        ctx.build_grid();
        ctx
    }

    fn build_grid(&mut self) {
        if self.edges.is_empty() {
            return;
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for e in &self.edges {
            min_x = min_x.min(e.a.x).min(e.b.x);
            min_y = min_y.min(e.a.y).min(e.b.y);
            max_x = max_x.max(e.a.x).max(e.b.x);
            max_y = max_y.max(e.a.y).max(e.b.y);
        }
        let w = (max_x - min_x).max(1e-9);
        let h = (max_y - min_y).max(1e-9);
        let cell = (w.max(h) / GRID_RES as f64).max(1.0);
        self.grid_origin = Point::new(min_x, min_y);
        self.inv_cell = 1.0 / cell;
        self.nx = (w / cell).floor() as usize + 1;
        self.ny = (h / cell).floor() as usize + 1;

        let ncells = self.nx * self.ny;
        let mut counts = vec![0u32; ncells];
        let ranges: Vec<(usize, usize, usize, usize)> = self
            .edges
            .iter()
            .map(|e| {
                let (gx0, gx1) = self
                    .axis_range(
                        e.a.x.min(e.b.x),
                        e.a.x.max(e.b.x),
                        self.grid_origin.x,
                        self.nx,
                    )
                    .expect("edge lies inside the grid bbox by construction");
                let (gy0, gy1) = self
                    .axis_range(
                        e.a.y.min(e.b.y),
                        e.a.y.max(e.b.y),
                        self.grid_origin.y,
                        self.ny,
                    )
                    .expect("edge lies inside the grid bbox by construction");
                (gx0, gx1, gy0, gy1)
            })
            .collect();
        for &(gx0, gx1, gy0, gy1) in &ranges {
            for gy in gy0..=gy1 {
                for gx in gx0..=gx1 {
                    counts[gy * self.nx + gx] += 1;
                }
            }
        }
        let mut cell_start = Vec::with_capacity(ncells + 1);
        let mut acc = 0u32;
        cell_start.push(0);
        for &c in &counts {
            acc += c;
            cell_start.push(acc);
        }
        let mut cursor: Vec<u32> = cell_start[..ncells].to_vec();
        let mut cell_edges = vec![0u32; acc as usize];
        for (eid, &(gx0, gx1, gy0, gy1)) in ranges.iter().enumerate() {
            for gy in gy0..=gy1 {
                for gx in gx0..=gx1 {
                    let c = gy * self.nx + gx;
                    cell_edges[cursor[c] as usize] = eid as u32;
                    cursor[c] += 1;
                }
            }
        }
        self.cell_start = cell_start;
        self.cell_edges = cell_edges;
    }

    /// Grid cells overlapped by `[lo, hi]` on one axis, clamped to the
    /// grid; `None` when the interval misses the grid entirely.
    #[inline]
    fn axis_range(&self, lo: f64, hi: f64, origin: f64, n: usize) -> Option<(usize, usize)> {
        let g0 = ((lo - origin) * self.inv_cell).floor();
        let g1 = ((hi - origin) * self.inv_cell).floor();
        if g1 < 0.0 || g0 >= n as f64 {
            return None;
        }
        Some((g0.max(0.0) as usize, (g1 as usize).min(n - 1)))
    }

    /// The offset obstacle rings (one inflated polygon per obstacle).
    #[inline]
    pub fn rings(&self) -> &[Polygon] {
        &self.rings
    }

    /// The field bounds positions are clamped into.
    #[inline]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// The wall clearance the rings were offset by.
    #[inline]
    pub fn clearance(&self) -> f64 {
        self.clearance
    }

    /// Sum of all ring perimeters (drives BUG2 travel caps).
    #[inline]
    pub fn total_perimeter(&self) -> f64 {
        self.total_perimeter
    }

    /// A query scratch sized for this context.
    pub fn scratch(&self) -> NavScratch {
        NavScratch {
            stamp: 0,
            edge_seen: vec![0; self.edges.len()],
            ring_stamp: vec![0; self.rings.len()],
            ring_skip: vec![false; self.rings.len()],
        }
    }

    #[inline]
    fn ring_skipped(&self, scratch: &mut NavScratch, ri: usize, a: Point) -> bool {
        if scratch.ring_stamp[ri] != scratch.stamp {
            scratch.ring_stamp[ri] = scratch.stamp;
            let ring = &self.rings[ri];
            scratch.ring_skip[ri] = ring.contains(a) && ring.boundary_dist(a) > 1e-6;
        }
        scratch.ring_skip[ri]
    }

    /// First boundary hit of `seg` against the rings, via the edge
    /// bucket grid.
    ///
    /// Semantics are identical to
    /// [`NavContext::first_ring_hit_linear`]: hits in the first
    /// micro-meter are skipped (so motion away from a wall the sensor
    /// stands on is not self-blocking), `exclude` skips one ring (the
    /// one currently being followed), and `skip_inside` skips rings
    /// whose interior strictly contains the segment start. Returns the
    /// lexicographically smallest `(t, ring index, edge index)`.
    pub fn first_ring_hit(
        &self,
        scratch: &mut NavScratch,
        seg: &Segment,
        exclude: Option<usize>,
        skip_inside: bool,
    ) -> Option<(f64, usize, usize)> {
        let len = seg.length();
        if len <= 1e-12 || self.edges.is_empty() {
            return None;
        }
        let t_min = 1e-6 / len;
        let (gx0, gx1) = self.axis_range(
            seg.a.x.min(seg.b.x) - QUERY_PAD,
            seg.a.x.max(seg.b.x) + QUERY_PAD,
            self.grid_origin.x,
            self.nx,
        )?;
        let (gy0, gy1) = self.axis_range(
            seg.a.y.min(seg.b.y) - QUERY_PAD,
            seg.a.y.max(seg.b.y) + QUERY_PAD,
            self.grid_origin.y,
            self.ny,
        )?;
        scratch.begin(self.edges.len(), self.rings.len());
        let mut best: Option<(f64, usize, usize)> = None;
        let mut tested = 0u64;
        for gy in gy0..=gy1 {
            for gx in gx0..=gx1 {
                let c = gy * self.nx + gx;
                let bucket =
                    &self.cell_edges[self.cell_start[c] as usize..self.cell_start[c + 1] as usize];
                for &eid in bucket {
                    if !scratch.first_visit(eid) {
                        continue;
                    }
                    let ri = self.edge_ring[eid as usize] as usize;
                    if Some(ri) == exclude {
                        continue;
                    }
                    if skip_inside && self.ring_skipped(scratch, ri, seg.a) {
                        continue;
                    }
                    tested += 1;
                    if let Some(t) = seg.first_hit(&self.edges[eid as usize]) {
                        if t > t_min {
                            let ei = self.edge_idx[eid as usize] as usize;
                            let better = match best {
                                None => true,
                                Some((bt, bri, bei)) => {
                                    t < bt || (t == bt && (ri, ei) < (bri, bei))
                                }
                            };
                            if better {
                                best = Some((t, ri, ei));
                            }
                        }
                    }
                }
            }
        }
        msn_obs::counter("nav.edge_tests", tested);
        if best.is_some() {
            msn_obs::counter("nav.ring_hits", 1);
        }
        best
    }

    /// Reference linear scan over every edge of every ring — the
    /// oracle [`NavContext::first_ring_hit`] is property-tested
    /// against, kept callable for the kernels benchmark.
    pub fn first_ring_hit_linear(
        &self,
        seg: &Segment,
        exclude: Option<usize>,
        skip_inside: bool,
    ) -> Option<(f64, usize, usize)> {
        let len = seg.length();
        if len <= 1e-12 {
            return None;
        }
        let t_min = 1e-6 / len;
        let mut best: Option<(f64, usize, usize)> = None;
        for (i, ring) in self.rings.iter().enumerate() {
            if Some(i) == exclude {
                continue;
            }
            if skip_inside && ring.contains(seg.a) && ring.boundary_dist(seg.a) > 1e-6 {
                continue;
            }
            for ei in 0..ring.len() {
                if let Some(t) = seg.first_hit(&ring.edge(ei)) {
                    if t > t_min && best.is_none_or(|(bt, _, _)| t < bt) {
                        best = Some((t, i, ei));
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn two_obstacle_ctx() -> NavContext {
        let f = Field::with_obstacles(
            200.0,
            100.0,
            vec![
                Rect::new(40.0, 30.0, 70.0, 70.0).to_polygon(),
                Rect::new(110.0, 20.0, 140.0, 60.0).to_polygon(),
            ],
        );
        NavContext::new(&f)
    }

    #[test]
    fn indexed_matches_linear_on_crossing_probes() {
        let ctx = two_obstacle_ctx();
        let mut scratch = ctx.scratch();
        for i in 0..40 {
            let y = 2.0 + 2.4 * i as f64;
            let seg = Segment::new(Point::new(5.0, y), Point::new(195.0, 100.0 - y));
            for skip_inside in [false, true] {
                for exclude in [None, Some(0), Some(1)] {
                    assert_eq!(
                        ctx.first_ring_hit(&mut scratch, &seg, exclude, skip_inside),
                        ctx.first_ring_hit_linear(&seg, exclude, skip_inside),
                        "probe {seg:?} exclude {exclude:?} skip {skip_inside}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_probe_returns_none() {
        let ctx = two_obstacle_ctx();
        let mut scratch = ctx.scratch();
        let p = Point::new(39.4, 50.0);
        let seg = Segment::new(p, p);
        assert_eq!(ctx.first_ring_hit(&mut scratch, &seg, None, true), None);
        assert_eq!(ctx.first_ring_hit_linear(&seg, None, true), None);
    }

    #[test]
    fn open_field_has_no_hits() {
        let f = Field::open(100.0, 100.0);
        let ctx = NavContext::new(&f);
        let mut scratch = ctx.scratch();
        let seg = Segment::new(Point::new(1.0, 1.0), Point::new(99.0, 99.0));
        assert_eq!(ctx.first_ring_hit(&mut scratch, &seg, None, true), None);
        assert_eq!(ctx.rings().len(), 0);
    }

    #[test]
    fn probe_outside_grid_misses_cheaply() {
        let ctx = two_obstacle_ctx();
        let mut scratch = ctx.scratch();
        // Far above every ring: the padded bbox misses the grid.
        let seg = Segment::new(Point::new(10.0, 95.0), Point::new(30.0, 99.0));
        assert_eq!(
            ctx.first_ring_hit(&mut scratch, &seg, None, true),
            ctx.first_ring_hit_linear(&seg, None, true),
        );
    }
}
