//! Multi-leg navigation plans (FLOOR's Algorithm 1).

use crate::{Hand, NavContext, Navigator};
use msn_field::Field;
use msn_geom::Point;
use std::fmt;
use std::sync::Arc;

/// A chain of BUG2 legs through intermediate destinations.
///
/// FLOOR's Algorithm 1 routes a connecting sensor through two
/// waypoints — the projection onto its nearest floor line, then the
/// floor line's end on the y-axis — before heading to the base station
/// at the origin. Intermediate legs are *abandoned on first obstacle
/// contact* (the algorithm moves on to the next leg from wherever the
/// sensor is); only the final leg runs BUG2 to completion.
///
/// # Examples
///
/// ```
/// use msn_field::Field;
/// use msn_geom::Point;
/// use msn_nav::{Hand, MultiLegPlan};
///
/// let field = Field::open(100.0, 100.0);
/// let mut plan = MultiLegPlan::new(
///     &field,
///     Point::new(80.0, 73.0),
///     vec![Point::new(80.0, 50.0), Point::new(0.0, 50.0), Point::new(0.0, 0.0)],
///     Hand::Right,
/// );
/// while !plan.is_done() && !plan.is_stuck() {
///     plan.advance(10.0);
/// }
/// assert!(plan.is_done());
/// assert!(plan.pos().dist(Point::new(0.0, 0.0)) < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct MultiLegPlan {
    ctx: Arc<NavContext>,
    legs: Vec<Point>,
    leg_idx: usize,
    nav: Navigator,
    hand: Hand,
    traveled_before: f64,
}

impl MultiLegPlan {
    /// Creates a plan visiting `legs` in order from `start`, building
    /// a private [`NavContext`] at the default clearance.
    ///
    /// # Panics
    ///
    /// Panics if `legs` is empty.
    pub fn new(field: &Field, start: Point, legs: Vec<Point>, hand: Hand) -> Self {
        Self::with_context(Arc::new(NavContext::new(field)), start, legs, hand)
    }

    /// Creates a plan whose legs all probe obstacles through a shared,
    /// pre-built context.
    ///
    /// # Panics
    ///
    /// Panics if `legs` is empty.
    pub fn with_context(ctx: Arc<NavContext>, start: Point, legs: Vec<Point>, hand: Hand) -> Self {
        assert!(!legs.is_empty(), "at least one leg required");
        let nav = Navigator::with_context(ctx.clone(), start, legs[0], hand);
        MultiLegPlan {
            ctx,
            legs,
            leg_idx: 0,
            nav,
            hand,
            traveled_before: 0.0,
        }
    }

    /// Current position.
    #[inline]
    pub fn pos(&self) -> Point {
        self.nav.pos()
    }

    /// Index of the leg currently being executed.
    #[inline]
    pub fn leg(&self) -> usize {
        self.leg_idx
    }

    /// Destination of the leg currently being executed.
    #[inline]
    pub fn current_target(&self) -> Point {
        self.legs[self.leg_idx]
    }

    /// Total distance walked over all legs.
    #[inline]
    pub fn traveled(&self) -> f64 {
        self.traveled_before + self.nav.traveled()
    }

    /// Returns `true` once the final destination has been reached.
    pub fn is_done(&self) -> bool {
        self.leg_idx + 1 == self.legs.len() && self.nav.is_done()
    }

    /// Returns `true` if the final leg got stuck (unreachable target).
    pub fn is_stuck(&self) -> bool {
        self.leg_idx + 1 == self.legs.len() && self.nav.is_stuck()
    }

    /// Moves up to `max_dist` meters, switching legs when the current
    /// leg completes, gets stuck, or (for intermediate legs) touches an
    /// obstacle. Returns the new position.
    pub fn advance(&mut self, max_dist: f64) -> Point {
        let mut remaining = max_dist.max(0.0);
        let mut guard = 0;
        while remaining > 1e-9 && !self.is_done() && !self.is_stuck() {
            guard += 1;
            if guard > 10_000 {
                break;
            }
            let before = self.nav.traveled();
            self.nav.advance(remaining);
            remaining -= self.nav.traveled() - before;
            let last_leg = self.leg_idx + 1 == self.legs.len();
            let abandon = !last_leg && (self.nav.hit_obstacle() || self.nav.is_stuck());
            if self.nav.is_done() || abandon {
                if last_leg {
                    break;
                }
                self.leg_idx += 1;
                self.traveled_before += self.nav.traveled();
                self.nav = Navigator::with_context(
                    self.ctx.clone(),
                    self.nav.pos(),
                    self.legs[self.leg_idx],
                    self.hand,
                );
            } else if self.nav.is_stuck() {
                break;
            } else if remaining > 1e-9 {
                // Navigator stopped without consuming the budget and
                // without finishing: should not happen, bail out to stay
                // safe.
                break;
            }
        }
        self.pos()
    }
}

impl fmt::Display for MultiLegPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multi-leg plan at {} (leg {}/{})",
            self.pos(),
            self.leg_idx + 1,
            self.legs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn run(plan: &mut MultiLegPlan, step: f64, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if plan.is_done() || plan.is_stuck() {
                break;
            }
            plan.advance(step);
        }
        plan.is_done()
    }

    #[test]
    fn visits_waypoints_in_open_field() {
        let f = Field::open(100.0, 100.0);
        let start = Point::new(80.0, 73.0);
        let legs = vec![
            Point::new(80.0, 50.0),
            Point::new(0.0, 50.0),
            Point::new(0.0, 0.0),
        ];
        let mut plan = MultiLegPlan::new(&f, start, legs, Hand::Right);
        assert!(run(&mut plan, 5.0, 200));
        // Manhattan-ish path: 23 + 80 + 50
        assert!(
            (plan.traveled() - 153.0).abs() < 1e-6,
            "got {}",
            plan.traveled()
        );
    }

    #[test]
    fn abandons_intermediate_leg_on_obstacle_contact() {
        // A wall between the start and the first waypoint.
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(70.0, 30.0, 90.0, 60.0).to_polygon()],
        );
        let start = Point::new(80.0, 73.0);
        let legs = vec![
            Point::new(80.0, 40.0), // blocked by the wall
            Point::new(0.0, 40.0),
            Point::new(0.0, 0.0),
        ];
        let mut plan = MultiLegPlan::new(&f, start, legs, Hand::Right);
        assert!(run(&mut plan, 5.0, 400), "state: {plan}");
        assert!(plan.pos().dist(Point::ORIGIN) < 1e-6);
    }

    #[test]
    fn last_leg_runs_full_bug2() {
        // Wall in front of the origin: the final leg must detour, not
        // abandon.
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(10.0, 10.0, 40.0, 40.0).to_polygon()],
        );
        let start = Point::new(80.0, 80.0);
        let legs = vec![Point::new(80.0, 25.0), Point::new(0.0, 25.0), Point::ORIGIN];
        let mut plan = MultiLegPlan::new(&f, start, legs, Hand::Right);
        assert!(run(&mut plan, 4.0, 500), "state: {plan}");
        assert!(plan.pos().dist(Point::ORIGIN) < 1e-6);
        assert!(
            plan.traveled() > 135.0,
            "detour is longer than manhattan path"
        );
    }

    #[test]
    fn leg_index_progresses() {
        let f = Field::open(50.0, 50.0);
        let mut plan = MultiLegPlan::new(
            &f,
            Point::new(40.0, 40.0),
            vec![Point::new(40.0, 20.0), Point::new(10.0, 20.0)],
            Hand::Right,
        );
        assert_eq!(plan.leg(), 0);
        plan.advance(25.0);
        assert_eq!(plan.leg(), 1);
        plan.advance(35.0);
        assert!(plan.is_done());
    }
}
