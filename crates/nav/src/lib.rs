//! BUG2 obstacle-adaptive path planning (Lumelsky–Stepanov, §3.2 of
//! the paper).
//!
//! Sensors move toward a target along the straight *reference line*
//! until they hit an obstacle, then follow the obstacle boundary with a
//! hand rule (right hand for establishing connectivity, left hand for
//! the BLG coverage expansion of §5.5.1) until they can rejoin the
//! reference line closer to the target. BUG2 produces a path of length
//! at most `D + Σ nᵢ·lᵢ/2` for obstacles of perimeter `lᵢ` crossed
//! `nᵢ` times by the reference line, and is essentially optimal for
//! convex obstacles.
//!
//! The central type is [`Navigator`], an *incremental* planner: each
//! call to [`Navigator::advance`] moves at most a given distance, which
//! is exactly what a sensor moving at most `V·T` per period needs.
//! [`MultiLegPlan`] chains navigators through the intermediate
//! destinations of FLOOR's Algorithm 1.
//!
//! Positions are kept a small *clearance* away from obstacle walls by
//! navigating around slightly inflated obstacle polygons, so a
//! navigating sensor always stands in free space.
//!
//! # Examples
//!
//! ```
//! use msn_field::Field;
//! use msn_geom::{Point, Rect};
//! use msn_nav::{Hand, Navigator};
//!
//! let field = Field::with_obstacles(
//!     100.0,
//!     100.0,
//!     vec![Rect::new(40.0, 20.0, 60.0, 80.0).to_polygon()],
//! );
//! let mut nav = Navigator::new(&field, Point::new(10.0, 50.0), Point::new(90.0, 50.0), Hand::Right);
//! while !nav.is_done() && !nav.is_stuck() {
//!     nav.advance(5.0);
//! }
//! assert!(nav.is_done());
//! // went around: traveled noticeably more than the 80 m straight line
//! assert!(nav.traveled() > 80.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bug2;
mod context;
mod multileg;
mod offset;

pub use bug2::{Hand, Navigator};
pub use context::{NavContext, NavScratch};
pub use multileg::MultiLegPlan;
pub use offset::offset_polygon;

/// Default clearance (m) kept between a navigating sensor and obstacle
/// walls.
pub const DEFAULT_CLEARANCE: f64 = 0.5;
