//! The incremental BUG2 navigator.

use crate::{NavContext, NavScratch};
use msn_field::Field;
use msn_geom::{Point, Segment};
use std::fmt;
use std::sync::Arc;

/// Which hand a sensor keeps on the obstacle while circumnavigating.
///
/// With counter-clockwise obstacle polygons, the right-hand rule walks
/// the boundary clockwise (obstacle to the sensor's right) and the
/// left-hand rule counter-clockwise. The paper uses the right hand for
/// connectivity establishment (§3.2) and the left hand during boundary
/// guided expansion (§5.5.1) "to help sensors disperse into unexplored
/// areas more quickly".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hand {
    /// Keep the right hand on the wall (clockwise around CCW polygons).
    Right,
    /// Keep the left hand on the wall (counter-clockwise).
    Left,
}

#[derive(Debug, Clone)]
enum State {
    OnLine,
    Following {
        poly: usize,
        edge: usize,
        ring_pos: Point,
        hit_dist: f64,
        followed: f64,
    },
    Reached,
    Stuck,
}

/// An incremental BUG2 planner: repeatedly call
/// [`Navigator::advance`] with a per-period movement budget.
///
/// Navigators probe obstacle rings through a shared [`NavContext`]
/// (offset rings + edge bucket grid, built once per run); the
/// convenience constructors build a private context for one-off plans.
/// See the [crate docs](crate) for the algorithm summary and an
/// example.
#[derive(Debug, Clone)]
pub struct Navigator {
    ctx: Arc<NavContext>,
    scratch: NavScratch,
    start: Point,
    target: Point,
    pos: Point,
    hand: Hand,
    state: State,
    traveled: f64,
    hit_obstacle: bool,
    travel_cap: f64,
}

impl Navigator {
    /// Plans a path from `start` to `target` through `field` with the
    /// default wall clearance ([`crate::DEFAULT_CLEARANCE`]).
    pub fn new(field: &Field, start: Point, target: Point, hand: Hand) -> Self {
        Navigator::with_clearance(field, start, target, hand, crate::DEFAULT_CLEARANCE)
    }

    /// Plans a path keeping `clearance` meters from obstacle walls,
    /// building a private [`NavContext`] for this plan alone.
    ///
    /// # Panics
    ///
    /// Panics if `clearance` is negative.
    pub fn with_clearance(
        field: &Field,
        start: Point,
        target: Point,
        hand: Hand,
        clearance: f64,
    ) -> Self {
        Navigator::with_context(
            Arc::new(NavContext::with_clearance(field, clearance)),
            start,
            target,
            hand,
        )
    }

    /// Plans a path probing obstacles through a shared, pre-built
    /// context — the cheap constructor every per-run plan should use.
    pub fn with_context(ctx: Arc<NavContext>, start: Point, target: Point, hand: Hand) -> Self {
        let _span = msn_obs::span("nav.plan");
        msn_obs::counter("nav.plans", 1);
        let d = start.dist(target);
        let state = if d <= 1e-9 {
            State::Reached
        } else {
            State::OnLine
        };
        let scratch = ctx.scratch();
        let travel_cap = 50.0 * (d + ctx.total_perimeter()) + 100.0;
        Navigator {
            ctx,
            scratch,
            start,
            target,
            pos: start,
            hand,
            state,
            traveled: 0.0,
            hit_obstacle: false,
            travel_cap,
        }
    }

    /// Current position (clamped into the field bounds).
    #[inline]
    pub fn pos(&self) -> Point {
        self.ctx.bounds().clamp_point(self.pos)
    }

    /// The navigation target.
    #[inline]
    pub fn target(&self) -> Point {
        self.target
    }

    /// Total distance walked so far.
    #[inline]
    pub fn traveled(&self) -> f64 {
        self.traveled
    }

    /// Returns `true` once the target has been reached.
    #[inline]
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Reached)
    }

    /// Returns `true` if the planner concluded the target is
    /// unreachable (circumnavigated the blocking obstacle without
    /// finding a closer exit) or exceeded its travel cap.
    #[inline]
    pub fn is_stuck(&self) -> bool {
        matches!(self.state, State::Stuck)
    }

    /// Returns `true` if the sensor has touched any obstacle since the
    /// plan started — FLOOR's Algorithm 1 abandons intermediate legs on
    /// first contact.
    #[inline]
    pub fn hit_obstacle(&self) -> bool {
        self.hit_obstacle
    }

    /// Returns `true` while the sensor is following an obstacle
    /// boundary.
    #[inline]
    pub fn is_following(&self) -> bool {
        matches!(self.state, State::Following { .. })
    }

    /// The shared navigation context this plan probes through.
    #[inline]
    pub fn context(&self) -> &Arc<NavContext> {
        &self.ctx
    }

    /// Moves up to `max_dist` meters along the BUG2 path and returns
    /// the new (clamped) position.
    ///
    /// Does nothing once [`Navigator::is_done`] or
    /// [`Navigator::is_stuck`].
    pub fn advance(&mut self, max_dist: f64) -> Point {
        let mut remaining = max_dist.max(0.0);
        let mut guard = 0usize;
        while remaining > 1e-9 {
            guard += 1;
            if guard > 100_000 || self.traveled > self.travel_cap {
                self.state = State::Stuck;
                break;
            }
            match self.state.clone() {
                State::Reached | State::Stuck => break,
                State::OnLine => {
                    let d_t = self.pos.dist(self.target);
                    if d_t <= 1e-9 {
                        self.state = State::Reached;
                        break;
                    }
                    let step = remaining.min(d_t);
                    let seg = Segment::new(self.pos, self.pos.step_toward(self.target, step));
                    match self.ctx.first_ring_hit(&mut self.scratch, &seg, None, true) {
                        None => {
                            self.pos = seg.b;
                            self.traveled += step;
                            remaining -= step;
                            if self.pos.dist(self.target) <= 1e-9 {
                                self.state = State::Reached;
                            }
                        }
                        Some((t, pi, ei)) => {
                            let hitp = seg.at(t);
                            let moved = self.pos.dist(hitp);
                            self.pos = hitp;
                            self.traveled += moved;
                            remaining -= moved;
                            self.hit_obstacle = true;
                            self.state = State::Following {
                                poly: pi,
                                edge: ei,
                                ring_pos: hitp,
                                hit_dist: hitp.dist(self.target),
                                followed: 0.0,
                            };
                        }
                    }
                }
                State::Following {
                    mut poly,
                    mut edge,
                    mut ring_pos,
                    hit_dist,
                    mut followed,
                } => {
                    let ccw = matches!(self.hand, Hand::Left);
                    let (corner, n) = {
                        let ring = &self.ctx.rings()[poly];
                        let e = ring.edge(edge);
                        (if ccw { e.b } else { e.a }, ring.len())
                    };
                    let to_corner = ring_pos.dist(corner);
                    if to_corner <= 1e-9 {
                        // Sitting on the corner: advance to the next edge.
                        edge = if ccw {
                            (edge + 1) % n
                        } else {
                            (edge + n - 1) % n
                        };
                        self.state = State::Following {
                            poly,
                            edge,
                            ring_pos,
                            hit_dist,
                            followed,
                        };
                        continue;
                    }
                    let chunk_len = remaining.min(to_corner);
                    let mut chunk = Segment::new(ring_pos, ring_pos.step_toward(corner, chunk_len));
                    // Crossing into another obstacle's ring: switch rings
                    // there (walking the boundary of the obstacle union).
                    let mut switch: Option<(usize, usize)> = None;
                    if self.ctx.rings().len() > 1 {
                        if let Some((t, pj, ej)) =
                            self.ctx
                                .first_ring_hit(&mut self.scratch, &chunk, Some(poly), false)
                        {
                            chunk = Segment::new(chunk.a, chunk.at(t));
                            switch = Some((pj, ej));
                        }
                    }
                    // BUG2 leave test: does this chunk cross the reference
                    // line at a point closer to the target, with clear
                    // progress?
                    let ref_seg = Segment::new(self.start, self.target);
                    if let Some(cross) = chunk.intersect(&ref_seg) {
                        if cross.dist(self.target) < hit_dist - 1e-6
                            && Self::can_progress(&self.ctx, &mut self.scratch, self.target, cross)
                        {
                            let moved = ring_pos.dist(cross);
                            self.pos = cross;
                            self.traveled += moved;
                            remaining -= moved;
                            self.state = State::OnLine;
                            continue;
                        }
                    }
                    // Commit the chunk.
                    let moved = chunk.length();
                    ring_pos = chunk.b;
                    self.pos = ring_pos;
                    self.traveled += moved;
                    remaining -= moved;
                    followed += moved;
                    if followed > 2.0 * self.ctx.total_perimeter().max(1.0) + 50.0 {
                        self.state = State::Stuck;
                        break;
                    }
                    if let Some((pj, ej)) = switch {
                        poly = pj;
                        edge = ej;
                    } else if ring_pos.dist(corner) <= 1e-9 {
                        edge = if ccw {
                            (edge + 1) % n
                        } else {
                            (edge + n - 1) % n
                        };
                    }
                    self.state = State::Following {
                        poly,
                        edge,
                        ring_pos,
                        hit_dist,
                        followed,
                    };
                }
            }
        }
        self.pos()
    }

    /// Returns `true` if a short probe from `p` toward the target is
    /// unobstructed — the "can make progress on the reference line"
    /// part of the BUG2 leave condition.
    fn can_progress(ctx: &NavContext, scratch: &mut NavScratch, target: Point, p: Point) -> bool {
        let d = p.dist(target);
        if d <= 1e-9 {
            return true;
        }
        let probe_len = d.min(1.0);
        let probe = Segment::new(p, p.step_toward(target, probe_len));
        ctx.first_ring_hit(scratch, &probe, None, true).is_none()
    }
}

impl fmt::Display for Navigator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self.state {
            State::OnLine => "on-line",
            State::Following { .. } => "following",
            State::Reached => "reached",
            State::Stuck => "stuck",
        };
        write!(f, "bug2({} -> {}, {s})", self.pos, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn run(nav: &mut Navigator, step: f64, max_steps: usize) -> bool {
        for _ in 0..max_steps {
            if nav.is_done() || nav.is_stuck() {
                break;
            }
            nav.advance(step);
        }
        nav.is_done()
    }

    #[test]
    fn straight_line_in_open_field() {
        let f = Field::open(100.0, 100.0);
        let mut nav = Navigator::new(
            &f,
            Point::new(10.0, 10.0),
            Point::new(90.0, 90.0),
            Hand::Right,
        );
        assert!(run(&mut nav, 7.0, 100));
        let d = Point::new(10.0, 10.0).dist(Point::new(90.0, 90.0));
        assert!((nav.traveled() - d).abs() < 1e-6);
        assert!(!nav.hit_obstacle());
    }

    #[test]
    fn zero_length_plan_is_immediately_done() {
        let f = Field::open(10.0, 10.0);
        let nav = Navigator::new(&f, Point::new(5.0, 5.0), Point::new(5.0, 5.0), Hand::Right);
        assert!(nav.is_done());
    }

    #[test]
    fn detours_around_a_wall() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 20.0, 60.0, 80.0).to_polygon()],
        );
        let start = Point::new(10.0, 50.0);
        let target = Point::new(90.0, 50.0);
        let mut nav = Navigator::new(&f, start, target, Hand::Right);
        assert!(
            run(&mut nav, 3.0, 500),
            "must reach the target, state: {nav}"
        );
        assert!(nav.hit_obstacle());
        // Detour: strictly longer than straight line, but bounded by
        // D + perimeter of the (inflated) obstacle.
        let d = start.dist(target);
        assert!(nav.traveled() > d + 10.0);
        assert!(nav.traveled() < d + 2.0 * (40.0 + 120.0) + 20.0);
    }

    #[test]
    fn right_hand_goes_clockwise_around_the_wall() {
        // Wall spans y in [20, 80]; arriving at its left face and putting
        // the right hand on the wall turns the sensor to face north, so
        // it first walks up toward y=80 (clockwise around the polygon).
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 20.0, 60.0, 80.0).to_polygon()],
        );
        let mut nav = Navigator::new(
            &f,
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Hand::Right,
        );
        // advance until following, then a bit more
        for _ in 0..40 {
            nav.advance(1.0);
            if nav.is_following() {
                break;
            }
        }
        assert!(nav.is_following());
        nav.advance(10.0);
        assert!(
            nav.pos().y > 50.0,
            "right hand should walk up first, at {}",
            nav.pos()
        );
        assert!(run(&mut nav, 3.0, 500));
    }

    #[test]
    fn left_hand_goes_counterclockwise() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 20.0, 60.0, 80.0).to_polygon()],
        );
        let mut nav = Navigator::new(
            &f,
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Hand::Left,
        );
        for _ in 0..40 {
            nav.advance(1.0);
            if nav.is_following() {
                break;
            }
        }
        assert!(nav.is_following());
        nav.advance(10.0);
        assert!(
            nav.pos().y < 50.0,
            "left hand should walk down first, at {}",
            nav.pos()
        );
        assert!(run(&mut nav, 3.0, 500));
    }

    #[test]
    fn figure2_two_obstacles() {
        // Replica of the paper's Figure 2: two obstacles on the way.
        let f = Field::with_obstacles(
            200.0,
            100.0,
            vec![
                Rect::new(40.0, 30.0, 70.0, 70.0).to_polygon(),
                Rect::new(110.0, 20.0, 140.0, 60.0).to_polygon(),
            ],
        );
        let start = Point::new(10.0, 50.0);
        let target = Point::new(190.0, 40.0);
        let mut nav = Navigator::new(&f, start, target, Hand::Right);
        assert!(run(&mut nav, 2.0, 1000), "state: {nav}");
        let d = start.dist(target);
        let perims = 2.0 * (30.0 + 40.0) + 2.0 * (30.0 + 40.0);
        assert!(
            nav.traveled() <= d + perims + 30.0,
            "BUG2 bound violated: {}",
            nav.traveled()
        );
    }

    #[test]
    fn unreachable_target_gets_stuck_not_infinite() {
        // Target inside a box.
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 40.0, 60.0, 60.0).to_polygon()],
        );
        let mut nav = Navigator::new(
            &f,
            Point::new(10.0, 50.0),
            Point::new(50.0, 50.0),
            Hand::Right,
        );
        let done = run(&mut nav, 5.0, 2000);
        assert!(!done);
        assert!(nav.is_stuck());
    }

    #[test]
    fn overlapping_obstacles_traversed_as_union() {
        // Two overlapping rectangles forming a plus-shaped union.
        let f = Field::with_obstacles(
            200.0,
            200.0,
            vec![
                Rect::new(80.0, 40.0, 120.0, 160.0).to_polygon(),
                Rect::new(60.0, 80.0, 140.0, 120.0).to_polygon(),
            ],
        );
        let start = Point::new(10.0, 100.0);
        let target = Point::new(190.0, 100.0);
        let mut nav = Navigator::new(&f, start, target, Hand::Right);
        assert!(run(&mut nav, 2.0, 2000), "state: {nav}");
        assert!(nav.traveled() > 180.0);
    }

    #[test]
    fn positions_stay_clear_of_obstacles() {
        let f = Field::with_obstacles(
            100.0,
            100.0,
            vec![Rect::new(40.0, 20.0, 60.0, 80.0).to_polygon()],
        );
        let mut nav = Navigator::new(
            &f,
            Point::new(10.0, 50.0),
            Point::new(90.0, 50.0),
            Hand::Right,
        );
        while !nav.is_done() && !nav.is_stuck() {
            let p = nav.advance(1.5);
            assert!(
                f.nearest_obstacle_dist(p) > 0.25,
                "sensor at {p} too close to the wall"
            );
            assert!(f.in_bounds(p));
        }
        assert!(nav.is_done());
    }

    #[test]
    fn advance_budget_is_respected() {
        let f = Field::open(100.0, 100.0);
        let mut nav = Navigator::new(&f, Point::new(0.0, 0.0), Point::new(90.0, 0.0), Hand::Right);
        let before = nav.traveled();
        nav.advance(2.0);
        assert!((nav.traveled() - before - 2.0).abs() < 1e-9);
    }

    #[test]
    fn shared_context_matches_private_context_path() {
        let f = Field::with_obstacles(
            200.0,
            100.0,
            vec![
                Rect::new(40.0, 30.0, 70.0, 70.0).to_polygon(),
                Rect::new(110.0, 20.0, 140.0, 60.0).to_polygon(),
            ],
        );
        let ctx = Arc::new(NavContext::new(&f));
        let start = Point::new(10.0, 50.0);
        let target = Point::new(190.0, 40.0);
        let mut a = Navigator::new(&f, start, target, Hand::Right);
        let mut b = Navigator::with_context(ctx, start, target, Hand::Right);
        while !a.is_done() && !a.is_stuck() {
            let pa = a.advance(2.0);
            let pb = b.advance(2.0);
            assert_eq!(pa, pb);
            assert_eq!(a.traveled().to_bits(), b.traveled().to_bits());
        }
        assert!(b.is_done());
    }
}
