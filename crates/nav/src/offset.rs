//! Polygon offsetting (Minkowski-style inflation).

use msn_geom::{Line, Polygon};

/// Inflates a polygon outward by `delta` meters.
///
/// Each edge is pushed `delta` along its outward normal and adjacent
/// offset edges are re-intersected; a vertex whose adjacent edges are
/// near-parallel falls back to shifting along the averaged normal.
/// Exact for convex polygons; a good approximation for mildly concave
/// ones when `delta` is small relative to edge lengths (our clearances
/// are ≤ 1 m on obstacles tens of meters across).
///
/// # Panics
///
/// Panics if `delta` is negative.
///
/// # Examples
///
/// ```
/// use msn_geom::{Point, Rect};
/// use msn_nav::offset_polygon;
///
/// let grown = offset_polygon(&Rect::new(0.0, 0.0, 10.0, 10.0).to_polygon(), 1.0);
/// assert!((grown.area() - 144.0).abs() < 1e-9);
/// ```
pub fn offset_polygon(poly: &Polygon, delta: f64) -> Polygon {
    assert!(delta >= 0.0, "offset must be non-negative");
    if delta == 0.0 {
        return poly.clone();
    }
    let n = poly.len();
    let verts = poly.vertices();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let prev = verts[(i + n - 1) % n];
        let cur = verts[i];
        let next = verts[(i + 1) % n];
        // CCW polygon: outward normal of edge (a -> b) is (b-a).perp()
        // rotated -90°, i.e. -(b-a).perp().
        let n1 = match (cur - prev).normalized() {
            Some(d) => -d.perp(),
            None => continue, // duplicate vertex; skip
        };
        let n2 = match (next - cur).normalized() {
            Some(d) => -d.perp(),
            None => continue,
        };
        let l1 = Line::new(prev + n1 * delta, cur - prev);
        let l2 = Line::new(cur + n2 * delta, next - cur);
        let p = match l1.intersect(&l2) {
            Some(p) if p.dist(cur) <= 16.0 * delta => p,
            // Near-parallel edges (or a spike): average the normals.
            _ => {
                let avg = (n1 + n2).normalized().unwrap_or(n1);
                cur + avg * delta
            }
        };
        out.push(p);
    }
    Polygon::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::{Point, Rect};

    #[test]
    fn square_inflates_to_bigger_square() {
        let sq = Rect::new(0.0, 0.0, 10.0, 10.0).to_polygon();
        let big = offset_polygon(&sq, 2.0);
        assert_eq!(big.len(), 4);
        assert!((big.area() - 196.0).abs() < 1e-9);
        let bb = big.bounding_box();
        assert!(bb.min.approx_eq(Point::new(-2.0, -2.0)));
        assert!(bb.max.approx_eq(Point::new(12.0, 12.0)));
    }

    #[test]
    fn zero_offset_is_identity() {
        let sq = Rect::new(1.0, 1.0, 4.0, 5.0).to_polygon();
        let same = offset_polygon(&sq, 0.0);
        assert_eq!(same.vertices(), sq.vertices());
    }

    #[test]
    fn triangle_offset_contains_original() {
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(10.0, 15.0),
        ]);
        let grown = offset_polygon(&tri, 1.0);
        for v in tri.vertices() {
            assert!(
                grown.contains(*v),
                "inflated polygon must contain original vertices"
            );
        }
        assert!(grown.area() > tri.area());
    }

    #[test]
    fn l_shape_offset_is_reasonable() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(30.0, 0.0),
            Point::new(30.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(10.0, 30.0),
            Point::new(0.0, 30.0),
        ]);
        let grown = offset_polygon(&l, 0.5);
        // contains the original boundary
        for v in l.vertices() {
            assert!(grown.contains(*v));
        }
        // reflex corner handled: area grows by roughly perimeter * delta
        let growth = grown.area() - l.area();
        let approx = l.perimeter() * 0.5;
        assert!((growth - approx).abs() < 5.0, "growth {growth} vs {approx}");
    }
}
