//! Property-based tests for BUG2 navigation.

use msn_field::Field;
use msn_geom::{Point, Rect, Segment};
use msn_nav::{Hand, NavContext, Navigator};
use proptest::prelude::*;

fn single_obstacle_field(ox: f64, oy: f64, w: f64, h: f64) -> Field {
    Field::with_obstacles(
        1000.0,
        1000.0,
        vec![Rect::new(ox, oy, ox + w, oy + h).to_polygon()],
    )
}

fn drive(nav: &mut Navigator, step: f64, max_steps: usize) -> bool {
    for _ in 0..max_steps {
        if nav.is_done() || nav.is_stuck() {
            break;
        }
        nav.advance(step);
    }
    nav.is_done()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BUG2 always reaches a reachable target around a single convex
    /// obstacle, with both hand rules.
    #[test]
    fn reaches_target_around_convex_obstacle(
        ox in 200.0..600.0f64, oy in 200.0..600.0f64,
        w in 50.0..300.0f64, h in 50.0..300.0f64,
        sx in 0.0..150.0f64, sy in 0.0..1000.0f64,
        tx in 850.0..1000.0f64, ty in 0.0..1000.0f64,
        hand in prop::bool::ANY,
    ) {
        let field = single_obstacle_field(ox, oy, w, h);
        let start = Point::new(sx, sy);
        let target = Point::new(tx, ty);
        prop_assume!(field.is_free(start) && field.is_free(target));
        prop_assume!(field.nearest_obstacle_dist(start) > 1.0);
        prop_assume!(field.nearest_obstacle_dist(target) > 1.0);
        let hand = if hand { Hand::Right } else { Hand::Left };
        let mut nav = Navigator::new(&field, start, target, hand);
        prop_assert!(drive(&mut nav, 5.0, 4000), "must reach target, state {nav}");
        prop_assert!(nav.pos().dist(target) < 1e-6);
    }

    /// The BUG2 bound for a single convex obstacle: path length at most
    /// the straight distance plus 1.5x the (inflated) perimeter, with
    /// slack for discretization.
    #[test]
    fn path_length_respects_bug2_bound(
        ox in 300.0..500.0f64, oy in 300.0..500.0f64,
        w in 80.0..250.0f64, h in 80.0..250.0f64,
        sy in 100.0..900.0f64, ty in 100.0..900.0f64,
    ) {
        let field = single_obstacle_field(ox, oy, w, h);
        let start = Point::new(20.0, sy);
        let target = Point::new(980.0, ty);
        let mut nav = Navigator::new(&field, start, target, Hand::Right);
        prop_assert!(drive(&mut nav, 5.0, 4000));
        let d = start.dist(target);
        let perimeter = 2.0 * (w + h) + 8.0; // inflated ring
        prop_assert!(
            nav.traveled() <= d + 1.5 * perimeter + 20.0,
            "traveled {} exceeds BUG2 bound (D={d}, l={perimeter})",
            nav.traveled()
        );
    }

    /// Positions along the way stay in free space (clearance from
    /// obstacle interiors) and inside the field.
    #[test]
    fn path_stays_in_free_space(
        ox in 250.0..550.0f64, oy in 250.0..550.0f64,
        sy in 50.0..950.0f64, ty in 50.0..950.0f64,
    ) {
        let field = single_obstacle_field(ox, oy, 200.0, 200.0);
        let start = Point::new(10.0, sy);
        let target = Point::new(990.0, ty);
        let mut nav = Navigator::new(&field, start, target, Hand::Right);
        for _ in 0..4000 {
            if nav.is_done() || nav.is_stuck() {
                break;
            }
            let p = nav.advance(3.0);
            prop_assert!(field.in_bounds(p));
            prop_assert!(
                field.nearest_obstacle_dist(p) > 0.2,
                "position {p} intrudes into the obstacle"
            );
        }
        prop_assert!(nav.is_done());
    }

    /// Open-field navigation is exactly the straight line.
    #[test]
    fn open_field_is_straight(
        sx in 0.0..1000.0f64, sy in 0.0..1000.0f64,
        tx in 0.0..1000.0f64, ty in 0.0..1000.0f64,
    ) {
        let field = Field::open(1000.0, 1000.0);
        let start = Point::new(sx, sy);
        let target = Point::new(tx, ty);
        let mut nav = Navigator::new(&field, start, target, Hand::Left);
        prop_assert!(drive(&mut nav, 7.0, 1000));
        prop_assert!((nav.traveled() - start.dist(target)).abs() < 1e-6);
    }

    /// The edge-bucket-indexed `first_ring_hit` must agree with the
    /// linear scan over every ring edge — hit or miss, the same `t`
    /// bit for bit, and the same `(ring, edge)` winner — over random
    /// obstacle sets, clearances, and probes (including short and
    /// degenerate ones).
    #[test]
    fn indexed_ring_hit_matches_linear_scan(
        rects in prop::collection::vec(
            (50.0..900.0f64, 50.0..900.0f64, 20.0..250.0f64, 20.0..250.0f64),
            1..6,
        ),
        clearance in 0.1..2.0f64,
        probes in prop::collection::vec(
            (-50.0..1050.0f64, -50.0..1050.0f64, -50.0..1050.0f64, -50.0..1050.0f64),
            1..20,
        ),
        skip_inside in prop::bool::ANY,
        exclude_first in prop::bool::ANY,
    ) {
        let obstacles = rects
            .iter()
            .map(|&(x, y, w, h)| Rect::new(x, y, x + w, y + h).to_polygon())
            .collect();
        let field = Field::with_obstacles(1000.0, 1000.0, obstacles);
        let ctx = NavContext::with_clearance(&field, clearance);
        let mut scratch = ctx.scratch();
        let exclude = exclude_first.then_some(0);
        for &(ax, ay, bx, by) in &probes {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            // the full probe, a short sub-probe, and a degenerate one
            let near = a + (b - a) * 1e-4;
            for seg in [Segment::new(a, b), Segment::new(a, near), Segment::new(a, a)] {
                prop_assert_eq!(
                    ctx.first_ring_hit(&mut scratch, &seg, exclude, skip_inside),
                    ctx.first_ring_hit_linear(&seg, exclude, skip_inside),
                    "probe {:?} exclude {:?} skip {}", seg, exclude, skip_inside
                );
            }
        }
    }

    /// Budgets are respected: each advance() call walks at most the
    /// requested distance.
    #[test]
    fn advance_budget_never_exceeded(
        sy in 100.0..900.0f64, ty in 100.0..900.0f64, step in 0.1..20.0f64,
    ) {
        let field = single_obstacle_field(400.0, 400.0, 200.0, 200.0);
        let mut nav = Navigator::new(
            &field,
            Point::new(10.0, sy),
            Point::new(990.0, ty),
            Hand::Right,
        );
        for _ in 0..200 {
            let before = nav.traveled();
            nav.advance(step);
            prop_assert!(nav.traveled() - before <= step + 1e-9);
        }
    }
}
