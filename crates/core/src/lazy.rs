//! The lazy movement strategy (§3.3), shared by CPVF's and FLOOR's
//! connectivity phases.
//!
//! With multi-hop communication, a disconnected sensor walking toward
//! the base station may stop as soon as a neighbor *ahead of it* (its
//! *path parent*) is expected to connect first — connectivity then
//! arrives for free. Waiting chains can deadlock into loops around
//! obstacles; a waiting sensor probes its chain with
//! `PathParentInquiry` messages and resumes (blacklisting the parent)
//! when the probe returns to itself.

use msn_geom::Point;
use msn_nav::{MultiLegPlan, Navigator};
use msn_net::MsgKind;
use msn_sim::World;

/// A BUG2 route: CPVF uses a single leg straight to the base; FLOOR
/// routes through Algorithm 1's intermediate destinations.
#[derive(Debug)]
pub(crate) enum Route {
    /// One BUG2 leg.
    Single(Navigator),
    /// FLOOR's multi-leg plan.
    Multi(MultiLegPlan),
}

impl Route {
    pub(crate) fn advance(&mut self, dist: f64) -> Point {
        match self {
            Route::Single(nav) => nav.advance(dist),
            Route::Multi(plan) => plan.advance(dist),
        }
    }

    /// The destination currently steered toward (the current leg's
    /// target) — what "ahead of me" is measured against.
    pub(crate) fn current_target(&self) -> Point {
        match self {
            Route::Single(nav) => nav.target(),
            Route::Multi(plan) => plan.current_target(),
        }
    }

    pub(crate) fn is_stuck(&self) -> bool {
        match self {
            Route::Single(nav) => nav.is_stuck(),
            Route::Multi(plan) => plan.is_stuck(),
        }
    }

    pub(crate) fn traveled(&self) -> f64 {
        match self {
            Route::Single(nav) => nav.traveled(),
            Route::Multi(plan) => plan.traveled(),
        }
    }
}

/// Outcome of one connectivity-phase planning step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectOutcome {
    /// Keep walking this period.
    Move,
    /// Wait for the path parent (no movement this period).
    Wait,
    /// Back-off timer still running.
    BackOff,
}

/// Per-sensor lazy-movement state for a disconnected, walking sensor.
#[derive(Debug)]
pub(crate) struct LazyMover {
    pub route: Route,
    pub path_parent: Option<usize>,
    pub idle_periods: u32,
    pub blacklist: Vec<usize>,
    pub backoff_until: f64,
}

/// Number of idle periods after which a waiting sensor starts probing
/// its path-parent chain for loops.
const INQUIRY_AFTER_IDLE: u32 = 3;

impl LazyMover {
    pub(crate) fn new(route: Route, backoff_until: f64) -> Self {
        LazyMover {
            route,
            path_parent: None,
            idle_periods: 0,
            blacklist: Vec::new(),
            backoff_until,
        }
    }
}

/// One lazy-movement planning step for sensor `i` (§3.3), shared by
/// both schemes' connectivity phases.
///
/// `movers` exposes every walking sensor's current path parent so the
/// mutual-adoption rule and loop probes can follow chains. Range
/// queries answer from the world's tracked point index
/// ([`World::track_points`], installed by both schemes). Returns
/// whether the sensor should move this period, updates `movers[i]`'s
/// lazy state and records message costs on the world's counter.
pub(crate) fn lazy_plan_step(
    i: usize,
    world: &mut World,
    movers: &mut [Option<LazyMover>],
) -> ConnectOutcome {
    let rc = world.cfg().rc;
    let now = world.time();
    // Split-borrow dance: extract what we need from mover i first.
    let (target, backoff_until, blacklist) = {
        let m = movers[i].as_ref().expect("lazy_plan_step on non-mover");
        (
            m.route.current_target(),
            m.backoff_until,
            m.blacklist.clone(),
        )
    };
    if now < backoff_until {
        return ConnectOutcome::BackOff;
    }
    // Find the nearest neighbor strictly ahead of us (closer to our
    // current destination), not blacklisted, and not adopting us.
    let candidate: Option<(usize, f64)> = {
        let nbrs = world.neighbors_tracked(i, rc);
        let positions = world.positions();
        let my_dist = positions.get(i).dist(target);
        let mut best: Option<(usize, f64)> = None;
        for j in nbrs {
            if blacklist.contains(&j) {
                continue;
            }
            // Only walking sensors can serve as path parents; a
            // connected neighbor would have connected us already.
            let Some(other) = movers.get(j).and_then(|m| m.as_ref()) else {
                continue;
            };
            if other.path_parent == Some(i) {
                continue; // mutual adoption forbidden
            }
            if positions.get(j).dist(target) + 1e-9 < my_dist {
                let d = positions.get(i).dist(positions.get(j));
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((j, d));
                }
            }
        }
        best
    };
    let m = movers[i].as_mut().expect("checked above");
    match candidate {
        Some((j, _)) => {
            m.path_parent = Some(j);
            m.idle_periods += 1;
            if m.idle_periods >= INQUIRY_AFTER_IDLE {
                // Probe the path-parent chain once per period.
                let mut hops = 0u64;
                let mut cur = j;
                let mut looped = false;
                for _ in 0..movers.len() {
                    hops += 1;
                    if cur == i {
                        looped = true;
                        break;
                    }
                    match movers
                        .get(cur)
                        .and_then(|m| m.as_ref())
                        .and_then(|m| m.path_parent)
                    {
                        Some(next) => cur = next,
                        None => break,
                    }
                }
                world.msgs().record(MsgKind::PathParentInquiry, hops);
                if looped {
                    // Waiting loop: resume walking, never trust j again.
                    let m = movers[i].as_mut().expect("still a mover");
                    m.blacklist.push(j);
                    m.path_parent = None;
                    m.idle_periods = 0;
                    return ConnectOutcome::Move;
                }
            }
            ConnectOutcome::Wait
        }
        None => {
            m.path_parent = None;
            m.idle_periods = 0;
            ConnectOutcome::Move
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_field::Field;
    use msn_nav::Hand;
    use msn_sim::SimConfig;

    fn mover_to_origin(field: &Field, from: Point) -> LazyMover {
        LazyMover::new(
            Route::Single(Navigator::new(field, from, Point::ORIGIN, Hand::Right)),
            0.0,
        )
    }

    fn setup(positions: &[Point]) -> (World, Vec<Option<LazyMover>>) {
        let field = Field::open(200.0, 200.0);
        let movers: Vec<Option<LazyMover>> = positions
            .iter()
            .map(|p| Some(mover_to_origin(&field, *p)))
            .collect();
        let cfg = SimConfig::paper(30.0, 20.0).with_duration(10.0);
        let mut world = World::new(field, cfg, positions.to_vec());
        world.track_points();
        (world, movers)
    }

    /// Advances the world clock to (at least) `t` seconds.
    fn warp(world: &mut World, t: f64) {
        while world.time() < t {
            world.advance_tick();
        }
    }

    #[test]
    fn no_neighbors_means_move() {
        let positions = vec![Point::new(100.0, 100.0)];
        let (mut world, mut movers) = setup(&positions);
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out, ConnectOutcome::Move);
        assert_eq!(world.msgs_ref().total(), 0);
    }

    #[test]
    fn sensor_behind_adopts_ahead_neighbor() {
        // sensor 1 is closer to the origin: sensor 0 adopts it and waits.
        let positions = vec![Point::new(100.0, 0.0), Point::new(80.0, 0.0)];
        let (mut world, mut movers) = setup(&positions);
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out, ConnectOutcome::Wait);
        assert_eq!(movers[0].as_ref().unwrap().path_parent, Some(1));
        // and sensor 1 moves (sensor 0 is behind it)
        let out1 = lazy_plan_step(1, &mut world, &mut movers);
        assert_eq!(out1, ConnectOutcome::Move);
    }

    #[test]
    fn mutual_adoption_is_forbidden() {
        let positions = vec![Point::new(100.0, 0.0), Point::new(80.0, 0.0)];
        let (mut world, mut movers) = setup(&positions);
        // Pretend 1 already adopted 0 (contrived, as 0 is behind).
        movers[1].as_mut().unwrap().path_parent = Some(0);
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(
            out,
            ConnectOutcome::Move,
            "may not adopt a sensor that adopted us"
        );
    }

    #[test]
    fn backoff_delays_start() {
        let positions = vec![Point::new(100.0, 100.0)];
        let (mut world, mut movers) = setup(&positions);
        movers[0].as_mut().unwrap().backoff_until = 5.0;
        warp(&mut world, 1.0);
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out, ConnectOutcome::BackOff);
        warp(&mut world, 6.0);
        let out2 = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out2, ConnectOutcome::Move);
    }

    #[test]
    fn waiting_loop_detected_and_broken() {
        // Three sensors, each "ahead" of the previous w.r.t. its own
        // target is hard to fabricate geometrically; instead wire the
        // chain by hand and let the probe find the loop.
        let positions = vec![
            Point::new(100.0, 0.0),
            Point::new(80.0, 0.0),
            Point::new(90.0, 10.0),
        ];
        let (mut world, mut movers) = setup(&positions);
        movers[1].as_mut().unwrap().path_parent = Some(2);
        movers[2].as_mut().unwrap().path_parent = Some(0);
        movers[0].as_mut().unwrap().idle_periods = INQUIRY_AFTER_IDLE - 1;
        // sensor 0 adopts 1 (ahead), probes: 0 -> 1 -> 2 -> 0: loop!
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out, ConnectOutcome::Move, "loop must break the wait");
        assert!(movers[0].as_ref().unwrap().blacklist.contains(&1));
        assert!(world.msgs_ref().count(MsgKind::PathParentInquiry) >= 3);
    }

    #[test]
    fn blacklisted_parent_not_re_adopted() {
        let positions = vec![Point::new(100.0, 0.0), Point::new(80.0, 0.0)];
        let (mut world, mut movers) = setup(&positions);
        movers[0].as_mut().unwrap().blacklist.push(1);
        let out = lazy_plan_step(0, &mut world, &mut movers);
        assert_eq!(out, ConnectOutcome::Move);
    }
}
