//! The dynamic-run engine: scheduled world events with
//! restart-on-event scheme execution.
//!
//! A dynamic run executes a static scheme over segments between
//! scheduled events. A persistent *ledger* [`World`] carries the
//! cross-segment truth — positions, liveness, per-sensor travelled
//! distance, and the coverage/connectivity trackers that measure the
//! dips — while each segment hands the alive fleet to the ordinary
//! [`run_scheme_with`] dispatch and writes its outcome back. This is
//! the `failure_recovery` example's re-run-over-survivors pattern made
//! first-class: every scheme gets event handling without a line of
//! scheme code changing.
//!
//! Determinism: segment 0 runs on the run's ordinary sim seed, so a
//! schedule whose first event lies past the horizon reproduces the
//! static run's trajectory exactly. Every later random choice — which
//! sensors fail, where reinforcements land, restarted segment seeds —
//! derives from [`event_stream_seed`] over a dedicated per-run event
//! seed, a pure function of the matrix coordinate; thread count and
//! `--resume` cannot perturb it.

use crate::{run_scheme_with, SchemeKind, SchemeOverrides};
use msn_field::{CoverageGrid, Field};
use msn_geom::Point;
use msn_net::MessageCounter;
use msn_sim::{
    event_stream_seed, EventAction, EventQueue, EventSchedule, FailMode, RunResult, SimConfig,
    World,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// What one fired event did to the run — the raw material of the
/// recovery metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Simulation time (s) at which the event fired.
    pub time: f64,
    /// Machine-readable event kind (`"fail"`, `"obstacle-add"`, …).
    pub kind: String,
    /// Coverage fraction immediately before the event applied.
    pub pre_coverage: f64,
    /// Coverage fraction immediately after the event applied.
    pub post_coverage: f64,
    /// Commanded travel distance (m) accumulated from the event to
    /// the end of the run.
    pub post_move_dist: f64,
}

/// A dynamic run's result: the stitched [`RunResult`] plus one record
/// per fired event.
#[derive(Debug, Clone)]
pub struct DynamicOutcome {
    /// The run metrics, covering the whole horizon. `positions` and
    /// `per_move` hold the *alive* fleet's final state in slot order;
    /// `coverage_timeline` is the concatenation of every segment's
    /// timeline with pre/post samples at each event instant.
    pub result: RunResult,
    /// One record per fired event, in schedule order.
    pub events: Vec<EventRecord>,
}

/// Runs `kind` under an event schedule. See the module docs for the
/// segment/ledger model; parameters mirror [`run_scheme_with`], with
/// `schedule` (validated against `cfg.duration`) and the per-run
/// `event_seed` on top.
#[allow(clippy::too_many_arguments)]
pub fn run_scheme_dynamic(
    kind: SchemeKind,
    field: &Field,
    initial: &[Point],
    cfg: &SimConfig,
    overrides: &SchemeOverrides,
    grid: Option<&CoverageGrid>,
    schedule: &EventSchedule,
    event_seed: u64,
) -> DynamicOutcome {
    let mut field_cur = field.clone();
    let mut grid_cur = grid
        .cloned()
        .unwrap_or_else(|| CoverageGrid::new(&field_cur, cfg.coverage_cell));
    let mut base_cur = cfg.base;

    // The ledger world: initial fleet plus every reinforcement slot,
    // coverage + connectivity tracked so event pre/post samples are
    // O(changed sensors), not full re-rasterizations.
    let mut ledger = World::with_reserve(
        field_cur.clone(),
        cfg.clone(),
        initial.to_vec(),
        schedule.reinforce_total(),
    );
    ledger.track_coverage(grid_cur.clone());
    ledger.track_connectivity();
    // Reinforcements consume pristine slots past the initial fleet, in
    // order — a failed sensor's slot is never reused, so per-slot
    // travelled distance stays the history of one physical sensor.
    let mut reserve_cursor = initial.len();

    let mut queue = EventQueue::new(schedule);
    let mut time_cur = 0.0;
    let mut seg_index: u64 = 0;
    let mut timeline: Vec<(f64, f64)> = Vec::new();
    let mut messages = MessageCounter::new();
    let mut moves_total: u64 = 0;
    let mut move_dist_total: f64 = 0.0;
    let mut flags: Vec<String> = Vec::new();
    // (record, move_dist at event time) — post_move_dist is settled at
    // the end of the run.
    let mut fired: Vec<(EventRecord, f64)> = Vec::new();

    loop {
        let t_next = queue.next_time().unwrap_or(cfg.duration).min(cfg.duration);
        let seg_dur = t_next - time_cur;
        if seg_dur > 0.0 && ledger.alive_count() > 0 {
            let alive = ledger.alive_indices();
            let seg_initial: Vec<Point> = alive.iter().map(|&i| ledger.pos(i)).collect();
            // Segment 0 keeps the run's ordinary sim seed (an
            // event-free prefix reproduces the static trajectory);
            // restarted segments draw from the event stream.
            let seg_seed = if seg_index == 0 {
                cfg.seed
            } else {
                event_stream_seed(event_seed, SEGMENT_STREAM_BASE + seg_index)
            };
            let seg_cfg = cfg
                .clone()
                .with_duration(seg_dur)
                .with_seed(seg_seed)
                .with_base(base_cur);
            let r = run_scheme_with(
                kind,
                &field_cur,
                &seg_initial,
                &seg_cfg,
                overrides,
                Some(&grid_cur),
            );
            for (j, &i) in alive.iter().enumerate() {
                ledger.teleport(i, r.positions[j]);
                ledger.add_distance(i, r.per_move[j]);
            }
            moves_total += r.moves;
            move_dist_total += r.move_dist;
            messages.merge(&r.messages);
            for flag in r.flags {
                if !flags.contains(&flag) {
                    flags.push(flag);
                }
            }
            timeline.extend(r.coverage_timeline.iter().map(|&(t, c)| (time_cur + t, c)));
            seg_index += 1;
        }
        time_cur = t_next;
        if queue.next_time() != Some(t_next) {
            break;
        }
        let batch = queue.pop_batch();
        // Pre-event sample, per-event records, post-batch sample: the
        // recovery analysis keys on "last sample at the event instant
        // is the post-event state".
        timeline.push((time_cur, ledger.coverage_tracked()));
        for ev in batch {
            let ev_idx = fired.len() as u64;
            let pre = ledger.coverage_tracked();
            apply_event(
                &ev.action,
                event_stream_seed(event_seed, ev_idx),
                &mut ledger,
                &mut field_cur,
                &mut grid_cur,
                &mut base_cur,
                &mut reserve_cursor,
                cfg,
            );
            let post = ledger.coverage_tracked();
            fired.push((
                EventRecord {
                    time: ev.time,
                    kind: ev.action.kind().to_string(),
                    pre_coverage: pre,
                    post_coverage: post,
                    post_move_dist: 0.0,
                },
                move_dist_total,
            ));
        }
        timeline.push((time_cur, ledger.coverage_tracked()));
    }

    let coverage = ledger.coverage_tracked();
    let conn_mask = ledger.connected_mask_tracked();
    let alive = ledger.alive_indices();
    let connected = alive.iter().all(|&i| conn_mask[i]);
    // Per-sensor distances over every slot that ever lived (unused
    // reserve slots would dilute the averages with zeros).
    let moved: Vec<f64> = (0..reserve_cursor).map(|i| ledger.moved(i)).collect();
    let positions: Vec<Point> = alive.iter().map(|&i| ledger.pos(i)).collect();
    let mut result = RunResult::from_run(
        kind.name(),
        coverage,
        &moved,
        messages,
        connected,
        timeline,
        positions,
    )
    .with_movement(moves_total, move_dist_total);
    for flag in flags {
        result = result.with_flag(flag);
    }
    let events = fired
        .into_iter()
        .map(|(mut rec, dist_at)| {
            rec.post_move_dist = move_dist_total - dist_at;
            rec
        })
        .collect();
    DynamicOutcome { result, events }
}

/// Segment-seed streams live far above the per-event streams so the
/// two can never collide however long the schedule grows.
const SEGMENT_STREAM_BASE: u64 = 1_000_000;

/// Applies one event to the ledger and the current field/grid/base.
#[allow(clippy::too_many_arguments)]
fn apply_event(
    action: &EventAction,
    seed: u64,
    ledger: &mut World,
    field_cur: &mut Field,
    grid_cur: &mut CoverageGrid,
    base_cur: &mut Point,
    reserve_cursor: &mut usize,
    cfg: &SimConfig,
) {
    match action {
        EventAction::Fail { count, mode } => {
            let alive = ledger.alive_indices();
            let victims: Vec<usize> = match mode {
                FailMode::Random => {
                    let k = count.resolve(alive.len());
                    let mut pool = alive;
                    let mut rng = SmallRng::seed_from_u64(seed);
                    // partial Fisher–Yates over the alive list in
                    // index order: the first k swaps select the
                    // victims, independent of pool size beyond k
                    for j in 0..k {
                        let pick = j + rng.gen_range(0..pool.len() - j);
                        pool.swap(j, pick);
                    }
                    pool.truncate(k);
                    pool
                }
                FailMode::Drained => {
                    let k = count.resolve(alive.len());
                    let mut pool = alive;
                    // battery death: highest cumulative travel first,
                    // ties toward the lower index (sort is stable)
                    pool.sort_by(|&a, &b| {
                        ledger
                            .moved(b)
                            .partial_cmp(&ledger.moved(a))
                            .expect("travel distances are finite")
                    });
                    pool.truncate(k);
                    pool
                }
                FailMode::Region(rect) => {
                    let in_region: Vec<usize> = alive
                        .into_iter()
                        .filter(|&i| rect.contains(ledger.pos(i)))
                        .collect();
                    let k = count.resolve(in_region.len());
                    in_region.into_iter().take(k).collect()
                }
            };
            for v in victims {
                ledger.remove_sensor(v);
            }
        }
        EventAction::Reinforce { count, rect } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..*count {
                let p = sample_free_in_rect(rect, field_cur, &mut rng);
                ledger.insert_sensor(*reserve_cursor, p);
                *reserve_cursor += 1;
            }
        }
        EventAction::ObstacleAdd { rect } => {
            field_cur.push_obstacle(rect.to_polygon());
            *grid_cur = CoverageGrid::new(field_cur, cfg.coverage_cell);
            // re-rasterized world: the tracker reinstalls from current
            // positions, so cells swallowed by the obstacle leave the
            // covered count immediately
            ledger.track_coverage(grid_cur.clone());
        }
        EventAction::ObstacleRemove { index } => {
            // obstacle counts can vary per environment (randomized
            // fields), so an index past the list is a no-op rather
            // than an error — the event record still fires
            if *index < field_cur.obstacles().len() {
                field_cur.remove_obstacle(*index);
                *grid_cur = CoverageGrid::new(field_cur, cfg.coverage_cell);
                ledger.track_coverage(grid_cur.clone());
            }
        }
        EventAction::RelocateBase { to } => {
            *base_cur = *to;
            ledger.set_base(*to);
        }
    }
}

/// Draws a free point inside `rect` by rejection sampling (bounded;
/// falls back to the final draw if the rectangle is essentially all
/// obstacle — the sensor then sits in terrain and covers nothing,
/// which is the honest outcome of a bad drop zone).
fn sample_free_in_rect(rect: &msn_geom::Rect, field: &Field, rng: &mut SmallRng) -> Point {
    let mut p = rect.center();
    for _ in 0..10_000 {
        p = Point::new(
            rng.gen_range(rect.min.x..=rect.max.x),
            rng.gen_range(rect.min.y..=rect.max.y),
        );
        if field.is_free(p) {
            return p;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_sim::{DynEvent, FailCount};

    fn open_setup() -> (Field, Vec<Point>, SimConfig) {
        let field = Field::open(200.0, 200.0);
        let cfg = SimConfig::paper(50.0, 35.0)
            .with_duration(60.0)
            .with_coverage_cell(10.0)
            .with_seed(7);
        let initial: Vec<Point> = (0..12)
            .map(|i| Point::new(10.0 + 13.0 * (i % 4) as f64, 10.0 + 13.0 * (i / 4) as f64))
            .collect();
        (field, initial, cfg)
    }

    fn fail_event(time: f64, k: usize) -> DynEvent {
        DynEvent {
            time,
            action: EventAction::Fail {
                count: FailCount::Count(k),
                mode: FailMode::Random,
            },
        }
    }

    #[test]
    fn empty_schedule_matches_the_static_run() {
        let (field, initial, cfg) = open_setup();
        let overrides = SchemeOverrides::default();
        let schedule = EventSchedule::new(Vec::new());
        let stat = run_scheme_with(SchemeKind::Cpvf, &field, &initial, &cfg, &overrides, None);
        let dynamic = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &overrides,
            None,
            &schedule,
            999,
        );
        // one segment, seeded with the ordinary sim seed: identical
        // trajectory, identical metrics
        assert_eq!(dynamic.result.coverage, stat.coverage);
        assert_eq!(dynamic.result.positions, stat.positions);
        assert_eq!(dynamic.result.moves, stat.moves);
        assert_eq!(dynamic.result.move_dist, stat.move_dist);
        assert_eq!(dynamic.result.total_move, stat.total_move);
        assert!(dynamic.events.is_empty());
    }

    #[test]
    fn failure_dips_coverage_and_records_the_event() {
        let (field, initial, cfg) = open_setup();
        let schedule = EventSchedule::new(vec![fail_event(30.0, 6)]);
        let out = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &schedule,
            4242,
        );
        assert_eq!(out.events.len(), 1);
        let ev = &out.events[0];
        assert_eq!(ev.kind, "fail");
        assert!(
            ev.post_coverage < ev.pre_coverage,
            "killing half the fleet must dip coverage: {} -> {}",
            ev.pre_coverage,
            ev.post_coverage
        );
        assert!(ev.post_move_dist >= 0.0);
        // survivors: 6 of 12, all positions reported
        assert_eq!(out.result.positions.len(), 6);
        assert_eq!(out.result.per_move.len(), 12, "every ever-alive slot");
        // the timeline brackets the event with pre/post samples
        let at_event: Vec<f64> = out
            .result
            .coverage_timeline
            .iter()
            .filter(|&&(t, _)| t == 30.0)
            .map(|&(_, c)| c)
            .collect();
        assert!(at_event.len() >= 2, "pre and post samples at the instant");
        assert_eq!(*at_event.last().unwrap(), ev.post_coverage);
    }

    #[test]
    fn dynamic_runs_are_deterministic_in_the_event_seed() {
        let (field, initial, cfg) = open_setup();
        let schedule = EventSchedule::new(vec![fail_event(20.0, 4), fail_event(40.0, 2)]);
        let run = |event_seed: u64| {
            run_scheme_dynamic(
                SchemeKind::Cpvf,
                &field,
                &initial,
                &cfg,
                &SchemeOverrides::default(),
                None,
                &schedule,
                event_seed,
            )
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a.result.positions, b.result.positions);
        assert_eq!(a.result.coverage, b.result.coverage);
        assert_eq!(a.events, b.events);
        let c = run(2);
        assert_ne!(
            a.result.positions, c.result.positions,
            "a different event seed kills different sensors"
        );
    }

    #[test]
    fn reinforcements_join_the_fleet_inside_the_drop_zone() {
        let (field, initial, cfg) = open_setup();
        let rect = msn_geom::Rect::new(100.0, 100.0, 180.0, 180.0);
        let schedule = EventSchedule::new(vec![
            fail_event(20.0, 8),
            DynEvent {
                time: 30.0,
                action: EventAction::Reinforce { count: 5, rect },
            },
        ]);
        let out = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &schedule,
            77,
        );
        assert_eq!(out.result.positions.len(), 12 - 8 + 5);
        assert_eq!(out.result.per_move.len(), 12 + 5);
        let reinforce = &out.events[1];
        assert_eq!(reinforce.kind, "reinforce");
        assert!(
            reinforce.post_coverage > reinforce.pre_coverage,
            "five arrivals must add coverage"
        );
    }

    #[test]
    fn obstacle_add_swallows_coverage_and_remove_restores_it() {
        let (field, initial, cfg) = open_setup();
        let rect = msn_geom::Rect::new(20.0, 20.0, 120.0, 120.0);
        let schedule = EventSchedule::new(vec![
            DynEvent {
                time: 20.0,
                action: EventAction::ObstacleAdd { rect },
            },
            DynEvent {
                time: 40.0,
                action: EventAction::ObstacleRemove { index: 0 },
            },
        ]);
        let out = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &schedule,
            5,
        );
        let add = &out.events[0];
        assert!(
            add.post_coverage < add.pre_coverage,
            "an obstacle over the fleet removes covered cells"
        );
        let remove = &out.events[1];
        assert!(
            remove.post_coverage >= remove.pre_coverage,
            "clearing the obstacle cannot lose coverage"
        );
        // out-of-range removal is a recorded no-op
        let noop = EventSchedule::new(vec![DynEvent {
            time: 20.0,
            action: EventAction::ObstacleRemove { index: 9 },
        }]);
        let out = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &noop,
            5,
        );
        assert_eq!(out.events[0].pre_coverage, out.events[0].post_coverage);
    }

    #[test]
    fn drained_mode_kills_the_biggest_movers() {
        let (field, initial, cfg) = open_setup();
        let schedule = EventSchedule::new(vec![DynEvent {
            time: 30.0,
            action: EventAction::Fail {
                count: FailCount::Frac(0.25),
                mode: FailMode::Drained,
            },
        }]);
        let out = run_scheme_dynamic(
            SchemeKind::Cpvf,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &schedule,
            11,
        );
        // 25 % of 12 = 3 dead
        assert_eq!(out.result.positions.len(), 9);
        assert_eq!(out.events[0].kind, "fail");
    }

    #[test]
    fn relocate_base_reanchors_connectivity() {
        let (field, initial, cfg) = open_setup();
        let schedule = EventSchedule::new(vec![DynEvent {
            time: 30.0,
            action: EventAction::RelocateBase {
                to: Point::new(190.0, 190.0),
            },
        }]);
        let out = run_scheme_dynamic(
            SchemeKind::Floor,
            &field,
            &initial,
            &cfg,
            &SchemeOverrides::default(),
            None,
            &schedule,
            3,
        );
        assert_eq!(out.events[0].kind, "relocate-base");
        assert_eq!(out.result.positions.len(), 12);
    }

    #[test]
    fn every_scheme_survives_a_failure_schedule() {
        let (field, initial, cfg) = open_setup();
        let cfg = cfg.with_duration(20.0);
        let schedule = EventSchedule::new(vec![fail_event(10.0, 3)]);
        for kind in SchemeKind::ALL {
            let out = run_scheme_dynamic(
                kind,
                &field,
                &initial,
                &cfg,
                &SchemeOverrides::default(),
                None,
                &schedule,
                123,
            );
            assert_eq!(out.result.positions.len(), 9, "{kind} survivor count");
            assert!(out.result.coverage > 0.0, "{kind} final coverage");
            assert_eq!(out.events.len(), 1, "{kind} event record");
        }
    }
}
