//! Oscillation avoidance (§6.3).

use msn_geom::Point;

/// The oscillation-avoidance techniques evaluated in Figure 12.
///
/// Both cancel a planned step when it looks like an unproductive
/// perturbation; δ (the *oscillation avoidance factor*) sets the
/// threshold `V·T/δ` — smaller δ cancels more aggressively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OscillationAvoidance {
    /// No filtering (CPVF's default).
    Off,
    /// Cancel steps shorter than `V·T/δ`.
    OneStep {
        /// The oscillation avoidance factor δ.
        delta: f64,
    },
    /// Cancel a step whose endpoint lies within `V·T/δ` of the
    /// sensor's position at the end of the *previous* step (detects
    /// back-and-forth motion).
    TwoStep {
        /// The oscillation avoidance factor δ.
        delta: f64,
    },
}

impl OscillationAvoidance {
    /// Applies the filter: returns the (possibly zeroed) step size.
    ///
    /// `pos` is the current position, `planned_step` the chosen step
    /// size along `dir`, `max_step` is `V·T`, and `prev_end` the
    /// position at the end of the previous period (for
    /// [`OscillationAvoidance::TwoStep`]).
    pub fn filter(
        self,
        pos: Point,
        dir: Point,
        planned_step: f64,
        max_step: f64,
        prev_end: Option<Point>,
    ) -> f64 {
        match self {
            OscillationAvoidance::Off => planned_step,
            OscillationAvoidance::OneStep { delta } => {
                if planned_step < max_step / delta {
                    0.0
                } else {
                    planned_step
                }
            }
            OscillationAvoidance::TwoStep { delta } => {
                let end = pos + dir * planned_step;
                match prev_end {
                    Some(prev) if end.dist(prev) < max_step / delta => 0.0,
                    _ => planned_step,
                }
            }
        }
    }
}

impl std::fmt::Display for OscillationAvoidance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OscillationAvoidance::Off => write!(f, "off"),
            OscillationAvoidance::OneStep { delta } => write!(f, "one-step(δ={delta})"),
            OscillationAvoidance::TwoStep { delta } => write!(f, "two-step(δ={delta})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIR: Point = Point { x: 1.0, y: 0.0 };

    #[test]
    fn off_passes_through() {
        let s = OscillationAvoidance::Off.filter(Point::ORIGIN, DIR, 0.01, 2.0, None);
        assert_eq!(s, 0.01);
    }

    #[test]
    fn one_step_cancels_small_steps() {
        let osc = OscillationAvoidance::OneStep { delta: 4.0 }; // threshold 0.5
        assert_eq!(osc.filter(Point::ORIGIN, DIR, 0.4, 2.0, None), 0.0);
        assert_eq!(osc.filter(Point::ORIGIN, DIR, 0.6, 2.0, None), 0.6);
    }

    #[test]
    fn two_step_cancels_returns_to_previous_spot() {
        let osc = OscillationAvoidance::TwoStep { delta: 4.0 }; // threshold 0.5
        let pos = Point::new(10.0, 0.0);
        // previous period ended at x=10.3; planned end is x=10.2: within 0.5
        let s = osc.filter(pos, DIR, 0.2, 2.0, Some(Point::new(10.3, 0.0)));
        assert_eq!(s, 0.0);
        // previous end far away: passes
        let s2 = osc.filter(pos, DIR, 0.2, 2.0, Some(Point::new(20.0, 0.0)));
        assert_eq!(s2, 0.2);
        // no history: passes
        assert_eq!(osc.filter(pos, DIR, 0.2, 2.0, None), 0.2);
    }

    #[test]
    fn smaller_delta_cancels_more() {
        let strict = OscillationAvoidance::OneStep { delta: 1.0 }; // threshold = VT
        assert_eq!(strict.filter(Point::ORIGIN, DIR, 1.9, 2.0, None), 0.0);
        let lax = OscillationAvoidance::OneStep { delta: 16.0 };
        assert_eq!(lax.filter(Point::ORIGIN, DIR, 1.9, 2.0, None), 1.9);
    }
}
