//! The Connectivity-Preserved Virtual Force scheme (§4).
//!
//! CPVF runs in two phases:
//!
//! 1. **Achieving connectivity (§4.1).** Sensors that the base
//!    station's flood reaches are *connected*; the rest walk toward the
//!    base with BUG2 (right-hand rule) under the lazy-movement strategy
//!    of §3.3, freezing as soon as they enter the communication range
//!    of a connected sensor.
//! 2. **Maximizing coverage (§4.2).** Connected sensors move under
//!    virtual forces. The force fixes only the direction; the step
//!    size is the largest candidate in `{1.0, 0.9, …, 0.1, 0}·V·T`
//!    satisfying the two *connectivity-preserving conditions* against
//!    the parent and every child, so the tree rooted at the base
//!    station never partitions (proved in the paper's Appendix A and
//!    property-tested in `msn-geom`). A sensor that cannot move under
//!    its current parent may switch parents via the subtree-locking
//!    protocol.
//!
//! The §6.3 oscillation-avoidance variants are available through
//! [`CpvfParams::oscillation`].

mod force;
mod osc;

pub use force::{virtual_force, ForceParams};
pub use osc::OscillationAvoidance;

use crate::lazy::{lazy_plan_step, ConnectOutcome, LazyMover, Route};
use msn_field::Field;
use msn_geom::{Point, Segment, Vec2};
use msn_nav::{Hand, NavContext, Navigator};
use msn_net::{within_range, MsgKind, Parent, Tree};
use msn_sim::{RunResult, SimConfig, World};
use rand::Rng;

/// Tuning parameters of CPVF.
#[derive(Debug, Clone, PartialEq)]
pub struct CpvfParams {
    /// Virtual-force constants; `None` derives them from the
    /// configured ranges via [`ForceParams::for_ranges`].
    pub force: Option<ForceParams>,
    /// Oscillation-avoidance technique (§6.3); default off.
    pub oscillation: OscillationAvoidance,
    /// Upper bound of the random start delay for disconnected sensors
    /// (s), §4.1's "small random time period".
    pub backoff_max: f64,
    /// Allow parent switching when a sensor cannot move (§4.2).
    pub allow_parent_change: bool,
    /// Coverage-timeline sampling interval (s).
    pub snapshot_every: f64,
}

impl Default for CpvfParams {
    fn default() -> Self {
        CpvfParams {
            force: None,
            oscillation: OscillationAvoidance::Off,
            backoff_max: 10.0,
            allow_parent_change: true,
            snapshot_every: 25.0,
        }
    }
}

/// Which endpoint a maintained link connects to.
#[derive(Debug, Clone, Copy)]
enum Link {
    Base,
    Node(usize),
}

/// Per-sensor motion plan for the current period.
#[derive(Debug, Clone, Copy)]
struct Motion {
    vel: Vec2,
    planned_end: Point,
}

impl Motion {
    fn still(pos: Point) -> Self {
        Motion {
            vel: Vec2::ORIGIN,
            planned_end: pos,
        }
    }
}

/// Runs CPVF and reports the standard metrics.
///
/// `initial` gives the sensors' starting positions inside `field`.
///
/// # Examples
///
/// See the [crate-level quickstart](crate).
pub fn run(field: &Field, initial: &[Point], params: &CpvfParams, cfg: &SimConfig) -> RunResult {
    run_with_grid(field, initial, params, cfg, None)
}

/// Runs CPVF reusing a pre-rasterized coverage grid.
///
/// `grid` must have been built for `field` at `cfg.coverage_cell`
/// (the batch runner caches one per fixed field layout); `None`
/// rasterizes a fresh grid.
pub fn run_with_grid(
    field: &Field,
    initial: &[Point],
    params: &CpvfParams,
    cfg: &SimConfig,
    grid: Option<&msn_field::CoverageGrid>,
) -> RunResult {
    let _run = msn_obs::span("cpvf.run");
    let setup = msn_obs::span("cpvf.setup");
    let n = initial.len();
    let mut world = World::new(field.clone(), cfg.clone(), initial.to_vec());
    let force_params = params
        .force
        .clone()
        .unwrap_or_else(|| ForceParams::for_ranges(cfg.rc, cfg.rs));
    // Incremental coverage: timeline samples cost O(moved sensors)
    // instead of a full re-rasterization (identical values; sensors at
    // force equilibrium stop feeding the tracker entirely).
    let cov_grid = match grid {
        Some(g) => g.clone(),
        None => world.coverage_grid(),
    };
    world.track_coverage(cov_grid);
    // No connectivity tracker here: unlike FLOOR, CPVF never asks the
    // base-connectivity question mid-run (the tree invariant carries
    // it), so a tracker would only add an install-time flood to the
    // single end-of-run check below.
    //
    // Incremental proximity: the force loop and the absorption scan
    // answer from one maintained point index instead of rebuilding a
    // SpatialGrid every tick — byte-identical results, order included
    // (the force summation order is preserved).
    world.track_points();
    let max_step = cfg.max_step();

    // ---- Phase 1 setup: initial flood and tree construction. ----
    let mut tree = Tree::new(n);
    let mut connected = vec![false; n];
    attach_initial_flood(&mut world, &mut tree, &mut connected);

    // One shared BUG2 context: every disconnected sensor's navigator
    // probes obstacles through the same offset rings + edge grid.
    let nav_ctx = std::sync::Arc::new(NavContext::new(field));
    let mut movers: Vec<Option<LazyMover>> = (0..n)
        .map(|i| {
            if connected[i] {
                None
            } else {
                let backoff = world.rng().gen_range(0.0..params.backoff_max.max(1e-9));
                Some(LazyMover::new(
                    Route::Single(Navigator::with_context(
                        nav_ctx.clone(),
                        initial[i],
                        cfg.base,
                        Hand::Right,
                    )),
                    backoff,
                ))
            }
        })
        .collect();
    let mut walk_active = vec![false; n];
    let mut motions: Vec<Motion> = initial.iter().map(|&p| Motion::still(p)).collect();
    // Position at the *previous* plan tick, for two-step oscillation
    // avoidance (the end of the step before the one just finished).
    let mut prev_plan_pos: Vec<Option<Point>> = vec![None; n];

    let snap_ticks = (params.snapshot_every / cfg.dt()).round().max(1.0) as u64;
    let mut timeline = vec![(0.0, world.coverage_tracked())];
    drop(setup);

    for _ in 0..cfg.total_ticks() {
        // ---- Decisions at period boundaries. ----
        let plan = msn_obs::span("cpvf.plan");
        for i in 0..n {
            if !world.is_plan_tick(i) {
                continue;
            }
            if connected[i] {
                plan_virtual_force(
                    i,
                    &mut world,
                    &mut tree,
                    &force_params,
                    params,
                    &mut motions,
                    &mut prev_plan_pos,
                    max_step,
                )
            } else if movers[i].as_ref().is_some_and(|m| !m.route.is_stuck()) {
                let outcome = lazy_plan_step(i, &mut world, &mut movers);
                walk_active[i] = outcome == ConnectOutcome::Move;
            } else {
                walk_active[i] = false;
            }
        }

        drop(plan);

        // ---- Motion integration over one micro-tick. ----
        let motion = msn_obs::span("cpvf.motion");
        let dt = cfg.dt();
        for i in 0..n {
            if connected[i] {
                let m = motions[i];
                if m.vel.norm() <= 1e-12 {
                    continue;
                }
                let from = world.pos(i);
                let mut to = from + m.vel * dt;
                // Never step past the planned endpoint.
                if from.dist(to) > from.dist(m.planned_end) {
                    to = m.planned_end;
                }
                let seg = Segment::new(from, to);
                if let Some((t, _)) = world.field().first_hit(&seg) {
                    // Ran into a wall mid-period: stop against it.
                    let stop = seg.at((t - 0.05).max(0.0));
                    world.set_pos(i, stop);
                    motions[i] = Motion::still(stop);
                } else {
                    world.set_pos(i, to);
                }
            } else if walk_active[i] {
                if let Some(m) = movers[i].as_mut() {
                    let before = m.route.traveled();
                    let p = m.route.advance(cfg.speed * dt);
                    let walked = m.route.traveled() - before;
                    world.set_pos_with_distance(i, p, walked);
                }
            }
        }

        drop(motion);

        // ---- Freeze walkers that came into range of the tree. ----
        // The margin keeps the fresh link alive through the parent's
        // residual motion in its current period (it can move at most
        // V·T before it re-plans with the new child in its link set).
        {
            let _absorb = msn_obs::span("cpvf.absorb");
            absorb_new_connections(
                &mut world,
                &mut tree,
                &mut connected,
                &mut movers,
                &mut motions,
                cfg.rc - cfg.max_step(),
            );
        }

        world.advance_tick();
        if world.tick().is_multiple_of(snap_ticks) {
            let _snapshot = msn_obs::span("cpvf.snapshot");
            timeline.push((world.time(), world.coverage_tracked()));
        }
        // Invariant check (always on in debug builds, opt-in via the
        // MSN_CHECK_LINKS env var in release): every tree link must
        // stay within communication range at all times — the paper's
        // connectivity guarantee.
        if cfg!(debug_assertions) || std::env::var_os("MSN_CHECK_LINKS").is_some() {
            for i in 0..n {
                let limit = cfg.rc + 1e-6;
                match tree.parent(i) {
                    Parent::Base => {
                        let d = world.pos(i).dist(cfg.base);
                        assert!(
                            d <= limit,
                            "t={}: base link of #{i} at {d:.3}",
                            world.time()
                        );
                    }
                    Parent::Node(p) => {
                        let d = world.pos(i).dist(world.pos(p));
                        assert!(d <= limit, "t={}: link {i}->{p} at {d:.3}", world.time());
                    }
                    Parent::None => {}
                }
            }
        }
    }

    let _finish = msn_obs::span("cpvf.finish");
    let coverage = world.coverage_tracked();
    let all_connected =
        world
            .graph()
            .all_connected_to_base(&world.positions().to_vec(), cfg.base, cfg.rc);
    let moved: Vec<f64> = (0..n).map(|i| world.moved(i)).collect();
    let msgs = world.msgs_ref().clone();
    let positions = world.positions().to_vec();
    RunResult::from_run(
        "CPVF",
        coverage,
        &moved,
        msgs,
        all_connected,
        timeline,
        positions,
    )
    .with_movement(world.move_count(), world.move_dist())
}

/// Floods from the base station at t = 0 and attaches all reached
/// sensors to the tree along BFS predecessor edges (§4.1).
#[allow(clippy::needless_range_loop)] // indexing several parallel arrays
fn attach_initial_flood(world: &mut World, tree: &mut Tree, connected: &mut [bool]) {
    let cfg_rc = world.cfg().rc;
    let base = world.cfg().base;
    let graph = world.graph();
    let mut queue = std::collections::VecDeque::new();
    for i in 0..world.n() {
        if world.pos(i).dist(base) <= cfg_rc {
            connected[i] = true;
            tree.attach(i, Parent::Base);
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in graph.neighbors(u) {
            if !connected[v] {
                connected[v] = true;
                tree.attach(v, Parent::Node(u));
                queue.push_back(v);
            }
        }
    }
    // Each connected sensor forwards the flood message exactly once.
    let count = connected.iter().filter(|&&c| c).count() as u64;
    world.msgs().record(MsgKind::ConnectFlood, count);
}

/// Marks walking sensors that entered communication range of the tree
/// (or the base itself) as connected, chaining until a fixed point.
fn absorb_new_connections(
    world: &mut World,
    tree: &mut Tree,
    connected: &mut [bool],
    movers: &mut [Option<LazyMover>],
    motions: &mut [Motion],
    stop_dist: f64,
) {
    let n = world.n();
    let base = world.cfg().base;
    loop {
        let mut newly: Vec<(usize, Parent)> = Vec::new();
        for i in 0..n {
            if connected[i] {
                continue;
            }
            if world.pos(i).dist(base) <= stop_dist {
                newly.push((i, Parent::Base));
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            // Grid-ordered query: the historical per-round grid used a
            // stop-distance cell, and the first-minimum fold below
            // tie-breaks on scan order.
            for j in world.neighbors_tracked_grid_order(i, stop_dist, stop_dist.max(1.0)) {
                if connected[j] {
                    let d = world.pos(i).dist(world.pos(j));
                    if best.is_none_or(|(_, bd)| d < bd) {
                        best = Some((j, d));
                    }
                }
            }
            if let Some((j, _)) = best {
                newly.push((i, Parent::Node(j)));
            }
        }
        if newly.is_empty() {
            break;
        }
        for (i, parent) in newly {
            if connected[i] {
                continue;
            }
            connected[i] = true;
            tree.attach(i, parent);
            movers[i] = None;
            motions[i] = Motion::still(world.pos(i));
            // The newly connected sensor announces itself (one flood
            // forward, §4.1).
            world.msgs().record(MsgKind::ConnectFlood, 1);
        }
    }
}

/// One §4.2 planning step: force direction, validated step size,
/// oscillation filter, and (if pinned) a parent-change attempt.
#[allow(clippy::too_many_arguments)]
fn plan_virtual_force(
    i: usize,
    world: &mut World,
    tree: &mut Tree,
    force_params: &ForceParams,
    params: &CpvfParams,
    motions: &mut [Motion],
    prev_plan_pos: &mut [Option<Point>],
    max_step: f64,
) {
    let pos = world.pos(i);
    // Tracked query at the index's own rc cell: same order the
    // per-tick grid produced, so the force summation below sees its
    // neighbors in the identical sequence (f64 addition is not
    // associative — order is part of the output).
    let neighbor_positions: Vec<Point> = world
        .neighbors_tracked(i, force_params.neighbor_threshold.min(world.cfg().rc))
        .into_iter()
        .map(|j| world.pos(j))
        .collect();
    let f = virtual_force(pos, neighbor_positions, world.field(), force_params);
    let prev = prev_plan_pos[i];
    prev_plan_pos[i] = Some(pos);
    if f.norm() < force_params.min_force {
        motions[i] = Motion::still(pos);
        return;
    }
    let dir = f.normalized().expect("norm checked above");

    let links = maintained_links(tree, i);
    // Obtaining each neighbor's direction/speed/period end costs a
    // round trip (§4.2).
    let probes = links.iter().filter(|l| matches!(l, Link::Node(_))).count() as u64;
    world.msgs().record(MsgKind::MotionProbe, 2 * probes);

    let chosen = max_valid_step(i, pos, dir, &links, world, motions, max_step);
    let filtered = params.oscillation.filter(pos, dir, chosen, max_step, prev);

    if filtered > 1e-9 {
        motions[i] = Motion {
            vel: dir * (filtered / world.cfg().period),
            planned_end: pos + dir * filtered,
        };
        return;
    }
    motions[i] = Motion::still(pos);
    // Pinned by the current parent and genuinely pushed: try to switch
    // parents (allowed only when the sensor cannot move, §4.2).
    if chosen <= 1e-9 && params.allow_parent_change {
        try_parent_change(i, pos, dir, tree, world, motions, max_step);
    }
}

/// The links sensor `i` must keep alive: its parent and all children.
fn maintained_links(tree: &Tree, i: usize) -> Vec<Link> {
    let mut links = Vec::with_capacity(1 + tree.children(i).len());
    match tree.parent(i) {
        Parent::Base => links.push(Link::Base),
        Parent::Node(p) => links.push(Link::Node(p)),
        Parent::None => {}
    }
    for &c in tree.children(i) {
        links.push(Link::Node(c));
    }
    links
}

/// Largest step in `{1.0, …, 0.1, 0}·V·T` whose straight move keeps
/// every link alive under the two connectivity-preserving conditions
/// and does not run through an obstacle.
fn max_valid_step(
    i: usize,
    pos: Point,
    dir: Vec2,
    links: &[Link],
    world: &World,
    motions: &[Motion],
    max_step: f64,
) -> f64 {
    let cfg = world.cfg();
    let now = world.time();
    let my_period_end = world.period_end(i);
    for k in (1..=10u32).rev() {
        let step = max_step * k as f64 / 10.0;
        let end = pos + dir * step;
        if !world.field().segment_free(&Segment::new(pos, end)) {
            continue;
        }
        let my_vel = dir * (step / cfg.period);
        let ok = links.iter().all(|link| {
            // The partner may follow its announced plan — or stop at any
            // point of it (equilibrium, wall contact, or a same-phase
            // re-plan that chooses not to move). Its possible positions
            // at t′ span the segment between "full plan" and "stopped
            // now"; by convexity it suffices to check both extremes.
            let (other_candidates, t_prime): ([Point; 2], f64) = match link {
                Link::Base => ([cfg.base, cfg.base], my_period_end),
                Link::Node(j) => {
                    let tp = world.period_end(*j);
                    let here = world.pos(*j);
                    ([here + motions[*j].vel * (tp - now), here], tp)
                }
            };
            let me_at_tp = pos + my_vel * (t_prime - now).max(0.0).min(cfg.period);
            other_candidates.iter().all(|other_at_tp| {
                // Condition 1: within rc at the neighbor's period end.
                within_range(me_at_tp, *other_at_tp, cfg.rc)
                    // Condition 2: the neighbor's position at t′ is
                    // within rc of my own period end.
                    && within_range(*other_at_tp, end, cfg.rc)
            })
        });
        if ok {
            return step;
        }
    }
    0.0
}

/// Attempts to adopt a new parent that would let the sensor move in
/// its force direction, paying the `LockTree`/`UnLockTree` cost.
fn try_parent_change(
    i: usize,
    pos: Point,
    dir: Vec2,
    tree: &mut Tree,
    world: &mut World,
    motions: &mut [Motion],
    max_step: f64,
) {
    let cfg_rc = world.cfg().rc;
    let current = match tree.parent(i) {
        Parent::Node(p) => Some(p),
        _ => return, // directly under the base: nothing to gain
    };
    // Candidate parents: connected neighbors that do not create loops.
    // The margin below rc absorbs the candidate's residual motion in
    // its current period (it only learns of its new child when it next
    // plans).
    let reach = cfg_rc - world.cfg().max_step();
    let mut best: Option<(usize, f64)> = None;
    for j in world.neighbors_tracked(i, reach) {
        if Some(j) == current || !tree.in_tree(j) || tree.would_create_loop(i, j) {
            continue;
        }
        // Hypothetical link set with j as parent.
        let mut links = vec![Link::Node(j)];
        for &c in tree.children(i) {
            links.push(Link::Node(c));
        }
        let step = max_valid_step(i, pos, dir, &links, world, motions, max_step);
        if step > 1e-9 && best.is_none_or(|(_, bs)| step > bs) {
            best = Some((j, step));
        }
    }
    let Some((j, _)) = best else {
        return;
    };
    // Lock the subtree, switch, unlock (§4.2). In this serialized
    // simulation the lock always succeeds; the message cost remains.
    let scope = tree.subtree(i).len() as u64;
    world.msgs().record(MsgKind::LockTree, scope);
    world.msgs().record(MsgKind::UnlockTree, scope);
    tree.reparent(i, Parent::Node(j));
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_field::{scatter_clustered, two_obstacle_field};
    use msn_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_cfg(rc: f64, rs: f64) -> SimConfig {
        SimConfig::paper(rc, rs)
            .with_duration(40.0)
            .with_coverage_cell(10.0)
    }

    fn clustered(field: &Field, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        scatter_clustered(field, Rect::new(0.0, 0.0, 120.0, 120.0), n, &mut rng)
    }

    #[test]
    fn run_connects_everyone_in_small_field() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 20, 7);
        let r = run(
            &field,
            &initial,
            &CpvfParams::default(),
            &small_cfg(50.0, 30.0),
        );
        assert!(r.connected, "CPVF must end fully connected");
        assert!(r.coverage > 0.05);
        assert_eq!(r.positions.len(), 20);
    }

    #[test]
    fn coverage_improves_over_time() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 25, 3);
        let r = run(
            &field,
            &initial,
            &CpvfParams::default(),
            &small_cfg(60.0, 40.0),
        );
        let first = r.coverage_timeline.first().expect("timeline").1;
        assert!(
            r.coverage >= first - 0.02,
            "coverage should not collapse: {first} -> {}",
            r.coverage
        );
        assert!(r.messages.total() > 0, "protocol must exchange messages");
    }

    #[test]
    fn isolated_sensor_walks_to_base_and_connects() {
        let field = Field::open(300.0, 300.0);
        // One sensor near the base, one far away and disconnected.
        let initial = vec![Point::new(10.0, 10.0), Point::new(250.0, 250.0)];
        let cfg = SimConfig::paper(40.0, 30.0)
            .with_duration(200.0)
            .with_coverage_cell(10.0);
        let r = run(&field, &initial, &CpvfParams::default(), &cfg);
        assert!(r.connected, "the walker must reach the tree");
        assert!(r.avg_move > 10.0, "the far sensor had to travel");
    }

    #[test]
    fn obstacles_do_not_break_connectivity() {
        let field = two_obstacle_field();
        let mut rng = SmallRng::seed_from_u64(11);
        let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 400.0, 400.0), 30, &mut rng);
        // Stragglers behind the walls walk 100+ m at 2 m/s: give them time.
        let cfg = SimConfig::paper(60.0, 40.0)
            .with_duration(200.0)
            .with_coverage_cell(10.0);
        let r = run(&field, &initial, &CpvfParams::default(), &cfg);
        assert!(r.connected);
    }

    #[test]
    fn oscillation_avoidance_reduces_movement() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 25, 9);
        let cfg = small_cfg(60.0, 40.0);
        let free = run(&field, &initial, &CpvfParams::default(), &cfg);
        let damped = run(
            &field,
            &initial,
            &CpvfParams {
                oscillation: OscillationAvoidance::OneStep { delta: 2.0 },
                ..CpvfParams::default()
            },
            &cfg,
        );
        assert!(
            damped.avg_move <= free.avg_move + 1e-9,
            "damped {} vs free {}",
            damped.avg_move,
            free.avg_move
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 15, 5);
        let cfg = small_cfg(50.0, 30.0);
        let a = run(&field, &initial, &CpvfParams::default(), &cfg);
        let b = run(&field, &initial, &CpvfParams::default(), &cfg);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.avg_move, b.avg_move);
        assert_eq!(a.messages.total(), b.messages.total());
    }
}
