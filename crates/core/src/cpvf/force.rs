//! Virtual-force computation (§4.2).
//!
//! As in Zou & Chakrabarty and Howard et al., neighbors and obstacles
//! exert repulsive forces; the resulting vector fixes only the
//! *direction* of the next step — CPVF chooses the step *size*
//! separately under the connectivity-preserving conditions.

use msn_field::Field;
use msn_geom::{Point, Vec2};

/// Tuning constants for the virtual-force field.
///
/// The paper does not publish its gains; these defaults reproduce the
/// qualitative behaviour its §4.3 reports (even spreading at large
/// `rc`, clustering at small `rc`, blockage at obstacles). See
/// DESIGN.md for the calibration note.
#[derive(Debug, Clone, PartialEq)]
pub struct ForceParams {
    /// Neighbor repulsion threshold (m): sensors closer than this repel.
    /// CPVF uses `min(rc, 2·rs)` — the largest spacing that can neither
    /// break a link nor waste sensing overlap.
    pub neighbor_threshold: f64,
    /// Gain of neighbor repulsion.
    pub neighbor_gain: f64,
    /// Obstacles repel within this distance (m); typically `rs`.
    pub obstacle_range: f64,
    /// Gain of obstacle repulsion.
    pub obstacle_gain: f64,
    /// Field-boundary repulsion range (m).
    pub boundary_range: f64,
    /// Gain of boundary repulsion.
    pub boundary_gain: f64,
    /// Forces below this magnitude are treated as equilibrium.
    pub min_force: f64,
}

impl ForceParams {
    /// Defaults for given ranges, matching §4.2's design intent.
    pub fn for_ranges(rc: f64, rs: f64) -> Self {
        ForceParams {
            neighbor_threshold: rc.min(2.0 * rs),
            neighbor_gain: 1.0,
            obstacle_range: rs.min(rc),
            obstacle_gain: 1.5,
            boundary_range: (rs * 0.5).max(2.0),
            boundary_gain: 1.5,
            min_force: 0.02,
        }
    }
}

/// Computes the total virtual force on the sensor at `pos`.
///
/// `neighbors` are the positions of sensors within communication range
/// (only those closer than [`ForceParams::neighbor_threshold`]
/// contribute). Returns the (unnormalized) force vector; compare its
/// norm against [`ForceParams::min_force`] before acting.
pub fn virtual_force(
    pos: Point,
    neighbors: impl IntoIterator<Item = Point>,
    field: &Field,
    params: &ForceParams,
) -> Vec2 {
    let mut f = Vec2::ORIGIN;
    // Neighbor repulsion: linear ramp from 1 at contact to 0 at the
    // threshold.
    let d_th = params.neighbor_threshold;
    for q in neighbors {
        let delta = pos - q;
        let d = delta.norm();
        if d >= d_th {
            continue;
        }
        let dir = if d <= 1e-9 {
            // Coincident sensors: deterministic tie-break by pushing
            // along +x (callers with RNG jitter positions elsewhere).
            Point::new(1.0, 0.0)
        } else {
            delta / d
        };
        f += dir * (params.neighbor_gain * (d_th - d) / d_th);
    }
    // Obstacle repulsion from the nearest boundary point of each
    // obstacle within range.
    for obstacle in field.obstacles() {
        let bp = obstacle.closest_boundary_point(pos);
        let delta = pos - bp;
        let d = delta.norm();
        if d >= params.obstacle_range || d <= 1e-9 {
            continue;
        }
        f += (delta / d)
            * (params.obstacle_gain * (params.obstacle_range - d) / params.obstacle_range);
    }
    // Boundary repulsion keeps sensors inside the field.
    let b = field.bounds();
    let r = params.boundary_range;
    let g = params.boundary_gain;
    if pos.x - b.min.x < r {
        f += Point::new(g * (r - (pos.x - b.min.x)) / r, 0.0);
    }
    if b.max.x - pos.x < r {
        f += Point::new(-g * (r - (b.max.x - pos.x)) / r, 0.0);
    }
    if pos.y - b.min.y < r {
        f += Point::new(0.0, g * (r - (pos.y - b.min.y)) / r);
    }
    if b.max.y - pos.y < r {
        f += Point::new(0.0, -g * (r - (b.max.y - pos.y)) / r);
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn open_field() -> Field {
        Field::open(1000.0, 1000.0)
    }

    fn params() -> ForceParams {
        ForceParams::for_ranges(60.0, 40.0)
    }

    #[test]
    fn default_threshold_is_min_rc_2rs() {
        assert_eq!(ForceParams::for_ranges(60.0, 40.0).neighbor_threshold, 60.0);
        assert_eq!(ForceParams::for_ranges(30.0, 40.0).neighbor_threshold, 30.0);
        assert_eq!(ForceParams::for_ranges(60.0, 20.0).neighbor_threshold, 40.0);
    }

    #[test]
    fn close_neighbor_pushes_away() {
        let pos = Point::new(500.0, 500.0);
        let f = virtual_force(pos, [Point::new(490.0, 500.0)], &open_field(), &params());
        assert!(f.x > 0.0, "pushed away from the neighbor on the left");
        assert!(f.y.abs() < 1e-9);
    }

    #[test]
    fn far_neighbor_exerts_nothing() {
        let pos = Point::new(500.0, 500.0);
        let f = virtual_force(pos, [Point::new(400.0, 500.0)], &open_field(), &params());
        assert_eq!(f, Point::ORIGIN);
    }

    #[test]
    fn closer_neighbors_push_harder() {
        let pos = Point::new(500.0, 500.0);
        let near = virtual_force(pos, [Point::new(495.0, 500.0)], &open_field(), &params());
        let far = virtual_force(pos, [Point::new(450.0, 500.0)], &open_field(), &params());
        assert!(near.norm() > far.norm());
    }

    #[test]
    fn symmetric_neighbors_cancel() {
        let pos = Point::new(500.0, 500.0);
        let f = virtual_force(
            pos,
            [Point::new(480.0, 500.0), Point::new(520.0, 500.0)],
            &open_field(),
            &params(),
        );
        assert!(f.norm() < 1e-9);
    }

    #[test]
    fn obstacle_repels_within_sensing_range() {
        let field = Field::with_obstacles(
            1000.0,
            1000.0,
            vec![Rect::new(520.0, 400.0, 600.0, 600.0).to_polygon()],
        );
        let pos = Point::new(500.0, 500.0); // 20 m from the wall, rs = 40
        let f = virtual_force(pos, [], &field, &params());
        assert!(f.x < 0.0, "pushed away from the wall on the right");
    }

    #[test]
    fn boundary_pushes_inward() {
        let pos = Point::new(3.0, 500.0); // boundary range is 20 m
        let f = virtual_force(pos, [], &open_field(), &params());
        assert!(f.x > 0.0);
        assert!(f.y.abs() < 1e-9);
        let corner = virtual_force(Point::new(3.0, 3.0), [], &open_field(), &params());
        assert!(corner.x > 0.0 && corner.y > 0.0);
    }

    #[test]
    fn coincident_sensors_still_separate() {
        let pos = Point::new(500.0, 500.0);
        let f = virtual_force(pos, [pos], &open_field(), &params());
        assert!(f.norm() > 0.5, "coincident sensors must repel");
    }
}
