//! The Voronoi-based VOR and Minimax baselines (§6.1.2).
//!
//! Both schemes (Wang et al., INFOCOM'04) move sensors in rounds
//! according to their Voronoi cells. Crucially, a sensor can only
//! construct its cell from the neighbors it *hears* — those within
//! `rc` — so with a small `rc/rs` the cells are wrong (Figure 1) and
//! the movement targets are bogus; the run is then annotated
//! `Incorrect VD`. Neither scheme considers connectivity, so the final
//! network may be partitioned (`Disconn.`), exactly as Figure 10
//! reports.
//!
//! For the clustered initial distribution the paper first "explodes"
//! the cluster into a uniform random layout, charging the *minimum
//! possible* total moving distance via Hungarian matching (§6.2); this
//! runner does the same.

use msn_assign::{hungarian, CostMatrix};
use msn_field::{scatter_uniform, Field};
use msn_geom::Point;
use msn_net::{DiskGraph, MessageCounter};
use msn_sim::{RunResult, SimConfig};
use msn_voronoi::{cells_match, restricted_cell, VoronoiDiagram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which Voronoi movement rule to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VdVariant {
    /// Move toward the farthest vertex of the own cell, stopping when
    /// the sensing disk would touch it.
    Vor,
    /// Move to the cell's minimax point (center of the minimum
    /// enclosing circle of the cell vertices).
    Minimax,
}

impl VdVariant {
    /// Scheme name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            VdVariant::Vor => "VOR",
            VdVariant::Minimax => "Minimax",
        }
    }
}

/// Tuning parameters for the VD baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct VdParams {
    /// Number of movement rounds after the explosion (paper: 10).
    pub rounds: usize,
    /// VOR's per-round movement cap as a fraction of `rc` (paper: 1/2).
    /// Minimax is uncapped — §6.1 says it "moves to the point that has
    /// the smallest distance to its farthest Voronoi polygon vertex",
    /// which is what makes it so sensitive to incorrect cells.
    pub step_cap_frac: f64,
    /// Run the explosion phase when the initial layout is clustered.
    pub explode: bool,
}

impl Default for VdParams {
    fn default() -> Self {
        VdParams {
            rounds: 10,
            step_cap_frac: 0.5,
            explode: true,
        }
    }
}

/// Runs VOR or Minimax and reports the standard metrics.
///
/// The returned [`RunResult`] carries the `Disconn.` /
/// `Incorrect VD` flags of Figure 10 when they apply. Message
/// accounting is not modeled (the paper does not report it for these
/// baselines).
///
/// # Examples
///
/// ```
/// use msn_deploy::vd::{run, VdParams, VdVariant};
/// use msn_field::{paper_field, scatter_uniform};
/// use msn_sim::SimConfig;
/// use rand::SeedableRng;
///
/// let field = paper_field();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let initial = scatter_uniform(&field, 50, &mut rng);
/// let cfg = SimConfig::paper(240.0, 60.0).with_coverage_cell(10.0);
/// let r = run(&field, &initial, VdVariant::Vor, &VdParams { explode: false, ..VdParams::default() }, &cfg);
/// assert!(r.coverage > 0.3);
/// ```
pub fn run(
    field: &Field,
    initial: &[Point],
    variant: VdVariant,
    params: &VdParams,
    cfg: &SimConfig,
) -> RunResult {
    run_with_grid(field, initial, variant, params, cfg, None)
}

/// Runs VOR or Minimax reusing a pre-rasterized coverage grid.
///
/// `grid` must have been built for `field` at `cfg.coverage_cell`
/// (the batch runner caches one per fixed field layout); `None`
/// rasterizes a fresh grid.
pub fn run_with_grid(
    field: &Field,
    initial: &[Point],
    variant: VdVariant,
    params: &VdParams,
    cfg: &SimConfig,
    grid: Option<&msn_field::CoverageGrid>,
) -> RunResult {
    let n = initial.len();
    assert!(n > 0, "at least one sensor required");
    let bounds = field.bounds();
    let cov_grid = match grid {
        Some(g) => g.clone(),
        None => msn_field::CoverageGrid::new(field, cfg.coverage_cell),
    };
    let mut positions = initial.to_vec();
    let mut moved = vec![0.0f64; n];
    // Per-round position updates with nonzero travel (`world.moves`
    // equivalent for this World-less baseline).
    let mut move_ops: u64 = 0;
    let mut timeline = Vec::new();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // ---- Explosion: minimum-cost dispersion to a uniform layout. ----
    if params.explode {
        let targets = scatter_uniform(field, n, &mut rng);
        let costs = CostMatrix::euclidean(&positions, &targets);
        let sol = hungarian(&costs);
        for (i, &t) in sol.assignment.iter().enumerate() {
            moved[i] += positions[i].dist(targets[t]);
            positions[i] = targets[t];
        }
    }
    // One scratch covered-mask reused across all timeline samples
    // (identical values; saves a mask allocation per round).
    let mut cov_scratch = Vec::new();
    timeline.push((
        0.0,
        cov_grid.coverage_into(&positions, cfg.rs, &mut cov_scratch),
    ));

    // ---- VD rounds on communication-restricted cells. ----
    let mut incorrect_vd = false;
    let cap = cfg.rc * params.step_cap_frac;
    for round in 0..params.rounds {
        let graph = DiskGraph::build(&positions, cfg.rc);
        let full = VoronoiDiagram::compute(&positions, bounds);
        let mut targets: Vec<Option<Point>> = vec![None; n];
        for i in 0..n {
            let cell = restricted_cell(i, &positions, graph.neighbors(i), bounds);
            if !cells_match(&cell, full.cell(i), 1e-3) {
                incorrect_vd = true;
            }
            let Some(farthest) = cell.farthest_vertex() else {
                continue;
            };
            let target = match variant {
                VdVariant::Vor => {
                    // Move toward the farthest vertex until the sensing
                    // disk touches it; already-covered vertices need no
                    // move.
                    let d = positions[i].dist(farthest);
                    if d <= cfg.rs {
                        continue;
                    }
                    positions[i].step_toward(farthest, d - cfg.rs)
                }
                VdVariant::Minimax => match cell.minimax_point() {
                    Some(mp) => mp,
                    None => continue,
                },
            };
            targets[i] = Some(target);
        }
        // All sensors move simultaneously; VOR's moves are capped per
        // round, Minimax jumps to its target.
        for i in 0..n {
            if let Some(t) = targets[i] {
                let step = match variant {
                    VdVariant::Vor => positions[i].dist(t).min(cap),
                    VdVariant::Minimax => positions[i].dist(t),
                };
                let next = positions[i].step_toward(t, step);
                // VD baselines assume an obstacle-free field; clamp into
                // bounds to stay well-defined if misused.
                let next = bounds.clamp_point(next);
                let step_dist = positions[i].dist(next);
                if step_dist > 0.0 {
                    move_ops += 1;
                }
                moved[i] += step_dist;
                positions[i] = next;
            }
        }
        timeline.push((
            (round + 1) as f64,
            cov_grid.coverage_into(&positions, cfg.rs, &mut cov_scratch),
        ));
    }

    let coverage = cov_grid.coverage_into(&positions, cfg.rs, &mut cov_scratch);
    let graph = DiskGraph::build(&positions, cfg.rc);
    let connected = graph.all_connected_to_base(&positions, cfg.base, cfg.rc);
    let mut result = RunResult::from_run(
        variant.name(),
        coverage,
        &moved,
        MessageCounter::new(),
        connected,
        timeline,
        positions,
    )
    .with_movement(move_ops, moved.iter().sum());
    if !connected {
        result = result.with_flag("Disconn.");
    }
    if incorrect_vd {
        result = result.with_flag("Incorrect VD");
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_field::{paper_field, scatter_clustered};
    use msn_geom::Rect;

    fn clustered(n: usize, seed: u64) -> Vec<Point> {
        let field = paper_field();
        let mut rng = SmallRng::seed_from_u64(seed);
        scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), n, &mut rng)
    }

    fn cfg(rc: f64, rs: f64) -> SimConfig {
        SimConfig::paper(rc, rs).with_coverage_cell(10.0)
    }

    #[test]
    fn large_rc_yields_good_coverage() {
        let field = paper_field();
        let initial = clustered(120, 1);
        // rc/rs = 4: ample communication for useful cells.
        let r = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams::default(),
            &cfg(240.0, 60.0),
        );
        assert!(r.coverage > 0.6, "coverage {}", r.coverage);
    }

    #[test]
    fn grid_layout_with_large_rc_has_correct_vd() {
        // A 100 m grid: all Voronoi neighbors are at most 200 m away,
        // within rc = 240, so every restricted cell equals the true
        // cell.
        let field = paper_field();
        let mut initial = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                initial.push(Point::new(50.0 + 100.0 * i as f64, 50.0 + 100.0 * j as f64));
            }
        }
        let r = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams {
                explode: false,
                ..VdParams::default()
            },
            &cfg(240.0, 60.0),
        );
        assert!(
            !r.flags.iter().any(|f| f == "Incorrect VD"),
            "flags: {:?}",
            r.flags
        );
    }

    #[test]
    fn small_rc_flags_incorrect_vd() {
        let field = paper_field();
        let initial = clustered(120, 2);
        let r = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams::default(),
            &cfg(48.0, 60.0),
        );
        assert!(r.flags.iter().any(|f| f == "Incorrect VD"));
    }

    #[test]
    fn small_rc_usually_disconnects() {
        let field = paper_field();
        let initial = clustered(120, 3);
        let r = run(
            &field,
            &initial,
            VdVariant::Minimax,
            &VdParams::default(),
            &cfg(48.0, 60.0),
        );
        assert!(
            r.flags.iter().any(|f| f == "Disconn.") || r.connected,
            "flag must be consistent"
        );
        // uniform random layout over 1 km² with rc=48 and n=120 cannot
        // stay connected to the corner base station
        assert!(!r.connected);
    }

    #[test]
    fn explosion_dominates_moving_distance() {
        let field = paper_field();
        let initial = clustered(80, 4);
        let with = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams::default(),
            &cfg(240.0, 60.0),
        );
        let without = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams {
                explode: false,
                ..VdParams::default()
            },
            &cfg(240.0, 60.0),
        );
        assert!(
            with.avg_move > without.avg_move * 0.8,
            "explosion cost should be substantial: with {} without {}",
            with.avg_move,
            without.avg_move
        );
    }

    #[test]
    fn minimax_differs_from_vor() {
        let field = paper_field();
        let initial = clustered(60, 5);
        let a = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams::default(),
            &cfg(180.0, 60.0),
        );
        let b = run(
            &field,
            &initial,
            VdVariant::Minimax,
            &VdParams::default(),
            &cfg(180.0, 60.0),
        );
        assert_ne!(a.positions, b.positions, "the two rules move differently");
    }

    #[test]
    fn rounds_zero_is_explosion_only() {
        let field = paper_field();
        let initial = clustered(40, 6);
        let r = run(
            &field,
            &initial,
            VdVariant::Vor,
            &VdParams {
                rounds: 0,
                ..VdParams::default()
            },
            &cfg(120.0, 60.0),
        );
        assert_eq!(r.coverage_timeline.len(), 1);
        assert!(r.avg_move > 0.0);
    }
}
