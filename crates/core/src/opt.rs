//! The centralized optimal strip pattern (Bai et al., MobiHoc'06),
//! §6.1.1's OPT baseline.
//!
//! The pattern places sensors in horizontal strips with intra-strip
//! spacing `α = min(rc, √3·rs)` and strip separation
//! `β = rs + √(rs² − α²/4)`, alternate strips offset by `α/2` — the
//! asymptotically optimal density for full coverage *with*
//! connectivity. When `β > rc` the strips themselves are mutually
//! disconnected, so a vertical connector column (spacing ≤ `rc`) joins
//! them to the base station, exactly as Bai et al. prescribe.
//!
//! OPT is centralized and only defined for obstacle-free fields; its
//! moving distance is the Hungarian-matching optimum from the initial
//! layout to the pattern (Figure 11's "optimal pattern" baseline).

use msn_assign::{hungarian, CostMatrix};
use msn_field::{CoverageGrid, Field};
use msn_geom::Point;
use msn_net::{DiskGraph, MessageCounter};
use msn_sim::{RunResult, SimConfig};

/// Tuning parameters for the OPT baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct OptParams {
    /// Safety factor applied to connector spacing (≤ 1 keeps links
    /// strictly within `rc`).
    pub connector_slack: f64,
}

impl Default for OptParams {
    fn default() -> Self {
        OptParams {
            connector_slack: 0.95,
        }
    }
}

/// Generates the first `n` points of the strip pattern for a field,
/// ordered bottom-up (strip by strip, connector nodes interleaved) so
/// that any prefix is a connected, coverage-greedy deployment.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn strip_pattern(field: &Field, rc: f64, rs: f64, n: usize, params: &OptParams) -> Vec<Point> {
    assert!(n > 0, "need at least one sensor");
    let b = field.bounds();
    let alpha = rc.min(3f64.sqrt() * rs);
    let beta = rs + (rs * rs - alpha * alpha / 4.0).max(0.0).sqrt();
    let connector_gap = rc * params.connector_slack;
    let connector_x = alpha / 2.0;

    let mut points = Vec::with_capacity(n + 16);
    let first_row_y = (rs * 0.9).min(beta / 2.0);
    // A vertical connector column is needed when the strips are
    // farther apart than the communication range, or when the first
    // strip itself is out of the base station's reach.
    let base_reach = (connector_x * connector_x + first_row_y * first_row_y).sqrt();
    let column_needed = beta > connector_gap || base_reach > rc;
    // `layer` 0 is the Bai pattern itself; if the caller asks for more
    // sensors than the pattern needs to saturate the field, further
    // layers interleave shifted copies (redundant sensors cost no
    // coverage but keep the Hungarian baseline well-defined).
    let mut layer = 0usize;
    while points.len() < n && layer < 8 {
        let layer_dy = beta * layer as f64 / 2.0;
        let layer_dx = alpha * layer as f64 / 4.0;
        let mut y = first_row_y + layer_dy.rem_euclid(beta);
        let mut row = 0usize;
        // Column points emitted so far (layer 0 only), bottom-up and
        // interleaved with the rows so every prefix stays connected.
        let column_start = (rc * rc - connector_x * connector_x).max(0.0).sqrt() * 0.9;
        let mut next_col_y = column_start.min(connector_gap * 0.75);
        while y <= b.height() && points.len() < 4 * n {
            if layer == 0 && column_needed {
                while next_col_y < y {
                    points.push(Point::new(b.min.x + connector_x, b.min.y + next_col_y));
                    next_col_y += connector_gap;
                }
            }
            // The strip itself.
            let offset = if row.is_multiple_of(2) {
                alpha / 2.0
            } else {
                alpha
            };
            let mut x = (offset + layer_dx).rem_euclid(alpha);
            if x < 1e-9 {
                x = alpha;
            }
            while x <= b.width() {
                points.push(Point::new(b.min.x + x, b.min.y + y));
                x += alpha;
            }
            y += beta;
            row += 1;
        }
        layer += 1;
    }
    assert!(
        points.len() >= n,
        "strip pattern exhausted at {} of {n} points",
        points.len()
    );
    points.truncate(n);
    points
}

/// Runs the OPT baseline: place the strip pattern, measure its
/// coverage, and charge the Hungarian-optimal moving distance from
/// `initial`.
///
/// # Examples
///
/// ```
/// use msn_deploy::opt::{run, OptParams};
/// use msn_field::{paper_field, scatter_uniform};
/// use msn_sim::SimConfig;
/// use rand::SeedableRng;
///
/// let field = paper_field();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
/// let initial = scatter_uniform(&field, 60, &mut rng);
/// let cfg = SimConfig::paper(60.0, 60.0).with_coverage_cell(10.0);
/// let r = run(&field, &initial, &OptParams::default(), &cfg);
/// assert!(r.coverage > 0.3);
/// assert!(r.connected);
/// ```
pub fn run(field: &Field, initial: &[Point], params: &OptParams, cfg: &SimConfig) -> RunResult {
    run_with_grid(field, initial, params, cfg, None)
}

/// Runs OPT reusing a pre-rasterized coverage grid.
///
/// `grid` must have been built for `field` at `cfg.coverage_cell`
/// (the batch runner caches one per fixed field layout); `None`
/// rasterizes a fresh grid.
pub fn run_with_grid(
    field: &Field,
    initial: &[Point],
    params: &OptParams,
    cfg: &SimConfig,
    grid: Option<&CoverageGrid>,
) -> RunResult {
    let n = initial.len();
    assert!(n > 0, "at least one sensor required");
    let pattern = strip_pattern(field, cfg.rc, cfg.rs, n, params);
    let costs = CostMatrix::euclidean(initial, &pattern);
    let sol = hungarian(&costs);
    let moved: Vec<f64> = sol
        .assignment
        .iter()
        .enumerate()
        .map(|(i, &t)| initial[i].dist(pattern[t]))
        .collect();
    let positions: Vec<Point> = sol.assignment.iter().map(|&t| pattern[t]).collect();
    let grid = match grid {
        Some(g) => g.clone(),
        None => CoverageGrid::new(field, cfg.coverage_cell),
    };
    let coverage = grid.coverage_into(&positions, cfg.rs, &mut Vec::new());
    let graph = DiskGraph::build(&positions, cfg.rc);
    let connected = graph.all_connected_to_base(&positions, cfg.base, cfg.rc);
    // OPT commands each displaced sensor straight to its target: one
    // movement action per sensor that actually relocates.
    let moves = moved.iter().filter(|&&d| d > 0.0).count() as u64;
    let move_dist: f64 = moved.iter().sum();
    RunResult::from_run(
        "OPT",
        coverage,
        &moved,
        MessageCounter::new(),
        connected,
        vec![(0.0, coverage)],
        positions,
    )
    .with_movement(moves, move_dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_field::{paper_field, scatter_clustered};
    use msn_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_spacing_matches_bai() {
        let field = paper_field();
        let pts = strip_pattern(&field, 60.0, 60.0, 200, &OptParams::default());
        assert_eq!(pts.len(), 200);
        // alpha = min(60, 103.9) = 60; consecutive in-row points 60
        // apart. The first strip sits at y = 0.9·rs = 54.
        let mut same_row: Vec<&Point> = pts.iter().filter(|p| (p.y - 54.0).abs() < 1e-9).collect();
        same_row.sort_by(|a, b| a.x.partial_cmp(&b.x).unwrap());
        assert!(same_row.len() > 10);
        let dx = same_row[2].x - same_row[1].x;
        assert!((dx - 60.0).abs() < 1e-9, "intra-strip spacing {dx}");
    }

    #[test]
    fn pattern_is_connected_even_when_beta_exceeds_rc() {
        let field = paper_field();
        let cfg = SimConfig::paper(60.0, 60.0); // beta ≈ 112 > rc = 60
        let pts = strip_pattern(&field, cfg.rc, cfg.rs, 240, &OptParams::default());
        let graph = DiskGraph::build(&pts, cfg.rc);
        assert!(
            graph.all_connected_to_base(&pts, Point::ORIGIN, cfg.rc),
            "connector column must bridge the strips"
        );
    }

    #[test]
    fn many_sensors_approach_full_coverage() {
        let field = paper_field();
        let cfg = SimConfig::paper(60.0, 60.0).with_coverage_cell(10.0);
        let mut rng = SmallRng::seed_from_u64(8);
        let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 240, &mut rng);
        let r = run(&field, &initial, &OptParams::default(), &cfg);
        assert!(
            r.coverage > 0.9,
            "240 sensors at rc=rs=60 nearly saturate: {}",
            r.coverage
        );
        assert!(r.connected);
    }

    #[test]
    fn coverage_scales_with_sensor_count() {
        let field = paper_field();
        let cfg = SimConfig::paper(60.0, 60.0).with_coverage_cell(10.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 120, &mut rng);
        let low = run(&field, &initial[..60], &OptParams::default(), &cfg);
        let high = run(&field, &initial, &OptParams::default(), &cfg);
        assert!(high.coverage > low.coverage + 0.1);
    }

    #[test]
    fn moving_distance_is_hungarian_optimal() {
        // Sanity: matching a pattern to itself costs zero.
        let field = paper_field();
        let cfg = SimConfig::paper(60.0, 40.0).with_coverage_cell(10.0);
        let pattern = strip_pattern(&field, cfg.rc, cfg.rs, 50, &OptParams::default());
        let r = run(&field, &pattern, &OptParams::default(), &cfg);
        assert!(r.avg_move < 1e-9);
    }
}
