//! Declarative, partial parameter overrides for every scheme.
//!
//! The scenario engine sweeps *parameters* as well as schemes: a
//! [`SchemeOverrides`] names only the knobs a spec wants to change
//! (FLOOR's invitation TTL, CPVF's backoff and force constants, the
//! Voronoi round budget, ...) and resolves against each scheme's
//! defaults at run time. Overrides merge — a sweep-cell variant wins
//! over a scenario-wide base — and FLOOR's TTL can be given as an
//! absolute hop count or as a fraction of the network size (Table 1
//! sweeps `TTL = 0.1N ... 0.4N`).

use crate::cpvf::{CpvfParams, ForceParams, OscillationAvoidance};
use crate::floor::FloorParams;
use crate::opt::OptParams;
use crate::vd::VdParams;
use msn_sim::SimConfig;

/// Picks the override (`over`) when present, else the base override.
fn or<T: Clone>(over: &Option<T>, base: &Option<T>) -> Option<T> {
    over.clone().or_else(|| base.clone())
}

/// FLOOR knob overrides (see [`FloorParams`] for semantics).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FloorOverrides {
    /// Absolute invitation TTL (hops). Mutually exclusive with
    /// [`FloorOverrides::ttl_frac`].
    pub ttl: Option<usize>,
    /// Invitation TTL as a fraction of the sensor count: the run uses
    /// `max(1, round(frac * n))` (Table 1's `TTL = 0.1N ... 0.4N`).
    pub ttl_frac: Option<f64>,
    /// Invitations a movable sensor collects before committing.
    pub quorum: Option<usize>,
    /// Periods a movable waits with a non-empty inbox.
    pub patience: Option<u32>,
    /// Movable-classification exclusive-coverage threshold.
    pub movable_threshold: Option<f64>,
    /// Phase 2 start as a fraction of the run duration.
    pub phase1_timeout_frac: Option<f64>,
    /// Unanswered invitations per EP before giving up.
    pub max_invites_per_ep: Option<u32>,
    /// Concurrent expansion points per fixed node.
    pub max_concurrent_eps: Option<usize>,
    /// Consecutive idle periods before a fixed node stops checking.
    pub idle_stop_periods: Option<u32>,
    /// Boundary-guided expansion (ablation switch).
    pub enable_blg: Option<bool>,
    /// Inter-floor-line-guided expansion (ablation switch).
    pub enable_iflg: Option<bool>,
}

impl FloorOverrides {
    fn merged_over(&self, base: &FloorOverrides) -> FloorOverrides {
        // ttl and ttl_frac are one logical knob: a variant that sets
        // either supersedes the base's TTL choice entirely, so a base
        // `ttl = 8` cannot shadow a variant's `ttl_frac` sweep.
        let (ttl, ttl_frac) = if self.ttl.is_some() || self.ttl_frac.is_some() {
            (self.ttl, self.ttl_frac)
        } else {
            (base.ttl, base.ttl_frac)
        };
        FloorOverrides {
            ttl,
            ttl_frac,
            quorum: or(&self.quorum, &base.quorum),
            patience: or(&self.patience, &base.patience),
            movable_threshold: or(&self.movable_threshold, &base.movable_threshold),
            phase1_timeout_frac: or(&self.phase1_timeout_frac, &base.phase1_timeout_frac),
            max_invites_per_ep: or(&self.max_invites_per_ep, &base.max_invites_per_ep),
            max_concurrent_eps: or(&self.max_concurrent_eps, &base.max_concurrent_eps),
            idle_stop_periods: or(&self.idle_stop_periods, &base.idle_stop_periods),
            enable_blg: or(&self.enable_blg, &base.enable_blg),
            enable_iflg: or(&self.enable_iflg, &base.enable_iflg),
        }
    }
}

/// CPVF knob overrides (see [`CpvfParams`] / [`ForceParams`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CpvfOverrides {
    /// Upper bound of the random start delay (s).
    pub backoff_max: Option<f64>,
    /// Allow parent switching when a sensor cannot move.
    pub allow_parent_change: Option<bool>,
    /// Oscillation-avoidance technique (§6.3).
    pub oscillation: Option<OscillationAvoidance>,
    /// Neighbor repulsion threshold (m); default `min(rc, 2·rs)`.
    pub neighbor_threshold: Option<f64>,
    /// Gain of neighbor repulsion.
    pub neighbor_gain: Option<f64>,
    /// Obstacle repulsion range (m); default `min(rs, rc)`.
    pub obstacle_range: Option<f64>,
    /// Gain of obstacle repulsion.
    pub obstacle_gain: Option<f64>,
    /// Boundary repulsion range (m).
    pub boundary_range: Option<f64>,
    /// Gain of boundary repulsion.
    pub boundary_gain: Option<f64>,
    /// Equilibrium force threshold.
    pub min_force: Option<f64>,
}

impl CpvfOverrides {
    fn merged_over(&self, base: &CpvfOverrides) -> CpvfOverrides {
        CpvfOverrides {
            backoff_max: or(&self.backoff_max, &base.backoff_max),
            allow_parent_change: or(&self.allow_parent_change, &base.allow_parent_change),
            oscillation: or(&self.oscillation, &base.oscillation),
            neighbor_threshold: or(&self.neighbor_threshold, &base.neighbor_threshold),
            neighbor_gain: or(&self.neighbor_gain, &base.neighbor_gain),
            obstacle_range: or(&self.obstacle_range, &base.obstacle_range),
            obstacle_gain: or(&self.obstacle_gain, &base.obstacle_gain),
            boundary_range: or(&self.boundary_range, &base.boundary_range),
            boundary_gain: or(&self.boundary_gain, &base.boundary_gain),
            min_force: or(&self.min_force, &base.min_force),
        }
    }

    fn touches_force(&self) -> bool {
        self.neighbor_threshold.is_some()
            || self.neighbor_gain.is_some()
            || self.obstacle_range.is_some()
            || self.obstacle_gain.is_some()
            || self.boundary_range.is_some()
            || self.boundary_gain.is_some()
            || self.min_force.is_some()
    }
}

/// VOR/Minimax knob overrides (see [`VdParams`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VdOverrides {
    /// Movement rounds after the explosion.
    pub rounds: Option<usize>,
    /// VOR's per-round movement cap as a fraction of `rc`.
    pub step_cap_frac: Option<f64>,
    /// Run the explosion phase.
    pub explode: Option<bool>,
}

impl VdOverrides {
    fn merged_over(&self, base: &VdOverrides) -> VdOverrides {
        VdOverrides {
            rounds: or(&self.rounds, &base.rounds),
            step_cap_frac: or(&self.step_cap_frac, &base.step_cap_frac),
            explode: or(&self.explode, &base.explode),
        }
    }
}

/// OPT knob overrides (see [`OptParams`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OptOverrides {
    /// Safety factor applied to connector spacing.
    pub connector_slack: Option<f64>,
}

impl OptOverrides {
    fn merged_over(&self, base: &OptOverrides) -> OptOverrides {
        OptOverrides {
            connector_slack: or(&self.connector_slack, &base.connector_slack),
        }
    }
}

/// A partial override set across all schemes. Unset fields resolve to
/// each scheme's defaults; [`SchemeOverrides::merged_over`] stacks a
/// sweep-cell variant on a scenario-wide base.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchemeOverrides {
    /// FLOOR overrides.
    pub floor: FloorOverrides,
    /// CPVF overrides.
    pub cpvf: CpvfOverrides,
    /// VOR/Minimax overrides.
    pub vd: VdOverrides,
    /// OPT overrides.
    pub opt: OptOverrides,
}

impl SchemeOverrides {
    /// Returns `self` stacked over `base`: fields set in `self` win,
    /// fields unset in `self` fall through to `base`.
    #[must_use]
    pub fn merged_over(&self, base: &SchemeOverrides) -> SchemeOverrides {
        SchemeOverrides {
            floor: self.floor.merged_over(&base.floor),
            cpvf: self.cpvf.merged_over(&base.cpvf),
            vd: self.vd.merged_over(&base.vd),
            opt: self.opt.merged_over(&base.opt),
        }
    }

    /// Whether no field is overridden.
    pub fn is_default(&self) -> bool {
        *self == SchemeOverrides::default()
    }

    /// Checks internal consistency, returning the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.floor.ttl.is_some() && self.floor.ttl_frac.is_some() {
            return Err("floor.ttl and floor.ttl_frac are mutually exclusive".into());
        }
        if let Some(f) = self.floor.ttl_frac {
            if !(f.is_finite() && f > 0.0) {
                return Err("floor.ttl_frac must be positive".into());
            }
        }
        if self.floor.ttl == Some(0) {
            return Err("floor.ttl must be at least 1".into());
        }
        if self.floor.quorum == Some(0) {
            return Err("floor.quorum must be at least 1".into());
        }
        for (name, v) in [
            ("floor.movable_threshold", self.floor.movable_threshold),
            ("floor.phase1_timeout_frac", self.floor.phase1_timeout_frac),
            ("cpvf.backoff_max", self.cpvf.backoff_max),
            ("cpvf.neighbor_threshold", self.cpvf.neighbor_threshold),
            ("cpvf.neighbor_gain", self.cpvf.neighbor_gain),
            ("cpvf.obstacle_range", self.cpvf.obstacle_range),
            ("cpvf.obstacle_gain", self.cpvf.obstacle_gain),
            ("cpvf.boundary_range", self.cpvf.boundary_range),
            ("cpvf.boundary_gain", self.cpvf.boundary_gain),
            ("cpvf.min_force", self.cpvf.min_force),
            ("vd.step_cap_frac", self.vd.step_cap_frac),
            ("opt.connector_slack", self.opt.connector_slack),
        ] {
            if let Some(v) = v {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("{name} must be finite and non-negative"));
                }
            }
        }
        if let Some(
            OscillationAvoidance::OneStep { delta } | OscillationAvoidance::TwoStep { delta },
        ) = self.cpvf.oscillation
        {
            if !(delta.is_finite() && delta > 0.0) {
                return Err("cpvf oscillation delta must be positive".into());
            }
        }
        Ok(())
    }

    /// Resolved FLOOR parameters for a run of `n` sensors.
    pub fn floor_params(&self, n: usize) -> FloorParams {
        let d = FloorParams::default();
        let o = &self.floor;
        let invitation_ttl = match (o.ttl, o.ttl_frac) {
            (Some(ttl), _) => Some(ttl.max(1)),
            (None, Some(frac)) => Some(((n as f64 * frac).round() as usize).max(1)),
            (None, None) => d.invitation_ttl,
        };
        FloorParams {
            invitation_ttl,
            quorum: o.quorum.unwrap_or(d.quorum),
            patience: o.patience.unwrap_or(d.patience),
            movable_threshold: o.movable_threshold.unwrap_or(d.movable_threshold),
            phase1_timeout_frac: o.phase1_timeout_frac.unwrap_or(d.phase1_timeout_frac),
            max_invites_per_ep: o.max_invites_per_ep.unwrap_or(d.max_invites_per_ep),
            max_concurrent_eps: o.max_concurrent_eps.unwrap_or(d.max_concurrent_eps),
            idle_stop_periods: o.idle_stop_periods.unwrap_or(d.idle_stop_periods),
            snapshot_every: d.snapshot_every,
            enable_blg: o.enable_blg.unwrap_or(d.enable_blg),
            enable_iflg: o.enable_iflg.unwrap_or(d.enable_iflg),
        }
    }

    /// Resolved CPVF parameters under `cfg`'s radio ranges.
    pub fn cpvf_params(&self, cfg: &SimConfig) -> CpvfParams {
        let d = CpvfParams::default();
        let o = &self.cpvf;
        let force = if o.touches_force() {
            let f = ForceParams::for_ranges(cfg.rc, cfg.rs);
            Some(ForceParams {
                neighbor_threshold: o.neighbor_threshold.unwrap_or(f.neighbor_threshold),
                neighbor_gain: o.neighbor_gain.unwrap_or(f.neighbor_gain),
                obstacle_range: o.obstacle_range.unwrap_or(f.obstacle_range),
                obstacle_gain: o.obstacle_gain.unwrap_or(f.obstacle_gain),
                boundary_range: o.boundary_range.unwrap_or(f.boundary_range),
                boundary_gain: o.boundary_gain.unwrap_or(f.boundary_gain),
                min_force: o.min_force.unwrap_or(f.min_force),
            })
        } else {
            d.force.clone()
        };
        CpvfParams {
            force,
            oscillation: o.oscillation.unwrap_or(d.oscillation),
            backoff_max: o.backoff_max.unwrap_or(d.backoff_max),
            allow_parent_change: o.allow_parent_change.unwrap_or(d.allow_parent_change),
            snapshot_every: d.snapshot_every,
        }
    }

    /// Resolved VOR/Minimax parameters.
    pub fn vd_params(&self) -> VdParams {
        let d = VdParams::default();
        let o = &self.vd;
        VdParams {
            rounds: o.rounds.unwrap_or(d.rounds),
            step_cap_frac: o.step_cap_frac.unwrap_or(d.step_cap_frac),
            explode: o.explode.unwrap_or(d.explode),
        }
    }

    /// Resolved OPT parameters.
    pub fn opt_params(&self) -> OptParams {
        let d = OptParams::default();
        OptParams {
            connector_slack: self.opt.connector_slack.unwrap_or(d.connector_slack),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_overrides_resolve_to_scheme_defaults() {
        let o = SchemeOverrides::default();
        assert!(o.is_default());
        assert!(o.validate().is_ok());
        assert_eq!(o.floor_params(240), FloorParams::default());
        assert_eq!(o.vd_params(), VdParams::default());
        assert_eq!(o.opt_params(), OptParams::default());
        let cfg = SimConfig::paper(60.0, 40.0);
        let cpvf = o.cpvf_params(&cfg);
        assert_eq!(cpvf.force, None);
        assert_eq!(cpvf.backoff_max, CpvfParams::default().backoff_max);
    }

    #[test]
    fn ttl_frac_scales_with_n() {
        let o = SchemeOverrides {
            floor: FloorOverrides {
                ttl_frac: Some(0.2),
                ..Default::default()
            },
            ..Default::default()
        };
        assert_eq!(o.floor_params(240).invitation_ttl, Some(48));
        assert_eq!(o.floor_params(3).invitation_ttl, Some(1), "floors at 1");
    }

    #[test]
    fn ttl_and_ttl_frac_conflict_is_rejected() {
        let o = SchemeOverrides {
            floor: FloorOverrides {
                ttl: Some(10),
                ttl_frac: Some(0.2),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn variant_ttl_choice_supersedes_base_ttl() {
        // a base absolute TTL must not shadow a variant's fractional
        // sweep (the ttl/ttl_frac pair is one logical knob)
        let base = SchemeOverrides {
            floor: FloorOverrides {
                ttl: Some(8),
                ..Default::default()
            },
            ..Default::default()
        };
        let variant = SchemeOverrides {
            floor: FloorOverrides {
                ttl_frac: Some(0.1),
                ..Default::default()
            },
            ..Default::default()
        };
        let merged = variant.merged_over(&base);
        assert_eq!(merged.floor.ttl, None);
        assert_eq!(merged.floor.ttl_frac, Some(0.1));
        assert!(merged.validate().is_ok());
        assert_eq!(merged.floor_params(240).invitation_ttl, Some(24));
        // and a variant without a TTL choice inherits the base's
        let plain = SchemeOverrides::default().merged_over(&base);
        assert_eq!(plain.floor.ttl, Some(8));
        assert_eq!(plain.floor.ttl_frac, None);
    }

    #[test]
    fn variant_merges_over_base() {
        let base = SchemeOverrides {
            floor: FloorOverrides {
                quorum: Some(3),
                enable_blg: Some(false),
                ..Default::default()
            },
            ..Default::default()
        };
        let variant = SchemeOverrides {
            floor: FloorOverrides {
                enable_blg: Some(true),
                ttl: Some(12),
                ..Default::default()
            },
            ..Default::default()
        };
        let merged = variant.merged_over(&base);
        assert_eq!(merged.floor.quorum, Some(3), "base survives");
        assert_eq!(merged.floor.enable_blg, Some(true), "variant wins");
        assert_eq!(merged.floor.ttl, Some(12));
    }

    #[test]
    fn force_overrides_materialize_force_params() {
        let o = SchemeOverrides {
            cpvf: CpvfOverrides {
                obstacle_gain: Some(3.0),
                ..Default::default()
            },
            ..Default::default()
        };
        let cfg = SimConfig::paper(60.0, 40.0);
        let p = o.cpvf_params(&cfg);
        let f = p.force.expect("force materialized");
        assert_eq!(f.obstacle_gain, 3.0);
        // untouched constants keep their rc/rs-derived defaults
        let d = ForceParams::for_ranges(60.0, 40.0);
        assert_eq!(f.neighbor_threshold, d.neighbor_threshold);
    }

    #[test]
    fn oscillation_override_applies() {
        let o = SchemeOverrides {
            cpvf: CpvfOverrides {
                oscillation: Some(OscillationAvoidance::TwoStep { delta: 4.0 }),
                ..Default::default()
            },
            ..Default::default()
        };
        let p = o.cpvf_params(&SimConfig::paper(60.0, 40.0));
        assert_eq!(p.oscillation, OscillationAvoidance::TwoStep { delta: 4.0 });
        let bad = SchemeOverrides {
            cpvf: CpvfOverrides {
                oscillation: Some(OscillationAvoidance::OneStep { delta: 0.0 }),
                ..Default::default()
            },
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }
}
