//! Connectivity-guaranteed, obstacle-adaptive deployment schemes for
//! mobile sensor networks.
//!
//! This crate implements the two schemes of Tan, Jarvis & Kermarrec,
//! *"Connectivity-Guaranteed and Obstacle-Adaptive Deployment Schemes
//! for Mobile Sensor Networks"* (ICDCS 2008 / IEEE TMC 2009), plus the
//! baselines their evaluation compares against:
//!
//! * [`cpvf`] — the **Connectivity-Preserved Virtual Force** scheme
//!   (§4): virtual-force dispersion under connectivity-preserving step
//!   constraints, with BUG2 navigation to the base station and lazy
//!   movement;
//! * [`floor`] — the **FLOOR** scheme (§5): floors of height `2·rs`,
//!   vine-like coverage expansion along floor lines and obstacle
//!   boundaries, movable-sensor recruitment through TTL random-walk
//!   invitations;
//! * [`vd`] — the Voronoi-based **VOR** and **Minimax** baselines
//!   (Wang et al., INFOCOM'04) on communication-restricted Voronoi
//!   cells;
//! * [`opt`] — the strip-based **OPT** pattern (Bai et al.,
//!   MobiHoc'06) with Hungarian-matching movement baselines.
//!
//! Every scheme exposes a one-call runner returning a
//! [`msn_sim::RunResult`] with coverage, moving distance,
//! message counts and connectivity — the metrics behind each figure
//! and table of the paper. [`run_scheme`] dispatches on
//! [`SchemeKind`].
//!
//! # Quickstart
//!
//! ```
//! use msn_deploy::{cpvf::CpvfParams, run_scheme, SchemeKind};
//! use msn_field::{paper_field, scatter_clustered};
//! use msn_geom::Rect;
//! use msn_sim::SimConfig;
//! use rand::SeedableRng;
//!
//! let field = paper_field();
//! let cfg = SimConfig::paper(60.0, 40.0)
//!     .with_duration(20.0)        // keep the doc test fast
//!     .with_coverage_cell(10.0);
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 500.0, 500.0), 30, &mut rng);
//! let result = run_scheme(SchemeKind::Cpvf, &field, &initial, &cfg);
//! assert!(result.coverage > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpvf;
mod dynamic;
pub mod floor;
mod lazy;
pub mod opt;
mod overrides;
pub mod vd;

pub use dynamic::{run_scheme_dynamic, DynamicOutcome, EventRecord};
pub use lazy::ConnectOutcome;
pub use overrides::{CpvfOverrides, FloorOverrides, OptOverrides, SchemeOverrides, VdOverrides};

use msn_field::{CoverageGrid, Field};
use msn_geom::Point;
use msn_sim::{RunResult, SimConfig};

/// The five deployment schemes of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Connectivity-Preserved Virtual Force (§4).
    Cpvf,
    /// The floor-based scheme (§5).
    Floor,
    /// Voronoi scheme: move toward the farthest cell vertex.
    Vor,
    /// Voronoi scheme: move to the cell's minimax point.
    Minimax,
    /// Centralized optimal strip pattern.
    Opt,
}

impl SchemeKind {
    /// All five schemes, in the paper's presentation order.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::Cpvf,
        SchemeKind::Floor,
        SchemeKind::Vor,
        SchemeKind::Minimax,
        SchemeKind::Opt,
    ];

    /// Human-readable scheme name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::Cpvf => "CPVF",
            SchemeKind::Floor => "FLOOR",
            SchemeKind::Vor => "VOR",
            SchemeKind::Minimax => "Minimax",
            SchemeKind::Opt => "OPT",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchemeKind {
    type Err = String;

    /// Parses a scheme by its figure name, case-insensitively
    /// (`"CPVF"`, `"floor"`, `"Minimax"`, ...).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SchemeKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s.trim()))
            .ok_or_else(|| {
                format!("unknown scheme '{s}' (expected one of CPVF, FLOOR, VOR, Minimax, OPT)")
            })
    }
}

/// Runs `kind` with its default tuning parameters.
///
/// For declarative knob overrides use [`run_scheme_with`]; for full
/// control use the per-module runners ([`cpvf::run`], [`floor::run`],
/// [`vd::run`], [`opt::run`]) directly.
pub fn run_scheme(
    kind: SchemeKind,
    field: &Field,
    initial: &[Point],
    cfg: &SimConfig,
) -> RunResult {
    run_scheme_with(kind, field, initial, cfg, &SchemeOverrides::default(), None)
}

/// Runs `kind` with declarative parameter overrides and an optional
/// pre-rasterized coverage grid.
///
/// `overrides` resolves against the scheme's defaults (see
/// [`SchemeOverrides`]); `grid`, when given, must have been built for
/// `field` at `cfg.coverage_cell` — the batch runner caches one per
/// fixed field layout so repeated runs skip re-rasterization.
pub fn run_scheme_with(
    kind: SchemeKind,
    field: &Field,
    initial: &[Point],
    cfg: &SimConfig,
    overrides: &SchemeOverrides,
    grid: Option<&CoverageGrid>,
) -> RunResult {
    match kind {
        SchemeKind::Cpvf => {
            cpvf::run_with_grid(field, initial, &overrides.cpvf_params(cfg), cfg, grid)
        }
        SchemeKind::Floor => floor::run_with_grid(
            field,
            initial,
            &overrides.floor_params(initial.len()),
            cfg,
            grid,
        ),
        SchemeKind::Vor => vd::run_with_grid(
            field,
            initial,
            vd::VdVariant::Vor,
            &overrides.vd_params(),
            cfg,
            grid,
        ),
        SchemeKind::Minimax => vd::run_with_grid(
            field,
            initial,
            vd::VdVariant::Minimax,
            &overrides.vd_params(),
            cfg,
            grid,
        ),
        SchemeKind::Opt => opt::run_with_grid(field, initial, &overrides.opt_params(), cfg, grid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_names() {
        assert_eq!(SchemeKind::Cpvf.name(), "CPVF");
        assert_eq!(SchemeKind::Floor.to_string(), "FLOOR");
        assert_eq!(SchemeKind::Vor.name(), "VOR");
        assert_eq!(SchemeKind::Minimax.name(), "Minimax");
        assert_eq!(SchemeKind::Opt.name(), "OPT");
    }

    #[test]
    fn scheme_parse_roundtrip() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.name().parse::<SchemeKind>(), Ok(kind));
            assert_eq!(kind.name().to_lowercase().parse::<SchemeKind>(), Ok(kind));
        }
        assert!("NOPE".parse::<SchemeKind>().is_err());
    }
}
