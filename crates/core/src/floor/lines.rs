//! Floor-line geometry (§5).
//!
//! The field is divided into horizontal *floors* of common height
//! `2·rs`; the *floor line* runs through the middle of each floor, and
//! the *inter-floor line* halfway between two adjacent floor lines.

use msn_geom::Rect;

/// The floor decomposition of a field for a given sensing range.
///
/// Floor `k` spans `y ∈ [2·rs·k, 2·rs·(k+1))` with its floor line at
/// `y = rs + 2·rs·k`.
///
/// # Examples
///
/// ```
/// use msn_deploy::floor::FloorLines;
/// use msn_geom::Rect;
///
/// let lines = FloorLines::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 40.0);
/// assert_eq!(lines.count(), 13);
/// assert_eq!(lines.line_y(0), 40.0);
/// assert_eq!(lines.nearest_line_y(130.0), 120.0);
/// assert_eq!(lines.floor_index(130.0), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FloorLines {
    bounds: Rect,
    rs: f64,
    count: usize,
}

impl FloorLines {
    /// Builds the floor decomposition of `bounds` for sensing range
    /// `rs`.
    ///
    /// # Panics
    ///
    /// Panics if `rs` is not strictly positive.
    pub fn new(bounds: Rect, rs: f64) -> Self {
        assert!(rs > 0.0, "sensing range must be positive");
        let height = bounds.height();
        let count = ((height / (2.0 * rs)).ceil() as usize).max(1);
        FloorLines { bounds, rs, count }
    }

    /// Number of floors.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Height of one floor (`2·rs`).
    #[inline]
    pub fn floor_height(&self) -> f64 {
        2.0 * self.rs
    }

    /// The y coordinate of floor line `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn line_y(&self, k: usize) -> f64 {
        assert!(k < self.count, "floor index out of range");
        self.bounds.min.y + self.rs + 2.0 * self.rs * k as f64
    }

    /// Index of the floor containing height `y` (clamped to the field).
    pub fn floor_index(&self, y: f64) -> usize {
        let rel = (y - self.bounds.min.y) / (2.0 * self.rs);
        (rel.floor().max(0.0) as usize).min(self.count - 1)
    }

    /// The paper's `FloorLine(y)`: the y coordinate of the floor line
    /// nearest to height `y`.
    pub fn nearest_line_y(&self, y: f64) -> f64 {
        self.line_y(self.floor_index(y))
    }

    /// The inter-floor line above floor `k` (between lines `k` and
    /// `k+1`), used by IFLG expansion.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn inter_floor_above(&self, k: usize) -> f64 {
        self.line_y(k) + self.rs
    }

    /// Indices of floors whose *band* (line ± rs, i.e. the whole
    /// floor strip plus the adjacent half-floors a node can sit in)
    /// could contain a node covering a point at height `y`.
    pub fn floors_covering(&self, y: f64) -> impl Iterator<Item = usize> + '_ {
        let reach = 2.0 * self.rs;
        (0..self.count).filter(move |&k| (self.line_y(k) - y).abs() <= reach + 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines() -> FloorLines {
        FloorLines::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 40.0)
    }

    #[test]
    fn counts_and_positions() {
        let l = lines();
        assert_eq!(l.count(), 13); // ceil(1000 / 80)
        assert_eq!(l.floor_height(), 80.0);
        assert_eq!(l.line_y(0), 40.0);
        assert_eq!(l.line_y(1), 120.0);
        assert_eq!(l.line_y(12), 1000.0); // the top line may graze the edge
    }

    #[test]
    fn floor_index_boundaries() {
        let l = lines();
        assert_eq!(l.floor_index(0.0), 0);
        assert_eq!(l.floor_index(79.9), 0);
        assert_eq!(l.floor_index(80.0), 1);
        assert_eq!(l.floor_index(-5.0), 0, "clamped below");
        assert_eq!(l.floor_index(5000.0), 12, "clamped above");
    }

    #[test]
    fn nearest_line() {
        let l = lines();
        assert_eq!(l.nearest_line_y(10.0), 40.0);
        assert_eq!(l.nearest_line_y(100.0), 120.0);
        assert_eq!(l.nearest_line_y(81.0), 120.0, "just into floor 1");
    }

    #[test]
    fn inter_floor_lines() {
        let l = lines();
        assert_eq!(l.inter_floor_above(0), 80.0);
        assert_eq!(l.inter_floor_above(1), 160.0);
    }

    #[test]
    fn covering_floors_window() {
        let l = lines();
        let idx: Vec<usize> = l.floors_covering(120.0).collect();
        assert_eq!(idx, vec![0, 1, 2], "lines within 2·rs of y=120");
        let low: Vec<usize> = l.floors_covering(0.0).collect();
        assert_eq!(low, vec![0], "only line 0 (y=40) is within 2·rs of y=0");
    }

    #[test]
    fn small_field_has_one_floor() {
        let l = FloorLines::new(Rect::new(0.0, 0.0, 50.0, 30.0), 40.0);
        assert_eq!(l.count(), 1);
        assert_eq!(l.floor_index(29.0), 0);
    }
}
