//! The floor-based deployment scheme (§5).
//!
//! FLOOR divides the field into floors of height `2·rs` and grows the
//! network like a vine over a trellis of floor lines and
//! field/obstacle boundaries:
//!
//! 1. **Achieving connectivity (§5.2).** Every disconnected sensor
//!    runs Algorithm 1: BUG2 legs through `(x, FloorLine(y))` and
//!    `(0, FloorLine(y))` toward the base at the origin, with lazy
//!    movement; it freezes on entering `min(rc, 2·rs)` of a connected
//!    node and reports to the base station.
//! 2. **Identifying movable sensors (§5.3).** A serialized traversal
//!    classifies each sensor: *movable* iff all its children can be
//!    re-parented loop-free among 2-hop neighbors and its exclusively
//!    covered area is small; everyone else is *fixed*.
//! 3. **Expanding coverage (§5.5).** Fixed frontier sensors discover
//!    expansion points (FLG/BLG/IFLG, see [`EpKind`]), verify their
//!    coverage status through per-floor header nodes (§5.4), and
//!    recruit movable sensors with TTL-bounded random-walk
//!    `Invitation` messages. An acknowledged recruit is reserved with
//!    a *virtual fixed node*, travels by BUG2, becomes fixed on
//!    arrival and continues the expansion.

mod expand;
mod lines;
mod registry;

pub use expand::{
    blg_frontier, ep_toward, expansion_radius, flg_frontiers, iflg_candidates, EpKind,
    ExpansionPoint,
};
pub use lines::FloorLines;
pub use registry::{FloorRegistry, VirtualToken};

use crate::lazy::{lazy_plan_step, ConnectOutcome, LazyMover, Route};
use msn_field::Field;
use msn_geom::Point;
use msn_nav::{Hand, MultiLegPlan, NavContext, Navigator};
use msn_net::{random_walk, MsgKind, Parent, Tree};
use msn_sim::{RunResult, SimConfig, World};
use rand::Rng;
use std::sync::Arc;

/// Tuning parameters of FLOOR.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorParams {
    /// TTL of invitation random walks; `None` uses `⌈0.2·n⌉`
    /// (Table 1's middle setting).
    pub invitation_ttl: Option<usize>,
    /// Invitations a movable sensor collects before committing.
    pub quorum: usize,
    /// Periods a movable waits with a non-empty inbox before
    /// committing anyway.
    pub patience: u32,
    /// A sensor is movable when less than this fraction of its disk is
    /// covered exclusively by itself (§5.3's threshold).
    pub movable_threshold: f64,
    /// Phase 2 starts at this fraction of the run duration unless all
    /// sensors connect earlier.
    pub phase1_timeout_frac: f64,
    /// Unanswered invitations per EP before the inviter gives up
    /// (damping; see DESIGN.md).
    pub max_invites_per_ep: u32,
    /// Expansion points a fixed node may pursue concurrently (§5.5.1
    /// shows a node inviting for EPs A, B and C in parallel).
    pub max_concurrent_eps: usize,
    /// Consecutive EP-less periods after which a fixed node stops
    /// checking (§5.5.2 stops immediately; a small grace window makes
    /// the vine robust to transient coverage states).
    pub idle_stop_periods: u32,
    /// Coverage-timeline sampling interval (s).
    pub snapshot_every: f64,
    /// Enable boundary-guided expansion (ablation switch).
    pub enable_blg: bool,
    /// Enable inter-floor-line-guided expansion (ablation switch).
    pub enable_iflg: bool,
}

impl Default for FloorParams {
    fn default() -> Self {
        FloorParams {
            invitation_ttl: None,
            quorum: 2,
            patience: 3,
            movable_threshold: 0.3,
            phase1_timeout_frac: 0.3,
            max_invites_per_ep: 40,
            max_concurrent_eps: 3,
            idle_stop_periods: 8,
            snapshot_every: 25.0,
            enable_blg: true,
            enable_iflg: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FState {
    Walking,
    Fixed,
    Movable,
    Relocating,
}

#[derive(Debug, Clone, Copy)]
struct Invite {
    ep: ExpansionPoint,
    inviter: usize,
}

#[derive(Debug)]
struct Reloc {
    nav: Navigator,
    token: VirtualToken,
    inviter: usize,
}

#[derive(Debug, Clone, Copy)]
struct ActiveEp {
    ep: ExpansionPoint,
    invites_sent: u32,
}

/// A virtual fixed node whose recruit is still en route. The paper's
/// §5.5.2 plants these in the tree immediately on acknowledgment, and
/// EP discovery "considers the environment consisting of fixed nodes"
/// — virtual ones included — so the vine tip advances at handshake
/// speed while recruits travel in parallel.
#[derive(Debug, Clone, Copy)]
struct VirtualTip {
    pos: Point,
    recruit: usize,
    owner: usize,
}

/// Runs FLOOR and reports the standard metrics.
///
/// # Examples
///
/// ```
/// use msn_deploy::floor::{run, FloorParams};
/// use msn_field::{paper_field, scatter_clustered};
/// use msn_geom::Rect;
/// use msn_sim::SimConfig;
/// use rand::SeedableRng;
///
/// let field = paper_field();
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
/// let initial = scatter_clustered(&field, Rect::new(0.0, 0.0, 300.0, 300.0), 25, &mut rng);
/// let cfg = SimConfig::paper(60.0, 40.0).with_duration(30.0).with_coverage_cell(10.0);
/// let r = run(&field, &initial, &FloorParams::default(), &cfg);
/// assert!(r.coverage > 0.0);
/// ```
pub fn run(field: &Field, initial: &[Point], params: &FloorParams, cfg: &SimConfig) -> RunResult {
    run_with_grid(field, initial, params, cfg, None)
}

/// Runs FLOOR reusing a pre-rasterized coverage grid.
///
/// `grid` must have been built for `field` at `cfg.coverage_cell`
/// (the batch runner caches one per fixed field layout); `None`
/// rasterizes a fresh grid.
pub fn run_with_grid(
    field: &Field,
    initial: &[Point],
    params: &FloorParams,
    cfg: &SimConfig,
    grid: Option<&msn_field::CoverageGrid>,
) -> RunResult {
    let _run = msn_obs::span("floor.run");
    FloorSim::new(field, initial, params, cfg).run(grid)
}

struct FloorSim<'a> {
    field: &'a Field,
    params: &'a FloorParams,
    cfg: &'a SimConfig,
    /// Shared BUG2 context (offset rings + edge bucket grid), built
    /// once per run and reused by every plan the scheme creates.
    nav_ctx: Arc<NavContext>,
    world: World,
    tree: Tree,
    registry: FloorRegistry,
    state: Vec<FState>,
    movers: Vec<Option<LazyMover>>,
    walk_active: Vec<bool>,
    inbox: Vec<Vec<Invite>>,
    waited: Vec<u32>,
    reloc: Vec<Option<Reloc>>,
    active_eps: Vec<Vec<ActiveEp>>,
    tips: Vec<VirtualTip>,
    idle_search: Vec<u32>,
    disconnected_periods: Vec<u32>,
    classified: bool,
    ttl: usize,
    rho: f64,
    stop_dist: f64,
}

impl<'a> FloorSim<'a> {
    fn new(
        field: &'a Field,
        initial: &[Point],
        params: &'a FloorParams,
        cfg: &'a SimConfig,
    ) -> Self {
        let n = initial.len();
        let world = World::new(field.clone(), cfg.clone(), initial.to_vec());
        let lines = FloorLines::new(field.bounds(), cfg.rs);
        let registry = FloorRegistry::new(lines);
        let ttl = params
            .invitation_ttl
            .unwrap_or_else(|| ((n as f64 * 0.2).ceil() as usize).max(1));
        FloorSim {
            field,
            params,
            cfg,
            nav_ctx: Arc::new(NavContext::new(field)),
            world,
            tree: Tree::new(n),
            registry,
            state: vec![FState::Walking; n],
            movers: (0..n).map(|_| None).collect(),
            walk_active: vec![false; n],
            inbox: vec![Vec::new(); n],
            waited: vec![0; n],
            reloc: (0..n).map(|_| None).collect(),
            active_eps: vec![Vec::new(); n],
            tips: Vec::new(),
            idle_search: vec![0; n],
            disconnected_periods: vec![0; n],
            classified: false,
            ttl,
            rho: expansion_radius(cfg.rc, cfg.rs),
            stop_dist: cfg.rc.min(2.0 * cfg.rs),
        }
    }

    #[allow(clippy::needless_range_loop)] // indexing several parallel state arrays
    fn run(mut self, grid: Option<&msn_field::CoverageGrid>) -> RunResult {
        let setup = msn_obs::span("floor.setup");
        let n = self.world.n();
        let cov_grid = match grid {
            Some(g) => g.clone(),
            None => self.world.coverage_grid(),
        };
        // Incremental coverage: once the vine is mostly fixed nodes,
        // a timeline sample costs O(relocating recruits) disk stamps
        // instead of re-rasterizing all N sensors.
        self.world.track_coverage(cov_grid);
        // Incremental connectivity: the per-tick "is this movable
        // still base-connected?" checks answer from maintained hop
        // distances instead of a fresh graph build + flood each tick.
        self.world.track_connectivity();
        // Incremental proximity: every range query (absorption scans,
        // walker planning, EP coverage checks) answers from one
        // maintained point index instead of rebuilding a SpatialGrid
        // per tick — byte-identical results, order included. The
        // connectivity and adjacency trackers privately maintain
        // their own indexes over the same move stream; the
        // duplication is deliberate — sharing one would thread an
        // external `&mut PointIndex` through each tracker's whole
        // public API — and cheap (O(1) per move to record, O(moved)
        // per query round).
        self.world.track_points();
        // Incremental adjacency: full neighbor lists (random-walk
        // invitations, hop accounting, flood/classify scans) come
        // from maintained grid-order lists — equal to a fresh
        // `DiskGraph::build`, order included, so the RNG stream the
        // walks consume is unchanged. This removes the last graph
        // rebuild from the tick path.
        self.world.track_adjacency();
        self.initial_flood();
        // Route the still-disconnected sensors per Algorithm 1.
        for i in 0..n {
            if self.state[i] == FState::Walking {
                let pos = self.world.pos(i);
                let legs = self.algorithm1_legs(pos);
                let backoff = self.world.rng().gen_range(0.0..10.0f64);
                self.movers[i] = Some(LazyMover::new(
                    Route::Multi(MultiLegPlan::with_context(
                        self.nav_ctx.clone(),
                        pos,
                        legs,
                        Hand::Right,
                    )),
                    backoff,
                ));
            }
        }

        let snap_ticks = (self.params.snapshot_every / self.cfg.dt())
            .round()
            .max(1.0) as u64;
        let mut timeline = vec![(0.0, self.world.coverage_tracked())];
        let classify_deadline = self.params.phase1_timeout_frac * self.cfg.duration;
        drop(setup);

        for _ in 0..self.cfg.total_ticks() {
            if !self.classified {
                let _classify = msn_obs::span("floor.classify");
                let all_connected = self.state.iter().all(|&s| s != FState::Walking);
                if all_connected || self.world.time() >= classify_deadline {
                    self.classify();
                }
            }
            let plan = msn_obs::span("floor.plan");
            for i in 0..n {
                if !self.world.is_plan_tick(i) {
                    continue;
                }
                match self.state[i] {
                    FState::Walking => self.plan_walk(i),
                    FState::Fixed if self.classified => self.expansion_step(i),
                    FState::Movable => {
                        // §4.1 applies at all times: a movable whose
                        // surroundings were recruited away may find
                        // itself cut off from the base — it must walk
                        // back in (otherwise no invitation can ever
                        // reach its separated component).
                        if !self.world.connected_tracked(i) {
                            self.disconnected_periods[i] += 1;
                            if self.disconnected_periods[i] >= 5 {
                                self.restart_walk(i);
                                continue;
                            }
                        } else {
                            self.disconnected_periods[i] = 0;
                        }
                        self.movable_step(i)
                    }
                    _ => {}
                }
            }
            drop(plan);
            {
                let _motion = msn_obs::span("floor.motion");
                self.integrate_motion();
            }
            {
                let _absorb = msn_obs::span("floor.absorb");
                self.absorb_connections();
            }
            self.world.advance_tick();
            if self.world.tick().is_multiple_of(snap_ticks) {
                let _snapshot = msn_obs::span("floor.snapshot");
                timeline.push((self.world.time(), self.world.coverage_tracked()));
            }
        }

        let _finish = msn_obs::span("floor.finish");
        let coverage = self.world.coverage_tracked();
        let connected = self.world.all_connected_tracked();
        let moved: Vec<f64> = (0..n).map(|i| self.world.moved(i)).collect();
        let msgs = self.world.msgs_ref().clone();
        let positions = self.world.positions().to_vec();
        RunResult::from_run(
            "FLOOR", coverage, &moved, msgs, connected, timeline, positions,
        )
        .with_movement(self.world.move_count(), self.world.move_dist())
    }

    /// Algorithm 1's waypoints from a starting position.
    fn algorithm1_legs(&self, pos: Point) -> Vec<Point> {
        let fl = self.registry.lines().nearest_line_y(pos.y);
        vec![
            Point::new(pos.x, fl),
            Point::new(self.field.bounds().min.x, fl),
            self.cfg.base,
        ]
    }

    /// §4.1-style flood at t = 0; reached sensors attach along BFS
    /// predecessor edges and report to the base (§5.3).
    fn initial_flood(&mut self) {
        let base = self.cfg.base;
        let mut queue = std::collections::VecDeque::new();
        for i in 0..self.world.n() {
            if self.world.pos(i).dist(base) <= self.stop_dist {
                self.state[i] = FState::Fixed;
                self.tree.attach(i, Parent::Base);
                queue.push_back(i);
            }
        }
        while let Some(u) = queue.pop_front() {
            for v in self.world.adjacency().neighbors(u).to_vec() {
                if self.state[v] == FState::Walking
                    && self.world.pos(v).dist(self.world.pos(u)) <= self.stop_dist
                {
                    self.state[v] = FState::Fixed;
                    self.tree.attach(v, Parent::Node(u));
                    queue.push_back(v);
                }
            }
        }
        let connected: Vec<usize> = (0..self.world.n())
            .filter(|&i| self.state[i] == FState::Fixed)
            .collect();
        self.world
            .msgs()
            .record(MsgKind::ConnectFlood, connected.len() as u64);
        for i in connected {
            let depth = self.tree.depth(i).expect("attached") as u64;
            self.world.msgs().record(MsgKind::Report, depth);
            self.world.msgs().record(MsgKind::AncestorList, depth);
        }
    }

    /// Sends a stranded movable back toward the base station along
    /// Algorithm 1's route (it rejoins the tree as a fixed node when
    /// absorbed).
    fn restart_walk(&mut self, i: usize) {
        let pos = self.world.pos(i);
        let legs = self.algorithm1_legs(pos);
        self.state[i] = FState::Walking;
        self.inbox[i].clear();
        self.waited[i] = 0;
        self.disconnected_periods[i] = 0;
        self.movers[i] = Some(LazyMover::new(
            Route::Multi(MultiLegPlan::with_context(
                self.nav_ctx.clone(),
                pos,
                legs,
                Hand::Right,
            )),
            self.world.time(),
        ));
        self.walk_active[i] = true;
    }

    fn plan_walk(&mut self, i: usize) {
        if self.movers[i].as_ref().is_none_or(|m| m.route.is_stuck()) {
            self.walk_active[i] = false;
            return;
        }
        let outcome = lazy_plan_step(i, &mut self.world, &mut self.movers);
        self.walk_active[i] = outcome == ConnectOutcome::Move;
    }

    fn integrate_motion(&mut self) {
        let dt = self.cfg.dt();
        let step = self.cfg.speed * dt;
        for i in 0..self.world.n() {
            match self.state[i] {
                FState::Walking if self.walk_active[i] => {
                    if let Some(m) = self.movers[i].as_mut() {
                        let before = m.route.traveled();
                        let p = m.route.advance(step);
                        let walked = m.route.traveled() - before;
                        self.world.set_pos_with_distance(i, p, walked);
                    }
                }
                FState::Relocating => {
                    let Some(r) = self.reloc[i].as_mut() else {
                        continue;
                    };
                    let before = r.nav.traveled();
                    let p = r.nav.advance(step);
                    let walked = r.nav.traveled() - before;
                    self.world.set_pos_with_distance(i, p, walked);
                    if r.nav.is_done() {
                        self.finish_relocation(i);
                    } else if r.nav.is_stuck() {
                        self.abort_relocation(i);
                    }
                }
                _ => {}
            }
        }
    }

    /// Freezes walkers entering `min(rc, 2·rs)` of the tree (§5.2),
    /// chaining until a fixed point; new members report to the base.
    fn absorb_connections(&mut self) {
        let n = self.world.n();
        let base = self.cfg.base;
        loop {
            let mut newly: Vec<(usize, Parent)> = Vec::new();
            for i in 0..n {
                if self.state[i] != FState::Walking {
                    continue;
                }
                if self.world.pos(i).dist(base) <= self.stop_dist {
                    newly.push((i, Parent::Base));
                    continue;
                }
                let mut best: Option<(usize, f64)> = None;
                // Grid-ordered query: the historical per-round grid
                // used a stop-distance cell, and the first-minimum
                // fold below tie-breaks on scan order.
                let stop_cell = self.stop_dist.max(1.0);
                for j in self
                    .world
                    .neighbors_tracked_grid_order(i, self.stop_dist, stop_cell)
                {
                    if self.tree.in_tree(j) {
                        let d = self.world.pos(i).dist(self.world.pos(j));
                        if best.is_none_or(|(_, bd)| d < bd) {
                            best = Some((j, d));
                        }
                    }
                }
                if let Some((j, _)) = best {
                    newly.push((i, Parent::Node(j)));
                }
            }
            if newly.is_empty() {
                break;
            }
            for (i, parent) in newly {
                if self.state[i] != FState::Walking {
                    continue;
                }
                self.state[i] = FState::Fixed;
                self.tree.attach(i, parent);
                self.movers[i] = None;
                let depth = self.tree.depth(i).expect("attached") as u64;
                self.world.msgs().record(MsgKind::ConnectFlood, 1);
                self.world.msgs().record(MsgKind::Report, depth);
                self.world.msgs().record(MsgKind::AncestorList, depth);
                if self.classified {
                    // Late arrivals get the same §5.3 test immediately:
                    // a childless newcomer whose disk is already covered
                    // by others joins the movable pool instead of
                    // ossifying where it happens to stand.
                    if self.exclusive_fraction(i) < self.params.movable_threshold {
                        self.tree.detach(i);
                        self.state[i] = FState::Movable;
                        self.waited[i] = 0;
                        self.disconnected_periods[i] = 0;
                    } else {
                        self.registry.register_real(i, self.world.pos(i));
                    }
                }
            }
        }
    }

    /// Phase 2 (§5.3): serialized movable/fixed classification.
    fn classify(&mut self) {
        self.classified = true;
        let n = self.world.n();
        // Serialized DFS traversal from the base's direct children.
        // Classification decisions ride on the token's way back up
        // (post-order): leaves decide first, so a departing subtree no
        // longer pins its ancestors with children to re-home.
        let mut order = Vec::new();
        let mut stack: Vec<usize> = (0..n)
            .filter(|&i| matches!(self.tree.parent(i), Parent::Base))
            .collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            stack.extend_from_slice(self.tree.children(u));
        }
        order.reverse();
        // Token walks down and back up every tree edge.
        self.world
            .msgs()
            .record(MsgKind::ClassifyToken, 2 * order.len() as u64);

        for &i in &order {
            if !self.tree.in_tree(i) {
                continue;
            }
            // (b) first the cheap test: its exclusively covered area
            // must be small, otherwise moving it away costs coverage.
            if self.exclusive_fraction(i) >= self.params.movable_threshold {
                continue;
            }
            // (a) every child must find a loop-free substitute parent
            // among its neighbors. Children are re-homed one at a time
            // against the *current* tree (earlier re-homes change what
            // is loop-free); if any child is stranded, the ones already
            // moved return to `i` and `i` stays fixed.
            let kids: Vec<usize> = self.tree.children(i).to_vec();
            let mut rehomed: Vec<usize> = Vec::with_capacity(kids.len());
            let mut ok = true;
            for &c in &kids {
                let mut found: Option<(usize, f64)> = None;
                for j in self.world.adjacency().neighbors(c).to_vec() {
                    if j == i || !self.tree.in_tree(j) || self.tree.would_create_loop(c, j) {
                        continue;
                    }
                    let d = self.world.pos(c).dist(self.world.pos(j));
                    if d <= self.stop_dist && found.is_none_or(|(_, bd)| d < bd) {
                        found = Some((j, d));
                    }
                }
                match found {
                    Some((j, _)) => {
                        self.tree.reparent(c, Parent::Node(j));
                        rehomed.push(c);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                for c in rehomed {
                    self.tree.reparent(c, Parent::Node(i));
                }
                continue;
            }
            self.tree.detach(i);
            self.state[i] = FState::Movable;
        }
        // Fixed survivors register with their floor headers.
        for i in 0..n {
            if self.state[i] == FState::Fixed {
                self.registry.register_real(i, self.world.pos(i));
            }
        }
    }

    /// Fraction of sensor `i`'s disk covered by no other attached
    /// sensor, estimated on a fixed sample pattern.
    fn exclusive_fraction(&mut self, i: usize) -> f64 {
        let pos = self.world.pos(i);
        let rs = self.cfg.rs;
        // 2·rs can exceed the index's rc cell — the query stays exact,
        // it just scans a wider cell window; and the `any` fold below
        // is order-insensitive, so no grid-order emulation is needed.
        let neighbors: Vec<Point> = self
            .world
            .neighbors_tracked(i, 2.0 * rs)
            .into_iter()
            .filter(|&j| self.tree.in_tree(j))
            .map(|j| self.world.pos(j))
            .collect();
        let mut exclusive = 0usize;
        let mut total = 0usize;
        let mut visit = |p: Point| {
            total += 1;
            if !neighbors.iter().any(|q| q.dist(p) <= rs) {
                exclusive += 1;
            }
        };
        visit(pos);
        for ring in [0.5, 0.9] {
            for k in 0..8 {
                let ang = k as f64 * std::f64::consts::TAU / 8.0;
                visit(pos + Point::from_angle(ang) * (ring * rs));
            }
        }
        exclusive as f64 / total as f64
    }

    /// Phase 3 per-period step of a fixed node: maintain its set of
    /// concurrent EPs and invite movables for each (§5.5).
    fn expansion_step(&mut self, i: usize) {
        if self.idle_search[i] >= self.params.idle_stop_periods {
            return;
        }
        // Drop EPs that were claimed meanwhile (the inviter "can
        // continue to find movable sensors to relocate to B and C");
        // an EP that exhausted its invitations marks the node idle.
        let mut exhausted = false;
        let rho = self.rho;
        let registry = &self.registry;
        let max_invites = self.params.max_invites_per_ep;
        self.active_eps[i].retain(|a| {
            if registry.is_reserved(a.ep.pos, 0.5 * rho) {
                return false;
            }
            if a.invites_sent >= max_invites {
                exhausted = true;
                return false;
            }
            true
        });
        if exhausted && self.active_eps[i].is_empty() {
            self.idle_search[i] = self.params.idle_stop_periods;
            return;
        }
        // Top up with fresh discoveries — from the node itself and
        // from every virtual fixed node it planted whose recruit is
        // still traveling (the vine tip keeps advancing meanwhile).
        if self.active_eps[i].len() < self.params.max_concurrent_eps {
            let room = self.params.max_concurrent_eps - self.active_eps[i].len();
            let mut fresh = self.discover_eps(i, room);
            if fresh.len() < room {
                let tips: Vec<VirtualTip> =
                    self.tips.iter().copied().filter(|t| t.owner == i).collect();
                for tip in tips {
                    if fresh.len() >= room {
                        break;
                    }
                    for ep in self.discover_from_tip(i, tip, room - fresh.len()) {
                        let dup = fresh
                            .iter()
                            .any(|e: &ExpansionPoint| e.pos.dist(ep.pos) < 0.5 * self.rho)
                            || self.active_eps[i]
                                .iter()
                                .any(|a| a.ep.pos.dist(ep.pos) < 0.5 * self.rho);
                        if !dup {
                            fresh.push(ep);
                        }
                    }
                }
            }
            if fresh.is_empty() && self.active_eps[i].is_empty() {
                self.idle_search[i] += 1;
                return;
            }
            for ep in fresh {
                self.active_eps[i].push(ActiveEp {
                    ep,
                    invites_sent: 0,
                });
            }
        }
        self.idle_search[i] = 0;
        // One invitation walk per active EP per period.
        for k in 0..self.active_eps[i].len() {
            self.active_eps[i][k].invites_sent += 1;
            let ep = self.active_eps[i][k].ep;
            self.send_invitation(i, ep);
        }
    }

    /// EP discovery in priority order FLG > BLG > IFLG (§5.5.1),
    /// returning up to `room` fresh EPs not yet pursued by this node.
    fn discover_eps(&mut self, i: usize, room: usize) -> Vec<ExpansionPoint> {
        let pos = self.world.pos(i);
        let rs = self.cfg.rs;
        let mut out: Vec<ExpansionPoint> = Vec::new();
        let push = |sim: &Self, out: &mut Vec<ExpansionPoint>, ep: ExpansionPoint| {
            let dup = out.iter().any(|e| e.pos.dist(ep.pos) < 0.5 * sim.rho)
                || sim.active_eps[i]
                    .iter()
                    .any(|a| a.ep.pos.dist(ep.pos) < 0.5 * sim.rho);
            if !dup {
                out.push(ep);
            }
        };
        // FLG: uncovered endpoints of the floor-line chord.
        for frontier in flg_frontiers(pos, rs, self.registry.lines()) {
            if out.len() >= room {
                return out;
            }
            if let Some(ep) = self.try_frontier(i, pos, frontier, EpKind::Flg) {
                push(self, &mut out, ep);
            }
        }
        // BLG: frontier on an obstacle or field boundary.
        if self.params.enable_blg && out.len() < room {
            let frontier = {
                let field = self.field;
                blg_frontier(pos, rs, field, self.world.rng())
            };
            if let Some(frontier) = frontier {
                if let Some(ep) = self.try_frontier(i, pos, frontier, EpKind::Blg) {
                    push(self, &mut out, ep);
                }
            }
        }
        // IFLG: holes between same-floor parent/child pairs.
        if self.params.enable_iflg && out.len() < room {
            let my_floor = self.registry.lines().floor_index(pos.y);
            let kids: Vec<usize> = self.tree.children(i).to_vec();
            'kids: for c in kids {
                let cpos = self.world.pos(c);
                if self.registry.lines().floor_index(cpos.y) != my_floor {
                    continue;
                }
                for cand in iflg_candidates(pos, cpos, self.rho) {
                    if out.len() >= room {
                        break 'kids;
                    }
                    if self.field.is_free(cand)
                        && !self.point_covered(i, cand, &[i, c])
                        && !self.registry.is_reserved(cand, 0.5 * self.rho)
                    {
                        let ep = ExpansionPoint {
                            pos: self.nudge_free(cand),
                            kind: EpKind::Iflg,
                            frontier: cand,
                        };
                        push(self, &mut out, ep);
                    }
                }
            }
        }
        out
    }

    /// EP discovery anchored at a virtual fixed node the recruit has
    /// not reached yet: FLG along the tip's floor line and BLG along
    /// boundaries in the tip's sensing range.
    fn discover_from_tip(
        &mut self,
        owner: usize,
        tip: VirtualTip,
        room: usize,
    ) -> Vec<ExpansionPoint> {
        let rs = self.cfg.rs;
        let mut out = Vec::new();
        for frontier in flg_frontiers(tip.pos, rs, self.registry.lines()) {
            if out.len() >= room {
                return out;
            }
            if let Some(ep) =
                self.try_frontier_from(owner, tip.pos, frontier, EpKind::Flg, &[owner, tip.recruit])
            {
                out.push(ep);
            }
        }
        if self.params.enable_blg && out.len() < room {
            let frontier = {
                let field = self.field;
                blg_frontier(tip.pos, rs, field, self.world.rng())
            };
            if let Some(frontier) = frontier {
                if let Some(ep) = self.try_frontier_from(
                    owner,
                    tip.pos,
                    frontier,
                    EpKind::Blg,
                    &[owner, tip.recruit],
                ) {
                    out.push(ep);
                }
            }
        }
        out
    }

    /// Checks a frontier point and converts it into an EP on the
    /// expansion circle if it is valid and uncovered.
    fn try_frontier(
        &mut self,
        i: usize,
        pos: Point,
        frontier: Point,
        kind: EpKind,
    ) -> Option<ExpansionPoint> {
        self.try_frontier_from(i, pos, frontier, kind, &[i])
    }

    /// Like [`FloorSim::try_frontier`] with an explicit anchor point
    /// (a virtual tip) and exclusion list.
    fn try_frontier_from(
        &mut self,
        querier: usize,
        origin: Point,
        frontier: Point,
        kind: EpKind,
        exclude: &[usize],
    ) -> Option<ExpansionPoint> {
        if !self.field.bounds().contains(frontier) || !self.field.is_free(frontier) {
            return None;
        }
        if self.point_covered(querier, frontier, exclude) {
            return None;
        }
        let ep = self.nudge_free(ep_toward(origin, frontier, self.rho));
        if !self.field.is_free(ep) || self.registry.is_reserved(ep, 0.5 * self.rho) {
            return None;
        }
        Some(ExpansionPoint {
            pos: ep,
            kind,
            frontier,
        })
    }

    /// §5.4 coverage-status determination for a point: local check
    /// first, then tree-routed queries to the relevant floor headers.
    /// `exclude` lists sensors whose own disks must not answer (the
    /// querier; for IFLG also the child sharing the hole).
    fn point_covered(&mut self, querier: usize, p: Point, exclude: &[usize]) -> bool {
        let rs = self.cfg.rs;
        // Local: any fixed neighbor within communication range already
        // covering the point answers for free.
        for j in self.world.neighbors_tracked(querier, self.cfg.rc) {
            if self.state[j] == FState::Fixed
                && !exclude.contains(&j)
                && self.world.pos(j).dist(p) <= rs
            {
                return true;
            }
        }
        // Remote: ask each floor header whose band could cover p.
        let floors = self.registry.query_floors(p);
        for k in floors {
            let Some(header) = self.registry.header(k) else {
                continue;
            };
            if header == querier {
                continue;
            }
            let hops = self.tree.tree_hops(querier, header) as u64;
            self.world.msgs().record(MsgKind::CoverageQuery, hops);
            self.world.msgs().record(MsgKind::CoverageReply, hops);
        }
        self.registry.covers_excluding(p, rs, exclude)
    }

    /// Pushes a point out of obstacle clearance so BUG2 can reach it.
    fn nudge_free(&self, p: Point) -> Point {
        let clearance = msn_nav::DEFAULT_CLEARANCE + 0.1;
        let mut out = self.field.clamp(p);
        if let Some(bp) = self.field.nearest_obstacle_point(out) {
            let d = out.dist(bp);
            if d < clearance {
                if let Some(dir) = (out - bp).normalized() {
                    out = self.field.clamp(bp + dir * clearance);
                }
            }
        }
        out
    }

    /// Sends one TTL random-walk invitation; movable sensors along the
    /// walk collect it (§5.5.2).
    fn send_invitation(&mut self, i: usize, ep: ExpansionPoint) {
        let visits = {
            let (graph, rng) = self.world.adjacency_and_rng();
            random_walk(graph, i, self.ttl, rng)
        };
        self.world
            .msgs()
            .record(MsgKind::Invitation, visits.len() as u64);
        for v in visits {
            if self.state[v] == FState::Movable
                && !self.inbox[v]
                    .iter()
                    .any(|inv| inv.inviter == i && inv.ep.pos.approx_eq(ep.pos))
            {
                self.inbox[v].push(Invite { ep, inviter: i });
            }
        }
    }

    /// Per-period step of a movable sensor: commit to the best
    /// invitation once the quorum (or patience) is reached.
    fn movable_step(&mut self, i: usize) {
        if self.inbox[i].is_empty() {
            return;
        }
        self.waited[i] += 1;
        if self.inbox[i].len() < self.params.quorum && self.waited[i] < self.params.patience {
            return;
        }
        // Highest priority (FLG < BLG < IFLG in enum order), then the
        // closest EP.
        let my_pos = self.world.pos(i);
        let best = *self.inbox[i]
            .iter()
            .min_by(|a, b| {
                (a.ep.kind, a.ep.pos.dist(my_pos))
                    .partial_cmp(&(b.ep.kind, b.ep.pos.dist(my_pos)))
                    .expect("finite")
            })
            .expect("inbox non-empty");
        let hops = self.world.adjacency().hop_distances(i)[best.inviter];
        let hops = if hops == usize::MAX { 0 } else { hops as u64 };
        self.world.msgs().record(MsgKind::AcceptInvitation, hops);
        // Inviter-side check: EP still unclaimed?
        if self.registry.is_reserved(best.ep.pos, 0.5 * self.rho) {
            self.world.msgs().record(MsgKind::Reject, hops);
            self.inbox[i]
                .retain(|inv| !(inv.inviter == best.inviter && inv.ep.pos.approx_eq(best.ep.pos)));
            self.waited[i] = 0;
            return;
        }
        self.world.msgs().record(MsgKind::Acknowledge, hops);
        let token = self.registry.add_virtual(best.ep.pos, i);
        self.tips.push(VirtualTip {
            pos: best.ep.pos,
            recruit: i,
            owner: best.inviter,
        });
        // The inviter updates its ancestors' location records on behalf
        // of the virtual node.
        if let Some(depth) = self.tree.depth(best.inviter) {
            self.world
                .msgs()
                .record(MsgKind::LocationUpdate, depth as u64);
        }
        self.reloc[i] = Some(Reloc {
            nav: Navigator::with_context(self.nav_ctx.clone(), my_pos, best.ep.pos, Hand::Right),
            token,
            inviter: best.inviter,
        });
        self.state[i] = FState::Relocating;
        self.inbox[i].clear();
        self.waited[i] = 0;
        // The inviter is free to pursue its next EP.
        self.active_eps[best.inviter].retain(|a| !a.ep.pos.approx_eq(best.ep.pos));
        self.idle_search[best.inviter] = 0;
    }

    /// A recruit arrived at its EP: become fixed, join the tree,
    /// register with the floor header (§5.5.2).
    fn finish_relocation(&mut self, i: usize) {
        let r = self.reloc[i].take().expect("relocating");
        self.tips.retain(|t| t.recruit != i);
        let pos = self.world.pos(i);
        self.state[i] = FState::Fixed;
        self.registry.fulfill_virtual(r.token, i, pos);
        // Parent: the inviter if possible, otherwise the nearest
        // attached sensor in range.
        let parent = if self.tree.in_tree(r.inviter)
            && self.world.pos(r.inviter).dist(pos) <= self.cfg.rc + 1e-6
            && !self.tree.would_create_loop(i, r.inviter)
        {
            Some(Parent::Node(r.inviter))
        } else {
            self.world
                .neighbors_tracked(i, self.cfg.rc)
                .into_iter()
                .filter(|&j| self.tree.in_tree(j) && !self.tree.would_create_loop(i, j))
                .min_by(|&a, &b| {
                    self.world
                        .pos(a)
                        .dist(pos)
                        .partial_cmp(&self.world.pos(b).dist(pos))
                        .expect("finite")
                })
                .map(Parent::Node)
        };
        match parent {
            Some(p) => self.tree.attach(i, p),
            None => {
                // Degenerate: nothing in range (should not happen, the
                // inviter was within the expansion radius). Attach
                // directly under the base to keep the tree consistent.
                self.tree.attach(i, Parent::Base);
            }
        }
        let depth = self.tree.depth(i).expect("attached") as u64;
        self.world.msgs().record(MsgKind::LocationUpdate, depth);
        // Fresh fixed nodes start searching immediately.
        self.idle_search[i] = 0;
    }

    /// The recruit could not reach its EP: release the reservation and
    /// return to the movable pool.
    fn abort_relocation(&mut self, i: usize) {
        let r = self.reloc[i].take().expect("relocating");
        self.tips.retain(|t| t.recruit != i);
        self.registry.release_virtual(r.token);
        self.state[i] = FState::Movable;
        self.waited[i] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_field::{paper_field, scatter_clustered, two_obstacle_field};
    use msn_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn clustered(field: &Field, n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        scatter_clustered(field, Rect::new(0.0, 0.0, side, side), n, &mut rng)
    }

    fn short_cfg(rc: f64, rs: f64, dur: f64) -> SimConfig {
        SimConfig::paper(rc, rs)
            .with_duration(dur)
            .with_coverage_cell(10.0)
    }

    #[test]
    fn stays_connected_and_covers() {
        let field = Field::open(400.0, 400.0);
        let initial = clustered(&field, 30, 150.0, 1);
        let r = run(
            &field,
            &initial,
            &FloorParams::default(),
            &short_cfg(60.0, 40.0, 120.0),
        );
        assert!(r.connected, "FLOOR must end connected");
        assert!(r.coverage > 0.1, "coverage {}", r.coverage);
        assert!(r.messages.total() > 0);
    }

    #[test]
    fn expansion_grows_coverage_over_time() {
        let field = Field::open(400.0, 400.0);
        let initial = clustered(&field, 40, 120.0, 2);
        let r = run(
            &field,
            &initial,
            &FloorParams::default(),
            &short_cfg(60.0, 40.0, 200.0),
        );
        let early = r.coverage_timeline[0].1;
        assert!(
            r.coverage > early + 0.03,
            "vine must grow: {} -> {}",
            early,
            r.coverage
        );
    }

    #[test]
    fn small_rc_still_connects() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 25, 100.0, 3);
        // Recruits may still be traveling at a mid-deployment snapshot;
        // by 300 s this scenario has fully converged.
        let r = run(
            &field,
            &initial,
            &FloorParams::default(),
            &short_cfg(30.0, 40.0, 300.0),
        );
        assert!(r.connected, "connectivity must hold for rc < rs");
    }

    #[test]
    fn handles_obstacles() {
        let field = two_obstacle_field();
        let initial = clustered(&field, 40, 400.0, 4);
        // Algorithm 1's waypoint detours make the walk-in phase slower
        // than CPVF's straight-line approach: give it time.
        let cfg = SimConfig::paper(60.0, 40.0)
            .with_duration(350.0)
            .with_coverage_cell(10.0);
        let r = run(&field, &initial, &FloorParams::default(), &cfg);
        assert!(r.connected);
        assert!(r.coverage > 0.05);
    }

    #[test]
    fn invitations_are_sent_and_answered() {
        let field = Field::open(400.0, 400.0);
        let initial = clustered(&field, 40, 120.0, 5);
        let r = run(
            &field,
            &initial,
            &FloorParams::default(),
            &short_cfg(60.0, 40.0, 150.0),
        );
        assert!(r.messages.count(msn_net::MsgKind::Invitation) > 0);
        assert!(r.messages.count(msn_net::MsgKind::Acknowledge) > 0);
    }

    #[test]
    fn larger_ttl_costs_more_messages() {
        let field = Field::open(400.0, 400.0);
        let initial = clustered(&field, 40, 120.0, 6);
        let cfg = short_cfg(60.0, 40.0, 100.0);
        let small = run(
            &field,
            &initial,
            &FloorParams {
                invitation_ttl: Some(4),
                ..FloorParams::default()
            },
            &cfg,
        );
        let large = run(
            &field,
            &initial,
            &FloorParams {
                invitation_ttl: Some(16),
                ..FloorParams::default()
            },
            &cfg,
        );
        assert!(
            large.messages.count(msn_net::MsgKind::Invitation)
                > small.messages.count(msn_net::MsgKind::Invitation)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let field = Field::open(300.0, 300.0);
        let initial = clustered(&field, 20, 100.0, 7);
        let cfg = short_cfg(50.0, 30.0, 60.0);
        let a = run(&field, &initial, &FloorParams::default(), &cfg);
        let b = run(&field, &initial, &FloorParams::default(), &cfg);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.messages.total(), b.messages.total());
    }

    #[test]
    fn fixed_sensors_never_move_after_classification() {
        let field = paper_field();
        let initial = clustered(&field, 30, 200.0, 8);
        let r = run(
            &field,
            &initial,
            &FloorParams::default(),
            &short_cfg(60.0, 40.0, 80.0),
        );
        // Sensors fixed from t=0 (the flood-connected ones that stayed
        // fixed) have zero moving distance.
        let stationary = r
            .positions
            .iter()
            .zip(initial.iter())
            .filter(|(a, b)| a.approx_eq(**b))
            .count();
        assert!(stationary > 0, "some sensors never moved");
    }
}
