//! Floor-header bookkeeping (§5.4).
//!
//! Each floor's *header node* (the fixed node with the smallest x on
//! that floor) records the locations of the floor's nodes, letting any
//! sensor determine the coverage status of a point beyond its own
//! sensing range with a couple of tree-routed query messages instead
//! of flooding.

use super::FloorLines;
use msn_geom::Point;

/// A token identifying a virtual place-holder node, returned by
/// [`FloorRegistry::add_virtual`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualToken {
    floor: usize,
    slot: usize,
}

#[derive(Debug, Clone)]
struct FloorData {
    /// `(position, sensor id)` of fixed nodes registered on this floor.
    real: Vec<(Point, usize)>,
    /// Virtual place-holder nodes `(position, claiming recruit id)`;
    /// `None` slots were released or fulfilled.
    virtuals: Vec<Option<(Point, usize)>>,
}

/// Per-floor node location records plus header-node identification.
///
/// # Examples
///
/// ```
/// use msn_deploy::floor::{FloorLines, FloorRegistry};
/// use msn_geom::{Point, Rect};
///
/// let lines = FloorLines::new(Rect::new(0.0, 0.0, 400.0, 400.0), 40.0);
/// let mut reg = FloorRegistry::new(lines);
/// reg.register_real(7, Point::new(100.0, 40.0));
/// assert!(reg.covers(Point::new(120.0, 50.0), 40.0));
/// assert_eq!(reg.header(0), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct FloorRegistry {
    lines: FloorLines,
    floors: Vec<FloorData>,
}

impl FloorRegistry {
    /// An empty registry over the given floor decomposition.
    pub fn new(lines: FloorLines) -> Self {
        let floors = vec![
            FloorData {
                real: Vec::new(),
                virtuals: Vec::new(),
            };
            lines.count()
        ];
        FloorRegistry { lines, floors }
    }

    /// The floor decomposition.
    pub fn lines(&self) -> &FloorLines {
        &self.lines
    }

    /// Registers a fixed node at `pos` (floor derived from the
    /// position).
    pub fn register_real(&mut self, id: usize, pos: Point) {
        let k = self.lines.floor_index(pos.y);
        self.floors[k].real.push((pos, id));
    }

    /// Reserves `pos` with a virtual place-holder node (§5.5.2) for
    /// the recruit `claimed_by`; returns a token to release or fulfill
    /// it later.
    pub fn add_virtual(&mut self, pos: Point, claimed_by: usize) -> VirtualToken {
        let k = self.lines.floor_index(pos.y);
        let data = &mut self.floors[k];
        if let Some(slot) = data.virtuals.iter().position(Option::is_none) {
            data.virtuals[slot] = Some((pos, claimed_by));
            return VirtualToken { floor: k, slot };
        }
        data.virtuals.push(Some((pos, claimed_by)));
        VirtualToken {
            floor: k,
            slot: data.virtuals.len() - 1,
        }
    }

    /// Releases a virtual node (recruit gave up).
    pub fn release_virtual(&mut self, token: VirtualToken) {
        self.floors[token.floor].virtuals[token.slot] = None;
    }

    /// Replaces a virtual node with the arrived recruit's real
    /// registration.
    pub fn fulfill_virtual(&mut self, token: VirtualToken, id: usize, pos: Point) {
        self.release_virtual(token);
        self.register_real(id, pos);
    }

    /// Returns `true` if any registered node (real or virtual) covers
    /// `p` with sensing radius `rs`.
    pub fn covers(&self, p: Point, rs: f64) -> bool {
        self.covers_excluding(p, rs, &[])
    }

    /// Like [`FloorRegistry::covers`] but ignoring the registrations of
    /// the given sensor ids — §5.4 asks whether a point is covered *by
    /// other sensors*, so the querier (and, for IFLG, its child)
    /// must not answer for itself. Virtual nodes always count.
    pub fn covers_excluding(&self, p: Point, rs: f64, exclude: &[usize]) -> bool {
        let rs_sq = rs * rs;
        self.lines.floors_covering(p.y).any(|k| {
            let data = &self.floors[k];
            data.real
                .iter()
                .any(|(q, id)| !exclude.contains(id) && q.dist_sq(p) <= rs_sq)
                || data
                    .virtuals
                    .iter()
                    .flatten()
                    .any(|(q, id)| !exclude.contains(id) && q.dist_sq(p) <= rs_sq)
        })
    }

    /// Returns `true` if a registered node (real or virtual) sits
    /// within `tol` of `p` — used to refuse double-claiming an EP.
    pub fn is_reserved(&self, p: Point, tol: f64) -> bool {
        let tol_sq = tol * tol;
        self.lines.floors_covering(p.y).any(|k| {
            let data = &self.floors[k];
            data.real.iter().any(|(q, _)| q.dist_sq(p) <= tol_sq)
                || data
                    .virtuals
                    .iter()
                    .flatten()
                    .any(|(q, _)| q.dist_sq(p) <= tol_sq)
        })
    }

    /// The header node of floor `k`: the registered fixed node with
    /// the smallest x (ties by id). `None` while the floor is empty.
    pub fn header(&self, k: usize) -> Option<usize> {
        self.floors[k]
            .real
            .iter()
            .min_by(|(a, ia), (b, ib)| a.x.partial_cmp(&b.x).expect("finite").then(ia.cmp(ib)))
            .map(|&(_, id)| id)
    }

    /// Number of real nodes registered on floor `k`.
    pub fn floor_population(&self, k: usize) -> usize {
        self.floors[k].real.len()
    }

    /// Floors a coverage query for `p` must consult (§5.4): those
    /// whose band could hold a covering node.
    pub fn query_floors(&self, p: Point) -> Vec<usize> {
        self.lines.floors_covering(p.y).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;

    fn registry() -> FloorRegistry {
        FloorRegistry::new(FloorLines::new(Rect::new(0.0, 0.0, 400.0, 400.0), 40.0))
    }

    #[test]
    fn register_and_cover() {
        let mut reg = registry();
        reg.register_real(1, Point::new(100.0, 40.0));
        assert!(reg.covers(Point::new(130.0, 40.0), 40.0));
        assert!(!reg.covers(Point::new(200.0, 40.0), 40.0));
        assert_eq!(reg.floor_population(0), 1);
        assert_eq!(reg.floor_population(1), 0);
    }

    #[test]
    fn header_is_min_x() {
        let mut reg = registry();
        reg.register_real(5, Point::new(100.0, 40.0));
        reg.register_real(9, Point::new(60.0, 50.0));
        assert_eq!(reg.header(0), Some(9));
        assert_eq!(reg.header(1), None);
    }

    #[test]
    fn virtual_lifecycle() {
        let mut reg = registry();
        let ep = Point::new(80.0, 40.0);
        let token = reg.add_virtual(ep, 42);
        assert!(reg.is_reserved(ep, 1.0));
        assert!(reg.covers(ep, 10.0));
        // fulfilled: becomes a real registration
        reg.fulfill_virtual(token, 3, ep);
        assert!(reg.is_reserved(ep, 1.0));
        assert_eq!(reg.header(0), Some(3));
    }

    #[test]
    fn released_virtual_frees_the_spot() {
        let mut reg = registry();
        let ep = Point::new(80.0, 40.0);
        let token = reg.add_virtual(ep, 42);
        reg.release_virtual(token);
        assert!(!reg.is_reserved(ep, 1.0));
        // slot is recycled
        let t2 = reg.add_virtual(Point::new(90.0, 40.0), 43);
        assert_eq!(t2, VirtualToken { floor: 0, slot: 0 });
    }

    #[test]
    fn cross_floor_coverage() {
        let mut reg = registry();
        // node near the top of floor 0 can cover points in floor 1
        reg.register_real(2, Point::new(100.0, 75.0));
        assert!(reg.covers(Point::new(100.0, 100.0), 40.0));
        let floors = reg.query_floors(Point::new(100.0, 100.0));
        assert!(floors.contains(&0) && floors.contains(&1));
    }
}
