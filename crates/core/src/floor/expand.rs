//! Expansion-point discovery (§5.5.1).
//!
//! A fixed sensor searches its *expansion circle* — radius
//! `min(rc, rs)` around itself — for spots to plant a recruited
//! movable sensor:
//!
//! * **FLG** (floor-line-guided): the uncovered endpoint of the floor
//!   line chord inside its sensing disk, preferring the endpoint
//!   farthest from the y-axis;
//! * **BLG** (boundary-guided): a frontier on an obstacle or field
//!   boundary, found by walking the boundary in the *left-hand-rule*
//!   direction to the sensing circle;
//! * **IFLG** (inter-floor-line-guided): a hole between a parent and
//!   child on the same floor, filled at the intersection of their
//!   expansion circles.
//!
//! Priorities: FLG > BLG > IFLG (FLG yields the most coverage per
//! move).

use super::FloorLines;
use msn_field::Field;
use msn_geom::{Circle, Point, Segment};
use rand::Rng;

/// The three expansion patterns, in descending priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EpKind {
    /// Floor-line-guided (highest priority).
    Flg,
    /// Boundary-line-guided.
    Blg,
    /// Inter-floor-line-guided (lowest priority).
    Iflg,
}

impl std::fmt::Display for EpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EpKind::Flg => write!(f, "FLG"),
            EpKind::Blg => write!(f, "BLG"),
            EpKind::Iflg => write!(f, "IFLG"),
        }
    }
}

/// A discovered expansion point: where to plant a recruit, which
/// pattern found it, and the frontier point that motivated it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionPoint {
    /// Where the recruit should relocate to.
    pub pos: Point,
    /// Which expansion pattern produced it.
    pub kind: EpKind,
    /// The frontier point whose coverage status was checked.
    pub frontier: Point,
}

/// The expansion-circle radius: `min(rc, 2·rs)`.
///
/// §5.5.1's text says `min(rc, rs)`, but that spacing cannot reproduce
/// the paper's own Figure 8(a): 240 sensors at 40 m spacing cover at
/// most 73.5 % of the square kilometer, below the reported 78.8 %.
/// With `min(rc, 2·rs)` the saturation coverage is ≈103 % of the free
/// area, matching the reported number — and it equals the phase-1
/// parent spacing, the largest separation that neither breaks the link
/// nor opens a gap on the floor line. See DESIGN.md.
pub fn expansion_radius(rc: f64, rs: f64) -> f64 {
    rc.min(2.0 * rs)
}

/// The EP on the ray from `pos` through `frontier`, at the expansion
/// circle (the frontier itself sits within the sensing range, closer
/// than the circle when `rho > rs`; the EP extends past it so the new
/// sensor still covers the frontier while maximizing fresh area).
///
/// Returns `pos` itself if the frontier coincides with `pos`.
pub fn ep_toward(pos: Point, frontier: Point, rho: f64) -> Point {
    match (frontier - pos).normalized() {
        Some(dir) => pos + dir * rho,
        None => pos,
    }
}

/// FLG frontier candidates: the endpoints of the chord that the
/// sensor's own floor line cuts through its sensing disk, the
/// farther-from-the-y-axis endpoint first (§5.5.1's preference).
///
/// Empty when the floor line misses the sensing disk.
pub fn flg_frontiers(pos: Point, rs: f64, lines: &FloorLines) -> Vec<Point> {
    let fl = lines.nearest_line_y(pos.y);
    let dy = (pos.y - fl).abs();
    if dy >= rs {
        return Vec::new();
    }
    let half = (rs * rs - dy * dy).sqrt();
    let right = Point::new(pos.x + half, fl);
    let left = Point::new(pos.x - half, fl);
    // "farthest to the y-axis" = larger |x|
    if right.x.abs() >= left.x.abs() {
        vec![right, left]
    } else {
        vec![left, right]
    }
}

/// BLG frontier: picks a random boundary segment (obstacle edge or
/// field edge) whose chord crosses the sensing disk and walks to the
/// chord endpoint in the left-hand-rule direction.
///
/// Obstacle polygons are CCW, so the left-hand walk follows the edge
/// direction; the field's outer boundary is walked in reverse (the
/// wall is on the *left* seen from inside the field).
pub fn blg_frontier<R: Rng>(pos: Point, rs: f64, field: &Field, rng: &mut R) -> Option<Point> {
    let disk = Circle::new(pos, rs);
    let mut frontiers: Vec<Point> = Vec::new();
    for obstacle in field.obstacles() {
        for edge in obstacle.edges() {
            if let Some(chord) = clip_chord(&disk, edge) {
                // left-hand rule on a CCW obstacle: walk with the edge.
                frontiers.push(chord.b);
            }
        }
    }
    for edge in field.bounds().to_polygon().edges() {
        if let Some(chord) = clip_chord(&disk, edge) {
            // left-hand rule on the outer wall: walk against the edge.
            frontiers.push(chord.a);
        }
    }
    if frontiers.is_empty() {
        return None;
    }
    Some(frontiers[rng.gen_range(0..frontiers.len())])
}

fn clip_chord(disk: &Circle, edge: Segment) -> Option<Segment> {
    let chord = disk.clip_segment(edge)?;
    (chord.length() > 1e-6).then_some(chord)
}

/// IFLG candidates: the two intersection points of the expansion
/// circles around `pos` and `peer` (a parent/child pair on the same
/// floor) — one toward each inter-floor line. Empty when the pair is
/// too far apart (`> 2·rho`) or coincident.
pub fn iflg_candidates(pos: Point, peer: Point, rho: f64) -> Vec<Point> {
    Circle::new(pos, rho).intersect_circle(&Circle::new(peer, rho))
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_geom::Rect;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lines() -> FloorLines {
        FloorLines::new(Rect::new(0.0, 0.0, 1000.0, 1000.0), 40.0)
    }

    #[test]
    fn expansion_radius_is_min_rc_2rs() {
        assert_eq!(expansion_radius(60.0, 40.0), 60.0);
        assert_eq!(expansion_radius(30.0, 40.0), 30.0);
        assert_eq!(expansion_radius(240.0, 60.0), 120.0);
    }

    #[test]
    fn flg_on_the_line_gives_full_chord() {
        // sensor exactly on floor line 0 (y = 40)
        let f = flg_frontiers(Point::new(200.0, 40.0), 40.0, &lines());
        assert_eq!(f.len(), 2);
        assert!(
            f[0].approx_eq(Point::new(240.0, 40.0)),
            "far end first: {}",
            f[0]
        );
        assert!(f[1].approx_eq(Point::new(160.0, 40.0)));
    }

    #[test]
    fn flg_off_the_line_shortens_chord() {
        let f = flg_frontiers(Point::new(200.0, 60.0), 40.0, &lines());
        assert_eq!(f.len(), 2);
        let half = (40f64.powi(2) - 20.0 * 20.0).sqrt();
        assert!((f[0].x - (200.0 + half)).abs() < 1e-9);
        assert_eq!(f[0].y, 40.0);
    }

    #[test]
    fn flg_far_from_line_is_empty() {
        // A sensor exactly on a floor *boundary* is rs away from its
        // floor line — the chord degenerates to nothing. (Everywhere
        // else the own floor line is strictly within rs.)
        let f = flg_frontiers(Point::new(200.0, 160.0), 40.0, &lines());
        assert!(f.is_empty());
    }

    #[test]
    fn ep_toward_lands_on_the_expansion_circle() {
        let pos = Point::new(0.0, 0.0);
        let frontier = Point::new(100.0, 0.0);
        assert!(ep_toward(pos, frontier, 40.0).approx_eq(Point::new(40.0, 0.0)));
        // a frontier inside the circle still yields an EP on the circle
        let near = Point::new(10.0, 0.0);
        assert!(ep_toward(pos, near, 60.0).approx_eq(Point::new(60.0, 0.0)));
        // degenerate: frontier == pos
        assert!(ep_toward(pos, pos, 60.0).approx_eq(pos));
    }

    #[test]
    fn blg_finds_obstacle_frontier() {
        let field = Field::with_obstacles(
            1000.0,
            1000.0,
            vec![Rect::new(300.0, 300.0, 400.0, 400.0).to_polygon()],
        );
        let mut rng = SmallRng::seed_from_u64(1);
        // sensor just left of the obstacle's left wall
        let f = blg_frontier(Point::new(280.0, 350.0), 40.0, &field, &mut rng);
        let p = f.expect("wall within sensing range");
        assert!((p.x - 300.0).abs() < 1e-6, "frontier on the wall: {p}");
    }

    #[test]
    fn blg_none_when_no_boundary_in_range() {
        let field = Field::open(1000.0, 1000.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(blg_frontier(Point::new(500.0, 500.0), 40.0, &field, &mut rng).is_none());
    }

    #[test]
    fn blg_field_edge_direction_is_left_hand() {
        // Sensor near the bottom edge, which runs (0,0) -> (1000,0) CCW.
        // Left-hand walking from inside goes along -x, so the frontier is
        // the chord endpoint with smaller x (chord.a preserves edge
        // direction, which points +x, so chord.a is the -x end).
        let field = Field::open(1000.0, 1000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let pos = Point::new(500.0, 20.0);
        let f = blg_frontier(pos, 40.0, &field, &mut rng).expect("edge in range");
        assert!(f.x < pos.x, "left-hand rule walks toward smaller x: {f}");
        assert_eq!(f.y, 0.0);
    }

    #[test]
    fn iflg_intersections_are_symmetric() {
        let a = Point::new(100.0, 40.0);
        let b = Point::new(160.0, 40.0);
        let pts = iflg_candidates(a, b, 40.0);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!((p.x - 130.0).abs() < 1e-9, "on the perpendicular bisector");
            assert!((p.dist(a) - 40.0).abs() < 1e-9);
        }
        // one above, one below the floor line
        assert!(pts[0].y != pts[1].y);
    }

    #[test]
    fn iflg_empty_when_too_far() {
        let pts = iflg_candidates(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 40.0);
        assert!(pts.is_empty());
    }
}
