//! Daemon integration: a real `scenario serve` process behind the
//! Unix socket, driven through the typed [`Client`].
//!
//! Covers the wire contract end to end (byte-identical artifacts vs.
//! an in-process run, oversized/truncated frame rejection), the
//! submission critical section (concurrent identical digests dedup to
//! exactly one job; distinct digests queue separately), and crash
//! recovery (SIGKILL mid-batch, restart, resume from checkpoint,
//! byte-identical result, dedup on resubmit).

use msn_scenario::{ApiError, Client, JobState, Request, Response, RunConfig, ScenarioSpec};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

/// A scratch directory under the system temp dir, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("msn-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn smoke_spec() -> ScenarioSpec {
    let text = std::fs::read_to_string(repo_file("scenarios/smoke.toml")).expect("read smoke spec");
    ScenarioSpec::from_toml_str(&text).expect("parse smoke spec")
}

/// A live `scenario serve` child process; killed on drop so a failing
/// test cannot leak daemons.
struct Daemon {
    child: Child,
    client: Client,
}

impl Daemon {
    fn start(scratch: &Scratch, extra: &[&str]) -> Self {
        let socket = scratch.path("scenario.sock");
        let jobs = scratch.path("jobs");
        let child = Command::new(env!("CARGO_BIN_EXE_scenario"))
            .arg("serve")
            .arg("--socket")
            .arg(&socket)
            .arg("--jobs")
            .arg(&jobs)
            .args(extra)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn scenario serve");
        let client = Client::new(&socket);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.request_timeout(&Request::Ping, Duration::from_millis(200)) {
                Ok(Response::Pong { .. }) => break,
                _ if Instant::now() > deadline => panic!("daemon never answered ping"),
                _ => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        Daemon { child, client }
    }

    fn submit(&self, spec: &ScenarioSpec) -> (String, bool) {
        match self.client.request(&Request::Submit {
            spec_toml: spec.to_toml_string(),
        }) {
            Ok(Response::Submitted { job, deduped, .. }) => (job.digest, deduped),
            other => panic!("submit answered {other:?}"),
        }
    }

    fn state(&self, digest: &str) -> JobState {
        match self.client.request(&Request::Status {
            job: digest.to_string(),
        }) {
            Ok(Response::Job { job }) => job.state,
            other => panic!("status answered {other:?}"),
        }
    }

    fn await_done(&self, digest: &str) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            match self.state(digest) {
                JobState::Done => return,
                JobState::Failed { error } => panic!("job {digest} failed: {error}"),
                _ if Instant::now() > deadline => panic!("job {digest} never finished"),
                _ => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn artifact(&self, digest: &str, name: &str) -> String {
        match self.client.request(&Request::Artifact {
            job: digest.to_string(),
            name: name.to_string(),
        }) {
            Ok(Response::Artifact { contents, .. }) => contents,
            other => panic!("artifact answered {other:?}"),
        }
    }

    fn kill_hard(&mut self) {
        // SIGKILL: no destructors, no checkpoint flush beyond what
        // already hit the disk
        self.child.kill().expect("kill daemon");
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn raw_exchange(socket: &Path, payload: &[u8]) -> String {
    let mut stream = UnixStream::connect(socket).expect("connect raw");
    stream.write_all(payload).expect("write raw frame");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut answer = String::new();
    let _ = stream.read_to_string(&mut answer);
    answer
}

#[test]
fn served_artifacts_are_byte_identical_to_a_local_run() {
    let scratch = Scratch::new("golden");
    let daemon = Daemon::start(&scratch, &[]);
    let spec = smoke_spec();

    let (digest, deduped) = daemon.submit(&spec);
    assert!(!deduped, "first submission must not dedup");
    assert_eq!(digest, spec.job_digest(), "job keyed by spec digest");
    daemon.await_done(&digest);

    let local = RunConfig::new()
        .runner()
        .run_resuming(&spec, None)
        .expect("local run");
    assert_eq!(
        daemon.artifact(&digest, "batch.json"),
        local.to_json(),
        "served batch.json must match an in-process run byte for byte"
    );
    let golden =
        std::fs::read_to_string(repo_file("tests/fixtures/smoke-batch.json")).expect("fixture");
    assert_eq!(
        daemon.artifact(&digest, "batch.json"),
        golden,
        "served batch.json must match the golden fixture"
    );

    // resubmitting the finished spec attaches to the stored job
    let (again, deduped) = daemon.submit(&spec);
    assert_eq!(again, digest);
    assert!(deduped, "identical spec must dedup onto the finished job");

    // artifact names outside the whitelist never resolve
    let answer = daemon.client.request(&Request::Artifact {
        job: digest,
        name: "../../../etc/passwd".to_string(),
    });
    assert!(
        matches!(
            answer,
            Ok(Response::Error {
                error: ApiError::NotFound(_)
            })
        ),
        "non-whitelisted artifact must answer not-found, got {answer:?}"
    );
}

#[test]
fn oversized_and_truncated_frames_are_rejected_without_wedging_the_daemon() {
    let scratch = Scratch::new("frames");
    let daemon = Daemon::start(&scratch, &[]);
    let socket = scratch.path("scenario.sock");

    // a Content-Length beyond MAX_BODY is refused before any body
    // byte is read
    let huge = format!(
        "POST /api HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        msn_scenario::MAX_BODY + 1
    );
    let answer = raw_exchange(&socket, huge.as_bytes());
    assert!(
        answer.starts_with("HTTP/1.1 400"),
        "oversized frame should answer 400, got: {answer}"
    );
    assert!(answer.contains("protocol"), "error code in body: {answer}");

    // a frame that dies mid-header gets dropped, not looped on
    let answer = raw_exchange(&socket, b"POST /api HTTP/1.1\r\nContent-Len");
    assert!(
        answer.is_empty() || answer.starts_with("HTTP/1.1 400"),
        "truncated frame should be dropped or 400'd, got: {answer}"
    );

    // and the daemon still serves the next well-formed request
    match daemon.client.request(&Request::Ping) {
        Ok(Response::Pong { .. }) => {}
        other => panic!("daemon wedged after bad frames: {other:?}"),
    }
}

#[test]
fn concurrent_submissions_dedup_identical_digests_and_queue_distinct_ones() {
    let scratch = Scratch::new("dedup");
    let daemon = Daemon::start(&scratch, &[]);
    let spec = smoke_spec();
    let socket = scratch.path("scenario.sock");

    // eight racing submissions of the same digest: exactly one may be
    // accepted as new, the rest must attach to it
    let outcomes: Vec<(String, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let spec = spec.clone();
                let socket = socket.clone();
                scope.spawn(move || {
                    match Client::new(socket).request(&Request::Submit {
                        spec_toml: spec.to_toml_string(),
                    }) {
                        Ok(Response::Submitted { job, deduped, .. }) => (job.digest, deduped),
                        other => panic!("racing submit answered {other:?}"),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let accepted = outcomes.iter().filter(|(_, deduped)| !deduped).count();
    assert_eq!(accepted, 1, "exactly one racing submission may be accepted");
    assert!(
        outcomes.iter().all(|(d, _)| *d == spec.job_digest()),
        "every racer must land on the same job"
    );

    // a different seed is a different digest: its own queue slot
    let rotated = spec.clone().with_seed(spec.seed + 1);
    let (other_digest, deduped) = daemon.submit(&rotated);
    assert!(!deduped, "distinct digest must not dedup");
    assert_ne!(other_digest, spec.job_digest());

    daemon.await_done(&spec.job_digest());
    daemon.await_done(&other_digest);
    match daemon.client.request(&Request::List) {
        Ok(Response::Jobs { jobs }) => assert_eq!(jobs.len(), 2, "two digests, two jobs"),
        other => panic!("list answered {other:?}"),
    }
}

#[test]
fn sigkill_mid_batch_resumes_on_restart_and_stays_byte_identical() {
    let scratch = Scratch::new("crash");
    // checkpoint after every run so the kill always lands past a
    // durable prefix; more repetitions so the batch outlives the kill
    // window
    let spec = smoke_spec().with_repetitions(40);
    let digest = spec.job_digest();

    let mut daemon = Daemon::start(&scratch, &["--checkpoint-every", "1"]);
    let (submitted, _) = daemon.submit(&spec);
    assert_eq!(submitted, digest);

    // wait until at least one checkpoint is durable, then pull the plug
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match daemon.state(&digest) {
            JobState::Checkpointed { runs } if runs >= 1 => break,
            JobState::Done => panic!("batch finished before the kill — raise repetitions"),
            JobState::Failed { error } => panic!("job failed before the kill: {error}"),
            _ if Instant::now() > deadline => panic!("no checkpoint before deadline"),
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    daemon.kill_hard();
    drop(daemon);

    let partial = std::fs::read_to_string(scratch.path("jobs").join(&digest).join("batch.json"))
        .expect("checkpoint survived the kill");
    assert!(!partial.is_empty(), "checkpoint must not be torn");

    // restart over the same store: recovery re-queues the job and the
    // executor resumes from the checkpoint (the dead daemon's stale
    // socket and batch lock are both stolen)
    let daemon = Daemon::start(&scratch, &["--checkpoint-every", "1"]);
    daemon.await_done(&digest);

    let local = RunConfig::new()
        .runner()
        .run_resuming(&spec, None)
        .expect("local run");
    assert_eq!(
        daemon.artifact(&digest, "batch.json"),
        local.to_json(),
        "crash + resume must not change a single output byte"
    );

    // identical resubmission after recovery attaches to the done job
    let (again, deduped) = daemon.submit(&spec);
    assert_eq!(again, digest);
    assert!(deduped, "resubmit after recovery must dedup");
}

#[test]
fn served_dynamics_spec_streams_recovery_metrics_end_to_end() {
    let scratch = Scratch::new("dynamics");
    let daemon = Daemon::start(&scratch, &[]);
    let spec_path = repo_file("scenarios/failure-recovery.toml");
    let text = std::fs::read_to_string(&spec_path).expect("read failure-recovery spec");
    let spec = ScenarioSpec::from_toml_str(&text).expect("parse failure-recovery spec");
    assert!(spec.dynamics.is_some(), "the bundled spec schedules events");

    // the CLI `submit --wait` path: blocks until the job reaches a
    // terminal state, so the artifact is ready when it returns
    let status = Command::new(env!("CARGO_BIN_EXE_scenario"))
        .arg("submit")
        .arg(&spec_path)
        .arg("--socket")
        .arg(scratch.path("scenario.sock"))
        .arg("--wait")
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run scenario submit --wait");
    assert!(status.success(), "submit --wait must exit zero");
    let digest = spec.job_digest();
    daemon.await_done(&digest);

    let served = daemon.artifact(&digest, "batch.json");
    let local = RunConfig::new()
        .runner()
        .run_resuming(&spec, None)
        .expect("local run");
    assert_eq!(
        served,
        local.to_json(),
        "served dynamic batch must match an in-process run byte for byte"
    );
    assert!(
        served.contains("\"recovery\"") && served.contains("\"coverage_dip\""),
        "recovery metrics must ride the served artifact"
    );
    let golden = std::fs::read_to_string(repo_file("tests/fixtures/failure-recovery-batch.json"))
        .expect("fixture");
    assert_eq!(served, golden, "served artifact must match the fixture");
}

#[test]
fn subscribe_streams_events_and_closes_on_terminal_state() {
    let scratch = Scratch::new("subscribe");
    let daemon = Daemon::start(&scratch, &[]);
    let spec = smoke_spec();

    let (digest, _) = daemon.submit(&spec);
    let mut saw_terminal = false;
    let mut lines = 0usize;
    for line in daemon.client.subscribe(&digest).expect("subscribe") {
        let line = line.expect("event line");
        assert!(
            line.contains(&format!("\"job\":\"{digest}\"")),
            "every event carries the job digest: {line}"
        );
        lines += 1;
        if line.contains("\"event\":\"job-state\"")
            && (line.contains("\"state\":\"done\"") || line.contains("\"state\":\"failed\""))
        {
            saw_terminal = true;
        }
    }
    assert!(saw_terminal, "stream must end with a terminal job-state");
    assert!(lines >= 1, "at least the terminal line must arrive");
    daemon.await_done(&digest);

    // subscribing to a finished job yields its terminal state
    // immediately rather than hanging
    let closing: Vec<String> = daemon
        .client
        .subscribe(&digest)
        .expect("late subscribe")
        .map(|l| l.expect("line"))
        .collect();
    assert_eq!(closing.len(), 1, "finished job answers one closing line");
    assert!(closing[0].contains("\"state\":\"done\""));
}
