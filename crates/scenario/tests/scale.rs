//! Scale-tier integration: a trimmed 10k-sensor cell must stay
//! thread-count invariant and checkpoint/resume byte-identical, and
//! the opt-in movement-cost aggregates (`movement_summary`) must
//! surface in every output format without perturbing specs that do
//! not ask for them.

use msn_deploy::SchemeKind;
use msn_field::RandomObstacleParams;
use msn_scenario::{BatchFile, BatchResult, FieldSpec, RunConfig, ScenarioSpec};

/// A trimmed 10k smoke cell: CPVF only (its incremental tick is cheap
/// enough for debug-mode CI), short horizon, coarse raster. Exercises
/// the sharded index/tracker paths at real fleet size without the
/// FLOOR tick cost.
fn scale_spec() -> ScenarioSpec {
    ScenarioSpec::new("scale-smoke")
        .with_field(FieldSpec::RandomObstacles(RandomObstacleParams {
            width: 7000.0,
            height: 7000.0,
            ..RandomObstacleParams::default()
        }))
        .with_schemes(vec![SchemeKind::Cpvf])
        .with_sensor_counts(vec![10_000])
        .with_duration(5.0)
        .with_coverage_cell(50.0)
        .with_repetitions(2)
        .with_seed(42)
        .with_movement_summary(true)
}

fn small_spec() -> ScenarioSpec {
    ScenarioSpec::new("movement-small")
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![12])
        .with_duration(20.0)
        .with_coverage_cell(25.0)
        .with_repetitions(2)
        .with_seed(7)
}

#[test]
fn scale_cell_is_thread_count_invariant() {
    let spec = scale_spec();
    let reference = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let parallel = RunConfig::new().threads(4).runner().run(&spec).unwrap();
    assert_eq!(
        reference.to_json(),
        parallel.to_json(),
        "10k cell diverged between 1 and 4 threads"
    );
    // the fleet actually moves, so the invariance covers real churn
    assert!(reference.records.iter().all(|r| r.moves > 0));
}

#[test]
fn scale_cell_resumes_byte_identically() {
    let spec = scale_spec();
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    // simulate a kill after the first of two repetitions
    let partial = BatchResult {
        spec: spec.clone(),
        records: full.records[..1].to_vec(),
        profiles: Vec::new(),
    };
    let prior = BatchFile::parse(&partial.to_json()).unwrap();
    assert_eq!(prior.run_count(), 1);
    let resumed = RunConfig::new()
        .threads(1)
        .runner()
        .run_resuming(&spec, Some(&prior))
        .unwrap();
    assert_eq!(
        resumed.to_json(),
        full.to_json(),
        "resume must restore movement aggregates byte-identically"
    );
}

#[test]
fn movement_summary_surfaces_in_every_format() {
    let spec = small_spec().with_movement_summary(true);
    let result = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let json = result.to_json();
    assert!(json.contains("\"moves\""), "per-run moves missing in JSON");
    assert!(json.contains("\"move_dist\""), "move_dist missing in JSON");
    let csv = result.to_csv();
    assert!(csv.lines().next().unwrap().contains("moves_mean"));
    assert!(csv.lines().next().unwrap().contains("move_dist_mean"));
    let report = result.report();
    assert!(
        report.contains("cmd (m)"),
        "command-distance column missing in report:\n{report}"
    );
    // schemes that relocate sensors must record movement actions
    assert!(result.records.iter().any(|r| r.moves > 0));
    assert!(result.records.iter().any(|r| r.move_dist > 0.0));
}

#[test]
fn movement_summary_off_leaves_output_untouched() {
    let spec = small_spec();
    let result = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let json = result.to_json();
    assert!(!json.contains("\"move_dist\""));
    assert!(!result
        .to_csv()
        .lines()
        .next()
        .unwrap()
        .contains("moves_mean"));
    assert!(!result.report().contains("cmd (m)"));
    // the spec serialization (and hence the resume digest) must not
    // mention the flag either, or every pre-existing digest breaks
    assert!(!spec.to_toml_string().contains("movement_summary"));
}

#[test]
fn movement_summary_roundtrips_through_toml() {
    let spec = small_spec().with_movement_summary(true);
    let text = spec.to_toml_string();
    assert!(text.contains("movement_summary = true"));
    let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
    assert!(parsed.movement_summary);
    assert_eq!(parsed.resume_digest(), spec.resume_digest());
}

#[test]
fn movement_summary_resumes_byte_identically() {
    // the gated fields ride through batch.json parse -> restore
    let spec = small_spec().with_movement_summary(true);
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let partial = BatchResult {
        spec: spec.clone(),
        records: full.records[..3].to_vec(),
        profiles: Vec::new(),
    };
    let prior = BatchFile::parse(&partial.to_json()).unwrap();
    let resumed = RunConfig::new()
        .threads(1)
        .runner()
        .run_resuming(&spec, Some(&prior))
        .unwrap();
    assert_eq!(resumed.to_json(), full.to_json());
}
