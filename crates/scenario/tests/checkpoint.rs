//! Hard-kill checkpoint/resume integration: a batch checkpointed to
//! disk mid-run must resume byte-identically, and a torn (truncated)
//! file must be refused loudly instead of merged.

use msn_deploy::SchemeKind;
use msn_scenario::{BatchFile, BatchResult, RunConfig, ScenarioSpec};
use std::path::PathBuf;

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("checkpoint-test")
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![10])
        .with_duration(20.0)
        .with_coverage_cell(25.0)
        .with_repetitions(2)
}

/// A scratch path under the system temp dir, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("msn-checkpoint-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn file(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn checkpoints_land_atomically_and_cover_the_whole_batch() {
    let scratch = Scratch::new("atomic");
    let path = scratch.file("batch.json");
    let spec = spec();
    let result = RunConfig::new()
        .threads(1)
        .checkpoint(&path, 1)
        .runner()
        .run(&spec)
        .unwrap();
    // with a checkpoint after every run, the last checkpoint is the
    // complete batch — byte-identical to the final serialization
    let on_disk = std::fs::read_to_string(&path).expect("checkpoint written");
    assert_eq!(on_disk, result.to_json());
    // no temp file left behind by the rename dance
    assert!(!path.with_extension("json.tmp").exists());
}

#[test]
fn killed_batch_resumes_byte_identically_from_checkpoint() {
    let scratch = Scratch::new("kill");
    let path = scratch.file("batch.json");
    let spec = spec();
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    // simulate a SIGKILL after 3 of 4 runs: persist the checkpoint a
    // mid-batch write would have produced (records in matrix order,
    // holes across schemes within the final repetition)
    let partial = BatchResult {
        spec: spec.clone(),
        records: full.records[..3].to_vec(),
        profiles: Vec::new(),
    };
    std::fs::write(&path, partial.to_json()).unwrap();
    let prior = BatchFile::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(prior.run_count(), 3);
    let resumed = RunConfig::new()
        .threads(1)
        .runner()
        .run_resuming(&spec, Some(&prior))
        .unwrap();
    assert_eq!(
        resumed.to_json(),
        full.to_json(),
        "merge must be byte-identical"
    );
}

#[test]
fn truncated_checkpoint_is_refused_not_merged() {
    let scratch = Scratch::new("truncated");
    let path = scratch.file("batch.json");
    let spec = spec();
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let json = full.to_json();
    // a torn write (kill mid-write without the atomic rename) leaves a
    // prefix; parsing must fail loudly so resume cannot merge garbage
    std::fs::write(&path, &json[..json.len() - 40]).unwrap();
    let err = BatchFile::parse(&std::fs::read_to_string(&path).unwrap());
    assert!(err.is_err(), "truncated batch.json must not parse");
}
