//! Dynamics tier: seeded mid-run events must keep every determinism
//! guarantee the static engine gives — byte-identical `batch.json` at
//! any thread count and across a kill/resume — and the recovery
//! metrics must appear only when a spec opts into `[dynamics]`.

use msn_deploy::SchemeKind;
use msn_geom::{Point, Rect};
use msn_scenario::{BatchFile, BatchResult, RunConfig, ScenarioSpec};
use msn_sim::{DynEvent, EventAction, EventSchedule, FailCount, FailMode};

/// A failure-heavy schedule exercising three event kinds inside a
/// 30 s horizon.
fn schedule() -> EventSchedule {
    EventSchedule::new(vec![
        DynEvent {
            time: 10.0,
            action: EventAction::Fail {
                count: FailCount::Frac(0.25),
                mode: FailMode::Random,
            },
        },
        DynEvent {
            time: 18.0,
            action: EventAction::Reinforce {
                count: 3,
                rect: Rect::new(100.0, 100.0, 400.0, 400.0),
            },
        },
        DynEvent {
            time: 24.0,
            action: EventAction::RelocateBase {
                to: Point::new(50.0, 50.0),
            },
        },
    ])
}

fn dynamic_spec() -> ScenarioSpec {
    ScenarioSpec::new("dynamics-test")
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![14])
        .with_duration(30.0)
        .with_coverage_cell(25.0)
        .with_repetitions(2)
        .with_dynamics(schedule())
}

#[test]
fn dynamic_batches_surface_recovery_metrics_in_every_format() {
    let result = RunConfig::new()
        .threads(1)
        .runner()
        .run(&dynamic_spec())
        .unwrap();
    // every run fired all three events
    for record in &result.records {
        assert_eq!(record.recovery.len(), 3, "one stat per fired event");
        assert_eq!(record.recovery[0].kind, "fail");
        assert!(record.recovery[0].pre_coverage >= record.recovery[0].min_coverage);
        assert_eq!(record.recovery[1].kind, "reinforce");
        assert_eq!(record.recovery[2].kind, "relocate-base");
    }
    let json = result.to_json();
    assert!(json.contains("\"recovery\""), "{json}");
    assert!(json.contains("\"min_coverage\""), "{json}");
    assert!(json.contains("\"recovery_time\""), "{json}");
    assert!(json.contains("\"coverage_dip\""), "{json}");
    let csv = result.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("recovery_time_mean"), "{header}");
    assert!(header.contains("coverage_dip_mean"), "{header}");
    let report = result.report();
    assert!(report.contains("rec (s)"), "{report}");
}

#[test]
fn static_batches_stay_byte_identical_without_dynamics() {
    let spec = dynamic_spec();
    let mut static_spec = spec.clone();
    static_spec.dynamics = None;
    let result = RunConfig::new()
        .threads(1)
        .runner()
        .run(&static_spec)
        .unwrap();
    let json = result.to_json();
    assert!(!json.contains("recovery"), "{json}");
    assert!(!json.contains("coverage_dip"), "{json}");
    assert!(!result.to_csv().contains("recovery_time_mean"));
    assert!(!result.report().contains("rec (s)"));
    for record in &result.records {
        assert!(record.recovery.is_empty());
    }
}

#[test]
fn dynamic_batches_are_thread_invariant() {
    let spec = dynamic_spec();
    let sequential = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let pooled = RunConfig::new().threads(4).runner().run(&spec).unwrap();
    assert_eq!(sequential.to_json(), pooled.to_json());
    assert_eq!(sequential.to_csv(), pooled.to_csv());
}

#[test]
fn killed_dynamic_batch_resumes_byte_identically() {
    let spec = dynamic_spec();
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    // simulate a SIGKILL after 3 of 4 runs: the checkpoint a mid-batch
    // write would have produced (holes across schemes within a rep)
    let partial = BatchResult {
        spec: spec.clone(),
        records: full.records[..3].to_vec(),
        profiles: Vec::new(),
    };
    let prior = BatchFile::parse(&partial.to_json()).unwrap();
    assert_eq!(prior.run_count(), 3);
    // restored records carry their recovery stats back
    assert_eq!(prior.cells[0].1[&0].recovery.len(), 3);
    let resumed = RunConfig::new()
        .threads(2)
        .runner()
        .run_resuming(&spec, Some(&prior))
        .unwrap();
    assert_eq!(resumed.to_json(), full.to_json());
    assert_eq!(resumed.to_csv(), full.to_csv());
}

#[test]
fn dynamic_spec_roundtrips_toml_and_runs_identically_from_both_forms() {
    let spec = dynamic_spec();
    let parsed = ScenarioSpec::from_toml_str(&spec.to_toml_string()).unwrap();
    assert_eq!(parsed, spec);
    let from_built = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let from_parsed = RunConfig::new().threads(1).runner().run(&parsed).unwrap();
    assert_eq!(from_built.to_json(), from_parsed.to_json());
}

#[test]
fn editing_the_schedule_invalidates_resume() {
    let spec = dynamic_spec();
    let full = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let prior = BatchFile::parse(&full.to_json()).unwrap();
    // an edited event time would not take effect on restored records —
    // the digest must refuse the merge
    let mut edited = spec.clone();
    let schedule = edited.dynamics.as_mut().unwrap();
    schedule.events[0].time = 12.0;
    let err = RunConfig::new()
        .threads(1)
        .runner()
        .run_resuming(&edited, Some(&prior))
        .unwrap_err();
    assert!(err.0.contains("different spec"), "{}", err.0);
    // dropping the section entirely is also a different spec
    let mut stripped = spec.clone();
    stripped.dynamics = None;
    assert!(RunConfig::new()
        .threads(1)
        .runner()
        .run_resuming(&stripped, Some(&prior))
        .is_err());
}

#[test]
fn failures_depress_coverage_against_the_static_twin() {
    // the same cells without events must do at least as well at the
    // horizon as the version that loses a quarter of its fleet
    let mut failure_only = dynamic_spec();
    failure_only.dynamics = Some(EventSchedule::new(vec![DynEvent {
        time: 25.0,
        action: EventAction::Fail {
            count: FailCount::Frac(0.5),
            mode: FailMode::Random,
        },
    }]));
    let dynamic = RunConfig::new()
        .threads(1)
        .runner()
        .run(&failure_only)
        .unwrap();
    let mut static_spec = failure_only.clone();
    static_spec.dynamics = None;
    let baseline = RunConfig::new()
        .threads(1)
        .runner()
        .run(&static_spec)
        .unwrap();
    for (d, s) in dynamic.records.iter().zip(&baseline.records) {
        assert_eq!(d.cell.env_seed, s.cell.env_seed);
        assert!(
            d.recovery[0].post_coverage < s.coverage + 1e-9,
            "losing half the fleet at t=25 of 30 cannot beat the intact run \
             ({} vs {})",
            d.recovery[0].post_coverage,
            s.coverage,
        );
    }
}
