//! CLI integration: the `scenario` binary's `--threads` flag must be
//! accepted, validated, and must not change a single output byte —
//! the determinism contract holds at the process boundary, not just
//! in-library.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory under the system temp dir, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("msn-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn dir(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn scenario_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scenario"))
}

#[test]
fn threads_flag_is_byte_invariant_at_the_process_boundary() {
    let scratch = Scratch::new("threads");
    let spec = repo_file("scenarios/smoke.toml");
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let out = scratch.dir(&format!("t{threads}"));
        let status = scenario_bin()
            .args(["run"])
            .arg(&spec)
            .args(["--threads", threads, "--out"])
            .arg(&out)
            .status()
            .expect("spawn scenario binary");
        assert!(status.success(), "--threads {threads} run failed");
        outputs.push(std::fs::read(out.join("batch.json")).expect("batch.json written"));
    }
    assert_eq!(
        outputs[0], outputs[1],
        "batch.json must be byte-identical across --threads values"
    );
}

#[test]
fn invalid_thread_count_is_rejected() {
    let out = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .args(["--threads", "lots"])
        .output()
        .expect("spawn scenario binary");
    assert!(!out.status.success(), "non-numeric --threads must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid thread count"),
        "stderr should name the bad flag value, got: {stderr}"
    );
}

#[test]
fn zero_threads_clamps_to_sequential() {
    // `--threads 0` is documented to clamp to 1 rather than error.
    let scratch = Scratch::new("zero");
    let out = scratch.dir("t0");
    let status = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .args(["--threads", "0", "--out"])
        .arg(&out)
        .status()
        .expect("spawn scenario binary");
    assert!(status.success(), "--threads 0 must clamp, not fail");
    assert!(out.join("batch.json").exists());
}
