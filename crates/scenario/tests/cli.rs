//! CLI integration: the `scenario` binary's `--threads` flag must be
//! accepted, validated, and must not change a single output byte —
//! the determinism contract holds at the process boundary, not just
//! in-library.

use std::path::PathBuf;
use std::process::Command;

/// A scratch directory under the system temp dir, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("msn-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn dir(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn repo_file(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel)
}

fn scenario_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scenario"))
}

#[test]
fn threads_flag_is_byte_invariant_at_the_process_boundary() {
    let scratch = Scratch::new("threads");
    let spec = repo_file("scenarios/smoke.toml");
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let out = scratch.dir(&format!("t{threads}"));
        let status = scenario_bin()
            .args(["run"])
            .arg(&spec)
            .args(["--threads", threads, "--out"])
            .arg(&out)
            .status()
            .expect("spawn scenario binary");
        assert!(status.success(), "--threads {threads} run failed");
        outputs.push(std::fs::read(out.join("batch.json")).expect("batch.json written"));
    }
    assert_eq!(
        outputs[0], outputs[1],
        "batch.json must be byte-identical across --threads values"
    );
}

#[test]
fn invalid_thread_count_is_rejected() {
    let out = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .args(["--threads", "lots"])
        .output()
        .expect("spawn scenario binary");
    assert!(!out.status.success(), "non-numeric --threads must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid thread count"),
        "stderr should name the bad flag value, got: {stderr}"
    );
}

#[test]
fn concurrent_runs_against_the_same_batch_are_refused() {
    let scratch = Scratch::new("lock");
    let out = scratch.dir("locked");
    // stand in for a live `scenario run`: this test process holds the
    // batch lock, so the spawned run must refuse to start
    let lock = msn_scenario::BatchLock::acquire(&out).expect("take batch lock");
    let output = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn scenario binary");
    assert!(!output.status.success(), "second run must be refused");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("locked by pid"),
        "stderr should name the lock owner, got: {stderr}"
    );
    drop(lock);
    // with the lock released the same invocation goes through
    let status = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .arg("--out")
        .arg(&out)
        .status()
        .expect("spawn scenario binary");
    assert!(status.success(), "run must proceed once the lock is free");
}

#[test]
fn json_mode_emits_the_service_response_types() {
    use msn_scenario::{Json, Response};
    let scratch = Scratch::new("json");
    let out = scratch.dir("run");

    // `run --json` answers the same run-finished document the daemon
    // stores in its job record
    let output = scenario_bin()
        .args(["--json", "run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .arg("--out")
        .arg(&out)
        .output()
        .expect("spawn scenario binary");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    let parsed = Json::parse(&stdout).expect("stdout is JSON");
    assert_eq!(
        parsed.get("response").and_then(Json::as_str),
        Some("run-finished")
    );
    match Response::from_json(&parsed).expect("decodes as a Response") {
        Response::RunFinished { job, .. } => {
            assert_eq!(job.scenario, "smoke");
            assert_eq!(job.completed_runs, job.total_runs);
        }
        other => panic!("expected run-finished, got {other:?}"),
    }

    // errors come back as the structured error document with exit 1
    let output = scenario_bin()
        .args(["--json", "describe", "does-not-exist.toml"])
        .output()
        .expect("spawn scenario binary");
    assert!(!output.status.success());
    let parsed = Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("error is JSON");
    assert_eq!(parsed.get("response").and_then(Json::as_str), Some("error"));
    assert_eq!(parsed.get("code").and_then(Json::as_str), Some("not-found"));

    // usage errors keep their distinct exit code in JSON mode too
    let status = scenario_bin()
        .args(["--json", "frobnicate"])
        .status()
        .expect("spawn scenario binary");
    assert_eq!(status.code(), Some(2), "usage errors must exit 2");
}

#[test]
fn zero_threads_clamps_to_sequential() {
    // `--threads 0` is documented to clamp to 1 rather than error.
    let scratch = Scratch::new("zero");
    let out = scratch.dir("t0");
    let status = scenario_bin()
        .args(["run"])
        .arg(repo_file("scenarios/smoke.toml"))
        .args(["--threads", "0", "--out"])
        .arg(&out)
        .status()
        .expect("spawn scenario binary");
    assert!(status.success(), "--threads 0 must clamp, not fail");
    assert!(out.join("batch.json").exists());
}
