//! Observability integration: profiling must not perturb results
//! (batch.json byte-identical with a collector installed), profiles
//! must account for the run's wall time, tracker probes must fire on
//! a randomized workload, and progress events must mirror the matrix.

use msn_deploy::SchemeKind;
use msn_field::RandomObstacleParams;
use msn_scenario::{
    FieldSpec, ProfileRecord, ProgressEvent, ProgressSink, RunConfig, ScenarioSpec,
};
use std::sync::{Arc, Mutex};

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("obs-test")
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![12])
        .with_duration(30.0)
        .with_coverage_cell(25.0)
        .with_repetitions(2)
}

#[test]
fn profiling_is_zero_perturbation() {
    let spec = spec();
    let plain = RunConfig::new().threads(2).runner().run(&spec).unwrap();
    let profiled = RunConfig::new()
        .threads(2)
        .profiling(true)
        .runner()
        .run(&spec)
        .unwrap();
    assert_eq!(
        plain.to_json(),
        profiled.to_json(),
        "profiling must not change a single output byte"
    );
    assert!(plain.profiles.is_empty());
    assert_eq!(profiled.profiles.len(), profiled.records.len());
    assert!(profiled.profiles.iter().all(Option::is_some));
}

#[test]
fn profile_accounts_for_the_run() {
    let spec = spec();
    let result = RunConfig::new()
        .threads(1)
        .profiling(true)
        .runner()
        .run(&spec)
        .unwrap();
    let record = ProfileRecord::from_batch(&result).unwrap();
    assert_eq!(record.scenario, "obs-test");
    assert_eq!(record.cells.len(), 2, "one cell per (radio, n, scheme)");
    let merged = record.merged();
    assert!(merged.span("cpvf.run").is_some(), "CPVF run span missing");
    assert!(merged.span("floor.run").is_some(), "FLOOR run span missing");
    assert!(
        record.phase_coverage() >= 0.9,
        "per-tick phase spans cover {:.1}% of wall, want >= 90%",
        record.phase_coverage() * 100.0
    );
    // tracker probes fire on every run
    assert!(merged.counter_total("cov.syncs") > 0);
    assert!(merged.counter_total("pidx.syncs") > 0);
    assert!(merged.counter_total("world.moves") > 0);
    // round-trip: serialized record parses back to the same report
    let parsed = ProfileRecord::parse(&record.to_json_string()).unwrap();
    assert_eq!(parsed.scenario, record.scenario);
    assert_eq!(parsed.cells.len(), record.cells.len());
    assert_eq!(
        parsed.merged().counter_total("cov.syncs"),
        merged.counter_total("cov.syncs")
    );
}

#[test]
fn tracker_counters_fire_on_random_obstacle_workload() {
    // Longer FLOOR runs settle most sensors, so late-tick syncs see
    // small dirty sets and take the incremental (re-stamp) path; the
    // early all-moving ticks take the rebuild-if-cheaper fallback.
    let spec = ScenarioSpec::new("obs-random")
        .with_field(FieldSpec::RandomObstacles(RandomObstacleParams::default()))
        .with_schemes(vec![SchemeKind::Floor])
        .with_sensor_counts(vec![30])
        .with_duration(300.0)
        .with_coverage_cell(25.0)
        .with_repetitions(1)
        .with_seed(11);
    let result = RunConfig::new()
        .threads(1)
        .profiling(true)
        .runner()
        .run(&spec)
        .unwrap();
    let merged = ProfileRecord::from_batch(&result).unwrap().merged();
    assert!(
        merged.counter_total("cov.restamps") > 0,
        "incremental re-stamp path never taken"
    );
    assert!(
        merged.counter_total("cov.rebuilds") > 0,
        "rebuild-if-cheaper fallback never taken"
    );
    assert!(merged.counter_total("pidx.rebuilds") > 0);
    assert!(merged.counter_total("conn.syncs") > 0);
    assert!(
        merged.counter_total("conn.repairs") > 0,
        "dynamic-BFS repair path never taken"
    );
}

#[test]
fn progress_events_mirror_the_matrix() {
    let spec = spec();
    let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&events);
    let sink = ProgressSink::new(move |event: &ProgressEvent| {
        log.lock().unwrap().push(event.ndjson_line());
    });
    RunConfig::new()
        .threads(2)
        .progress(sink)
        .runner()
        .run(&spec)
        .unwrap();
    let events = events.lock().unwrap();
    let count = |tag: &str| {
        events
            .iter()
            .filter(|line| line.starts_with(&format!("{{\"event\":\"{tag}\"")))
            .count()
    };
    assert_eq!(count("batch-started"), 1);
    assert_eq!(count("run-started"), 4, "one per matrix cell");
    assert_eq!(count("run-finished"), 4);
    assert_eq!(count("batch-finished"), 1);
    // every line is one JSON object, newline-free (line-atomic NDJSON)
    assert!(events.iter().all(|line| !line.contains('\n')));
    // the final run-finished reports completion and a zero ETA
    let last = events
        .iter()
        .rev()
        .find(|line| line.contains("\"event\":\"run-finished\""))
        .unwrap();
    assert!(last.contains("\"completed\":4,\"total\":4"));
    assert!(last.contains("\"eta_s\":0"));
}

#[test]
fn checkpoint_event_fires_when_checkpointing() {
    let dir = std::env::temp_dir().join(format!("msn-obs-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batch.json");
    let events: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&events);
    let sink = ProgressSink::new(move |event: &ProgressEvent| {
        if let ProgressEvent::CheckpointWritten { .. } = event {
            log.lock().unwrap().push(event.ndjson_line());
        }
    });
    RunConfig::new()
        .threads(1)
        .checkpoint(&path, 2)
        .progress(sink)
        .runner()
        .run(&spec())
        .unwrap();
    let events = events.lock().unwrap();
    assert_eq!(events.len(), 2, "4 runs / every-2 checkpoints");
    assert!(events[0].contains("\"event\":\"checkpoint\""));
    assert!(events[0].contains("\"runs\":2"));
    let _ = std::fs::remove_dir_all(&dir);
}
