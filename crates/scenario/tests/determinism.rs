//! Batch-runner determinism: the same spec and seed must produce
//! byte-identical JSON at any thread count, because per-run seeds
//! derive from matrix coordinates (never from scheduling) and the
//! parallel collect preserves matrix order.

use msn_deploy::SchemeKind;
use msn_field::RandomObstacleParams;
use msn_scenario::{derive_seed, BatchRunner, FieldSpec, RunConfig, ScenarioSpec};

fn spec() -> ScenarioSpec {
    ScenarioSpec::new("determinism")
        .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
        .with_sensor_counts(vec![10, 16])
        .with_radios(vec![(60.0, 40.0), (30.0, 40.0)])
        .with_duration(20.0)
        .with_coverage_cell(25.0)
        .with_repetitions(2)
        .with_seed(7)
}

#[test]
fn json_is_byte_identical_at_any_thread_count() {
    let reference = RunConfig::new()
        .threads(1)
        .runner()
        .run(&spec())
        .unwrap()
        .to_json();
    for threads in [2, 4, 8] {
        let parallel = RunConfig::new()
            .threads(threads)
            .runner()
            .run(&spec())
            .unwrap()
            .to_json();
        assert_eq!(
            reference, parallel,
            "JSON diverged between 1 and {threads} threads"
        );
    }
    // and the default (shared-pool) runner agrees too
    let pooled = BatchRunner::new().run(&spec()).unwrap().to_json();
    assert_eq!(reference, pooled);
}

#[test]
fn randomized_fields_are_also_thread_count_invariant() {
    let spec = ScenarioSpec::new("determinism-rnd")
        .with_field(FieldSpec::RandomObstacles(RandomObstacleParams::default()))
        .with_schemes(vec![SchemeKind::Floor])
        .with_sensor_counts(vec![12])
        .with_duration(10.0)
        .with_coverage_cell(25.0)
        .with_repetitions(4)
        .with_seed(99);
    let a = RunConfig::new().threads(1).runner().run(&spec).unwrap();
    let b = RunConfig::new().threads(4).runner().run(&spec).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.report(), b.report());
}

#[test]
fn csv_and_report_are_deterministic_across_invocations() {
    let a = BatchRunner::new().run(&spec()).unwrap();
    let b = BatchRunner::new().run(&spec()).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.report(), b.report());
}

#[test]
fn different_base_seeds_change_results() {
    let a = BatchRunner::new().run(&spec()).unwrap().to_json();
    let b = BatchRunner::new()
        .run(&spec().with_seed(8))
        .unwrap()
        .to_json();
    assert_ne!(a, b, "base seed must perturb the batch");
}

#[test]
fn matrix_seed_derivation_is_pure() {
    for (radio, n, rep) in [(0usize, 0usize, 0usize), (1, 2, 3), (2, 0, 7)] {
        assert_eq!(derive_seed(7, radio, n, rep), derive_seed(7, radio, n, rep));
    }
}
