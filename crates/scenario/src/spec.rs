//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] fully describes an experiment: field geometry,
//! initial scatter, sensor-count sweep, radio-range combinations,
//! scheme set, durations, repetitions and the seed policy. Specs are
//! built in code (builder methods) or loaded from TOML
//! ([`ScenarioSpec::from_toml_str`]); [`ScenarioSpec::matrix`]
//! expands a spec into the flat run matrix the batch runner executes.

use crate::toml::{TomlError, TomlValue};
use msn_deploy::SchemeKind;
use msn_field::{
    campus_grid_field, corridor_field, disaster_zone_field, paper_field, random_obstacle_field,
    scatter_clustered, scatter_uniform, two_obstacle_field, CampusGridParams, CorridorParams,
    Field, RandomObstacleParams,
};
use msn_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// A communication/sensing range combination (`rc`, `rs`), in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioSpec {
    /// Communication range `rc` (m).
    pub rc: f64,
    /// Sensing range `rs` (m).
    pub rs: f64,
}

impl RadioSpec {
    /// A new combination.
    pub fn new(rc: f64, rs: f64) -> Self {
        RadioSpec { rc, rs }
    }
}

impl fmt::Display for RadioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rc={} rs={}", self.rc, self.rs)
    }
}

/// Field geometry of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldSpec {
    /// The paper's 1 km × 1 km obstacle-free field.
    Paper,
    /// The two-obstacle field of Figures 3(c)/8(c).
    TwoObstacle,
    /// A block grid of buildings (see [`CampusGridParams`]).
    CampusGrid(CampusGridParams),
    /// A serpentine corridor of baffle walls (see [`CorridorParams`]).
    Corridor(CorridorParams),
    /// The debris field of the disaster-zone example.
    DisasterZone,
    /// Per-run random rectangular obstacles (§6.4 workload; see
    /// [`RandomObstacleParams`]).
    RandomObstacles(RandomObstacleParams),
}

impl FieldSpec {
    /// The spec's TOML `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            FieldSpec::Paper => "paper",
            FieldSpec::TwoObstacle => "two-obstacle",
            FieldSpec::CampusGrid(_) => "campus-grid",
            FieldSpec::Corridor(_) => "corridor",
            FieldSpec::DisasterZone => "disaster-zone",
            FieldSpec::RandomObstacles(_) => "random-obstacles",
        }
    }

    /// Whether the field differs run to run (drawn from the run's
    /// environment seed) rather than being fixed for the scenario.
    pub fn is_randomized(&self) -> bool {
        matches!(self, FieldSpec::RandomObstacles(_))
    }

    /// Materializes the field, drawing any randomness from `rng`.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Field {
        match self {
            FieldSpec::Paper => paper_field(),
            FieldSpec::TwoObstacle => two_obstacle_field(),
            FieldSpec::CampusGrid(params) => campus_grid_field(params),
            FieldSpec::Corridor(params) => corridor_field(params),
            FieldSpec::DisasterZone => disaster_zone_field(),
            FieldSpec::RandomObstacles(params) => random_obstacle_field(params, rng),
        }
    }
}

/// Initial sensor distribution of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScatterSpec {
    /// Uniform over the field's lower-left quarter (the paper's §6
    /// clustered start, scaled to the field).
    ClusteredQuarter,
    /// Uniform over an explicit sub-rectangle.
    Clustered {
        /// Sub-area min x (m).
        x0: f64,
        /// Sub-area min y (m).
        y0: f64,
        /// Sub-area max x (m).
        x1: f64,
        /// Sub-area max y (m).
        y1: f64,
    },
    /// Uniform over the whole free space.
    Uniform,
}

impl ScatterSpec {
    /// The spec's TOML `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ScatterSpec::ClusteredQuarter => "clustered-quarter",
            ScatterSpec::Clustered { .. } => "clustered",
            ScatterSpec::Uniform => "uniform",
        }
    }

    /// Draws `n` initial positions on `field` from `rng`.
    pub fn place<R: Rng>(&self, field: &Field, n: usize, rng: &mut R) -> Vec<Point> {
        match self {
            ScatterSpec::ClusteredQuarter => {
                let b = field.bounds();
                let sub = Rect::new(
                    b.min.x,
                    b.min.y,
                    b.min.x + b.width() / 2.0,
                    b.min.y + b.height() / 2.0,
                );
                scatter_clustered(field, sub, n, rng)
            }
            ScatterSpec::Clustered { x0, y0, x1, y1 } => {
                scatter_clustered(field, Rect::new(*x0, *y0, *x1, *y1), n, rng)
            }
            ScatterSpec::Uniform => scatter_uniform(field, n, rng),
        }
    }
}

/// A declarative description of one experiment batch.
///
/// # Examples
///
/// ```
/// use msn_deploy::SchemeKind;
/// use msn_scenario::ScenarioSpec;
///
/// let spec = ScenarioSpec::new("demo")
///     .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
///     .with_sensor_counts(vec![40, 80])
///     .with_radios(vec![(60.0, 40.0)])
///     .with_duration(100.0)
///     .with_repetitions(2);
/// assert_eq!(spec.matrix().len(), 2 * 2 * 2);
/// let toml = spec.to_toml_string();
/// assert_eq!(ScenarioSpec::from_toml_str(&toml).unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used for output paths and reports).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Field geometry.
    pub field: FieldSpec,
    /// Initial sensor distribution.
    pub scatter: ScatterSpec,
    /// Sensor-count sweep (one run matrix column per count).
    pub sensor_counts: Vec<usize>,
    /// Schemes to compare. Every scheme sees the same environments
    /// (field, initial positions, sim seed) within a matrix cell.
    pub schemes: Vec<SchemeKind>,
    /// Radio-range combinations to sweep.
    pub radios: Vec<RadioSpec>,
    /// Simulated duration per run (s).
    pub duration: f64,
    /// Coverage raster cell (m).
    pub coverage_cell: f64,
    /// Repetitions per (radio, n, scheme) cell with different seeds.
    pub repetitions: usize,
    /// Base seed; per-run seeds are derived deterministically from it
    /// and the run's matrix coordinates (never from thread timing).
    pub seed: u64,
}

impl ScenarioSpec {
    /// A spec with the paper's defaults: paper field, clustered
    /// quarter scatter, 240 sensors, all five schemes, rc 60 / rs 40,
    /// 750 s, 2.5 m raster, 1 repetition, seed 42.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            field: FieldSpec::Paper,
            scatter: ScatterSpec::ClusteredQuarter,
            sensor_counts: vec![240],
            schemes: SchemeKind::ALL.to_vec(),
            radios: vec![RadioSpec::new(60.0, 40.0)],
            duration: 750.0,
            coverage_cell: 2.5,
            repetitions: 1,
            seed: 42,
        }
    }

    /// Sets the description.
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the field geometry.
    #[must_use]
    pub fn with_field(mut self, field: FieldSpec) -> Self {
        self.field = field;
        self
    }

    /// Sets the initial distribution.
    #[must_use]
    pub fn with_scatter(mut self, scatter: ScatterSpec) -> Self {
        self.scatter = scatter;
        self
    }

    /// Sets the sensor-count sweep.
    #[must_use]
    pub fn with_sensor_counts(mut self, counts: Vec<usize>) -> Self {
        self.sensor_counts = counts;
        self
    }

    /// Sets the scheme set.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<SchemeKind>) -> Self {
        self.schemes = schemes;
        self
    }

    /// Sets the radio combinations from `(rc, rs)` pairs.
    #[must_use]
    pub fn with_radios(mut self, radios: Vec<(f64, f64)>) -> Self {
        self.radios = radios
            .into_iter()
            .map(|(rc, rs)| RadioSpec::new(rc, rs))
            .collect();
        self
    }

    /// Sets the simulated duration (s).
    #[must_use]
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the coverage raster cell (m).
    #[must_use]
    pub fn with_coverage_cell(mut self, cell: f64) -> Self {
        self.coverage_cell = cell;
        self
    }

    /// Sets the repetition count.
    #[must_use]
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the spec is executable, returning the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.sensor_counts.is_empty() || self.sensor_counts.contains(&0) {
            return Err("sensor_counts must be non-empty and positive".into());
        }
        if self.schemes.is_empty() {
            return Err("schemes must be non-empty".into());
        }
        if self.radios.is_empty() {
            return Err("radios must be non-empty".into());
        }
        if self.radios.iter().any(|r| r.rc <= 0.0 || r.rs <= 0.0) {
            return Err("radio ranges must be positive".into());
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err("duration must be positive".into());
        }
        if !(self.coverage_cell.is_finite() && self.coverage_cell > 0.0) {
            return Err("coverage_cell must be positive".into());
        }
        if self.repetitions == 0 {
            return Err("repetitions must be at least 1".into());
        }
        if let ScatterSpec::Clustered { x0, y0, x1, y1 } = self.scatter {
            if ![x0, y0, x1, y1].iter().all(|v| v.is_finite()) || x1 <= x0 || y1 <= y0 {
                return Err(
                    "clustered scatter rect must be finite with x0 < x1 and y0 < y1".into(),
                );
            }
        }
        Ok(())
    }

    /// Expands the spec into its flat run matrix, in deterministic
    /// order: radios × sensor counts × repetitions × schemes.
    pub fn matrix(&self) -> Vec<RunCell> {
        let mut cells = Vec::with_capacity(
            self.radios.len() * self.sensor_counts.len() * self.repetitions * self.schemes.len(),
        );
        for (radio_idx, &radio) in self.radios.iter().enumerate() {
            for (n_idx, &n) in self.sensor_counts.iter().enumerate() {
                for rep in 0..self.repetitions {
                    let env_seed = derive_seed(self.seed, radio_idx, n_idx, rep);
                    for &scheme in &self.schemes {
                        cells.push(RunCell {
                            index: cells.len(),
                            radio,
                            n,
                            scheme,
                            rep,
                            env_seed,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Serializes as a TOML document.
    pub fn to_toml_string(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("name".into(), TomlValue::Str(self.name.clone()));
        root.insert(
            "description".into(),
            TomlValue::Str(self.description.clone()),
        );
        root.insert(
            "schemes".into(),
            TomlValue::Array(
                self.schemes
                    .iter()
                    .map(|k| TomlValue::Str(k.name().into()))
                    .collect(),
            ),
        );
        root.insert(
            "sensor_counts".into(),
            TomlValue::Array(
                self.sensor_counts
                    .iter()
                    .map(|&n| TomlValue::Int(n as i64))
                    .collect(),
            ),
        );
        root.insert(
            "radios".into(),
            TomlValue::Array(
                self.radios
                    .iter()
                    .map(|r| TomlValue::Array(vec![TomlValue::Float(r.rc), TomlValue::Float(r.rs)]))
                    .collect(),
            ),
        );
        root.insert("duration".into(), TomlValue::Float(self.duration));
        root.insert("coverage_cell".into(), TomlValue::Float(self.coverage_cell));
        root.insert(
            "repetitions".into(),
            TomlValue::Int(self.repetitions as i64),
        );
        root.insert("seed".into(), TomlValue::from_u64(self.seed));
        root.insert("field".into(), field_to_toml(&self.field));
        root.insert("scatter".into(), scatter_to_toml(&self.scatter));
        TomlValue::Table(root).to_toml_string()
    }

    /// Parses a spec from a TOML document.
    pub fn from_toml_str(text: &str) -> Result<Self, TomlError> {
        let root = TomlValue::parse(text)?;
        let name = require_str(&root, "name")?;
        let description = match root.get("description") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| TomlError("'description' must be a string".into()))?
                .to_string(),
            None => String::new(),
        };
        let mut spec = ScenarioSpec::new(name).with_description(description);
        if let Some(v) = root.get("schemes") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'schemes' must be an array".into()))?;
            let mut schemes = Vec::new();
            for item in items {
                let s = item
                    .as_str()
                    .ok_or_else(|| TomlError("'schemes' entries must be strings".into()))?;
                schemes.push(s.parse::<SchemeKind>().map_err(TomlError)?);
            }
            spec.schemes = schemes;
        }
        if let Some(v) = root.get("sensor_counts") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'sensor_counts' must be an array".into()))?;
            spec.sensor_counts = items
                .iter()
                .map(|i| {
                    i.as_usize().ok_or_else(|| {
                        TomlError("'sensor_counts' entries must be non-negative integers".into())
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = root.get("radios") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'radios' must be an array of [rc, rs] pairs".into()))?;
            let mut radios = Vec::new();
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| TomlError("each radio must be an [rc, rs] pair".into()))?;
                let rc = pair[0]
                    .as_f64()
                    .ok_or_else(|| TomlError("radio rc must be numeric".into()))?;
                let rs = pair[1]
                    .as_f64()
                    .ok_or_else(|| TomlError("radio rs must be numeric".into()))?;
                radios.push(RadioSpec::new(rc, rs));
            }
            spec.radios = radios;
        }
        if let Some(v) = root.get("duration") {
            spec.duration = v
                .as_f64()
                .ok_or_else(|| TomlError("'duration' must be numeric".into()))?;
        }
        if let Some(v) = root.get("coverage_cell") {
            spec.coverage_cell = v
                .as_f64()
                .ok_or_else(|| TomlError("'coverage_cell' must be numeric".into()))?;
        }
        if let Some(v) = root.get("repetitions") {
            spec.repetitions = v
                .as_usize()
                .ok_or_else(|| TomlError("'repetitions' must be a non-negative integer".into()))?;
        }
        if let Some(v) = root.get("seed") {
            spec.seed = v
                .as_u64()
                .ok_or_else(|| TomlError("'seed' must be a non-negative integer".into()))?;
        }
        if let Some(v) = root.get("field") {
            spec.field = field_from_toml(v)?;
        }
        if let Some(v) = root.get("scatter") {
            spec.scatter = scatter_from_toml(v)?;
        }
        spec.validate().map_err(TomlError)?;
        Ok(spec)
    }
}

/// One entry of the expanded run matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCell {
    /// Flat matrix index (also the execution/collect order).
    pub index: usize,
    /// Radio combination.
    pub radio: RadioSpec,
    /// Sensor count.
    pub n: usize,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Repetition number within the cell.
    pub rep: usize,
    /// Environment seed shared by every scheme in this
    /// (radio, n, rep) slice: field, initial scatter and sim seed all
    /// derive from it, so schemes compete on identical environments.
    pub env_seed: u64,
}

impl RunCell {
    /// The run's environment, materialized deterministically from
    /// [`RunCell::env_seed`]: the field and the initial positions.
    pub fn build_environment(&self, spec: &ScenarioSpec) -> (Field, Vec<Point>) {
        let mut field_rng = SmallRng::seed_from_u64(stream_seed(self.env_seed, 1));
        let field = spec.field.build(&mut field_rng);
        let mut scatter_rng = SmallRng::seed_from_u64(stream_seed(self.env_seed, 2));
        let initial = spec.scatter.place(&field, self.n, &mut scatter_rng);
        (field, initial)
    }

    /// The seed for the in-run RNG (message backoff, random walks).
    pub fn sim_seed(&self) -> u64 {
        stream_seed(self.env_seed, 3)
    }
}

/// Derives a run's environment seed from the base seed and its matrix
/// coordinates. Pure function of its arguments — results are
/// identical at any thread count and stable across runs.
pub fn derive_seed(base: u64, radio_idx: usize, n_idx: usize, rep: usize) -> u64 {
    let state = base
        ^ (radio_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (n_idx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (rep as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    split_mix_64(state)
}

/// Splits an environment seed into independent streams (field /
/// scatter / sim) so consuming one stream never shifts another.
fn stream_seed(env_seed: u64, stream: u64) -> u64 {
    split_mix_64(env_seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// One SplitMix64 output step (finalizer-quality bit mixing).
fn split_mix_64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn field_to_toml(field: &FieldSpec) -> TomlValue {
    let mut t = BTreeMap::new();
    t.insert("kind".into(), TomlValue::Str(field.kind().into()));
    match field {
        FieldSpec::Paper | FieldSpec::TwoObstacle | FieldSpec::DisasterZone => {}
        FieldSpec::CampusGrid(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("blocks_x".into(), TomlValue::Int(p.blocks_x as i64));
            t.insert("blocks_y".into(), TomlValue::Int(p.blocks_y as i64));
            t.insert("building".into(), TomlValue::Float(p.building));
            t.insert("street".into(), TomlValue::Float(p.street));
            t.insert("margin".into(), TomlValue::Float(p.margin));
        }
        FieldSpec::Corridor(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("baffles".into(), TomlValue::Int(p.baffles as i64));
            t.insert("gap".into(), TomlValue::Float(p.gap));
            t.insert("thickness".into(), TomlValue::Float(p.thickness));
        }
        FieldSpec::RandomObstacles(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("count_min".into(), TomlValue::Int(p.count.0 as i64));
            t.insert("count_max".into(), TomlValue::Int(p.count.1 as i64));
            t.insert("side_min".into(), TomlValue::Float(p.side.0));
            t.insert("side_max".into(), TomlValue::Float(p.side.1));
            t.insert("base_clearance".into(), TomlValue::Float(p.base_clearance));
            t.insert(
                "connectivity_cell".into(),
                TomlValue::Float(p.connectivity_cell),
            );
        }
    }
    TomlValue::Table(t)
}

fn get_f64(table: &TomlValue, key: &str, default: f64) -> Result<f64, TomlError> {
    match table.get(key) {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| TomlError(format!("'{key}' must be numeric"))),
        None => Ok(default),
    }
}

fn get_usize(table: &TomlValue, key: &str, default: usize) -> Result<usize, TomlError> {
    match table.get(key) {
        Some(v) => v
            .as_usize()
            .ok_or_else(|| TomlError(format!("'{key}' must be a non-negative integer"))),
        None => Ok(default),
    }
}

fn field_from_toml(v: &TomlValue) -> Result<FieldSpec, TomlError> {
    let kind = require_str(v, "kind")?;
    match kind.as_str() {
        "paper" => Ok(FieldSpec::Paper),
        "two-obstacle" => Ok(FieldSpec::TwoObstacle),
        "disaster-zone" => Ok(FieldSpec::DisasterZone),
        "campus-grid" => {
            let d = CampusGridParams::default();
            Ok(FieldSpec::CampusGrid(CampusGridParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                blocks_x: get_usize(v, "blocks_x", d.blocks_x)?,
                blocks_y: get_usize(v, "blocks_y", d.blocks_y)?,
                building: get_f64(v, "building", d.building)?,
                street: get_f64(v, "street", d.street)?,
                margin: get_f64(v, "margin", d.margin)?,
            }))
        }
        "corridor" => {
            let d = CorridorParams::default();
            Ok(FieldSpec::Corridor(CorridorParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                baffles: get_usize(v, "baffles", d.baffles)?,
                gap: get_f64(v, "gap", d.gap)?,
                thickness: get_f64(v, "thickness", d.thickness)?,
            }))
        }
        "random-obstacles" => {
            let d = RandomObstacleParams::default();
            Ok(FieldSpec::RandomObstacles(RandomObstacleParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                count: (
                    get_usize(v, "count_min", d.count.0)?,
                    get_usize(v, "count_max", d.count.1)?,
                ),
                side: (
                    get_f64(v, "side_min", d.side.0)?,
                    get_f64(v, "side_max", d.side.1)?,
                ),
                base_clearance: get_f64(v, "base_clearance", d.base_clearance)?,
                connectivity_cell: get_f64(v, "connectivity_cell", d.connectivity_cell)?,
            }))
        }
        other => Err(TomlError(format!(
            "unknown field kind '{other}' (expected paper, two-obstacle, campus-grid, corridor, disaster-zone or random-obstacles)"
        ))),
    }
}

fn scatter_to_toml(scatter: &ScatterSpec) -> TomlValue {
    let mut t = BTreeMap::new();
    t.insert("kind".into(), TomlValue::Str(scatter.kind().into()));
    if let ScatterSpec::Clustered { x0, y0, x1, y1 } = scatter {
        t.insert("x0".into(), TomlValue::Float(*x0));
        t.insert("y0".into(), TomlValue::Float(*y0));
        t.insert("x1".into(), TomlValue::Float(*x1));
        t.insert("y1".into(), TomlValue::Float(*y1));
    }
    TomlValue::Table(t)
}

fn scatter_from_toml(v: &TomlValue) -> Result<ScatterSpec, TomlError> {
    let kind = require_str(v, "kind")?;
    match kind.as_str() {
        "clustered-quarter" => Ok(ScatterSpec::ClusteredQuarter),
        "uniform" => Ok(ScatterSpec::Uniform),
        "clustered" => Ok(ScatterSpec::Clustered {
            x0: get_f64(v, "x0", 0.0)?,
            y0: get_f64(v, "y0", 0.0)?,
            x1: get_f64(v, "x1", 0.0)?,
            y1: get_f64(v, "y1", 0.0)?,
        }),
        other => Err(TomlError(format!(
            "unknown scatter kind '{other}' (expected clustered-quarter, clustered or uniform)"
        ))),
    }
}

fn require_str(table: &TomlValue, key: &str) -> Result<String, TomlError> {
    table
        .get(key)
        .and_then(TomlValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| TomlError(format!("missing required string '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shares_env_seed_across_schemes() {
        let spec = ScenarioSpec::new("t")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![10, 20])
            .with_radios(vec![(60.0, 40.0), (30.0, 40.0)])
            .with_repetitions(3);
        let cells = spec.matrix();
        assert_eq!(cells.len(), 2 * 2 * 3 * 2);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        // schemes within one (radio, n, rep) slice share the environment
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].env_seed, pair[1].env_seed);
            assert_ne!(pair[0].scheme, pair[1].scheme);
        }
        // different reps get different environments
        assert_ne!(cells[0].env_seed, cells[2].env_seed);
    }

    #[test]
    fn derived_seeds_are_stable_and_spread() {
        assert_eq!(derive_seed(42, 0, 1, 2), derive_seed(42, 0, 1, 2));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 1, 0, 0));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 0, 1, 0));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 0, 0, 1));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(43, 0, 0, 0));
    }

    #[test]
    fn environment_is_deterministic() {
        let spec = ScenarioSpec::new("t")
            .with_field(FieldSpec::RandomObstacles(RandomObstacleParams::default()))
            .with_sensor_counts(vec![15]);
        let cell = spec.matrix()[0];
        let (f1, i1) = cell.build_environment(&spec);
        let (f2, i2) = cell.build_environment(&spec);
        assert_eq!(f1.obstacles().len(), f2.obstacles().len());
        assert_eq!(i1, i2);
        assert_eq!(i1.len(), 15);
    }

    #[test]
    fn toml_roundtrip_all_field_kinds() {
        let fields = [
            FieldSpec::Paper,
            FieldSpec::TwoObstacle,
            FieldSpec::CampusGrid(CampusGridParams::default()),
            FieldSpec::Corridor(CorridorParams::default()),
            FieldSpec::DisasterZone,
            FieldSpec::RandomObstacles(RandomObstacleParams::default()),
        ];
        let scatters = [
            ScatterSpec::ClusteredQuarter,
            ScatterSpec::Uniform,
            ScatterSpec::Clustered {
                x0: 0.0,
                y0: 10.0,
                x1: 200.0,
                y1: 300.0,
            },
        ];
        for field in fields {
            for scatter in scatters.iter().cloned() {
                let spec = ScenarioSpec::new("roundtrip")
                    .with_description("all kinds")
                    .with_field(field.clone())
                    .with_scatter(scatter)
                    .with_schemes(vec![SchemeKind::Floor, SchemeKind::Minimax])
                    .with_sensor_counts(vec![30, 60])
                    .with_radios(vec![(20.0, 60.0), (60.0, 60.0)])
                    .with_duration(120.0)
                    .with_coverage_cell(5.0)
                    .with_repetitions(4)
                    .with_seed(7);
                let text = spec.to_toml_string();
                let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
                assert_eq!(parsed, spec, "round-trip failed for:\n{text}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(ScenarioSpec::new("x").validate().is_ok());
        assert!(ScenarioSpec::new("").validate().is_err());
        assert!(ScenarioSpec::new("x")
            .with_sensor_counts(vec![])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_schemes(vec![])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_radios(vec![(0.0, 40.0)])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_duration(0.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_repetitions(0)
            .validate()
            .is_err());
        // degenerate, inverted and non-finite clustered rects
        for (x0, y0, x1, y1) in [
            (0.0, 0.0, 0.0, 0.0),
            (100.0, 0.0, 50.0, 50.0),
            (0.0, f64::NAN, 50.0, 50.0),
        ] {
            assert!(ScenarioSpec::new("x")
                .with_scatter(ScatterSpec::Clustered { x0, y0, x1, y1 })
                .validate()
                .is_err());
        }
    }

    #[test]
    fn seeds_above_i64_max_roundtrip() {
        let spec = ScenarioSpec::new("big-seed").with_seed(u64::MAX);
        let text = spec.to_toml_string();
        assert!(text.contains("seed = 18446744073709551615"), "{text}");
        assert_eq!(ScenarioSpec::from_toml_str(&text).unwrap(), spec);
    }

    #[test]
    fn parse_errors_name_the_problem() {
        let e = ScenarioSpec::from_toml_str("x = 1").unwrap_err();
        assert!(e.0.contains("name"));
        let e = ScenarioSpec::from_toml_str("name = \"x\"\nschemes = [\"NOPE\"]").unwrap_err();
        assert!(e.0.contains("NOPE"));
        let e = ScenarioSpec::from_toml_str("name = \"x\"\n[field]\nkind = \"moon\"").unwrap_err();
        assert!(e.0.contains("moon"));
    }
}
