//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] fully describes an experiment: field geometry,
//! initial scatter, sensor-count sweep, radio-range combinations,
//! scheme set, durations, repetitions and the seed policy. Specs are
//! built in code (builder methods) or loaded from TOML
//! ([`ScenarioSpec::from_toml_str`]); [`ScenarioSpec::matrix`]
//! expands a spec into the flat run matrix the batch runner executes.

use crate::toml::{TomlError, TomlValue};
use msn_deploy::cpvf::OscillationAvoidance;
use msn_deploy::{
    CpvfOverrides, FloorOverrides, OptOverrides, SchemeKind, SchemeOverrides, VdOverrides,
};
use msn_field::{
    campus_grid_field, corridor_field, disaster_zone_field, paper_field, random_obstacle_field,
    scatter_clustered, scatter_uniform, two_obstacle_field, CampusGridParams, CorridorParams,
    Field, RandomObstacleParams,
};
use msn_geom::{Point, Rect};
use msn_sim::{DynEvent, EventAction, EventSchedule, FailCount, FailMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// A communication/sensing range combination (`rc`, `rs`), in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioSpec {
    /// Communication range `rc` (m).
    pub rc: f64,
    /// Sensing range `rs` (m).
    pub rs: f64,
}

impl RadioSpec {
    /// A new combination.
    pub fn new(rc: f64, rs: f64) -> Self {
        RadioSpec { rc, rs }
    }
}

impl fmt::Display for RadioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rc={} rs={}", self.rc, self.rs)
    }
}

/// Field geometry of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldSpec {
    /// The paper's 1 km × 1 km obstacle-free field.
    Paper,
    /// The two-obstacle field of Figures 3(c)/8(c).
    TwoObstacle,
    /// A block grid of buildings (see [`CampusGridParams`]).
    CampusGrid(CampusGridParams),
    /// A serpentine corridor of baffle walls (see [`CorridorParams`]).
    Corridor(CorridorParams),
    /// The debris field of the disaster-zone example.
    DisasterZone,
    /// Per-run random rectangular obstacles (§6.4 workload; see
    /// [`RandomObstacleParams`]).
    RandomObstacles(RandomObstacleParams),
}

impl FieldSpec {
    /// The spec's TOML `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            FieldSpec::Paper => "paper",
            FieldSpec::TwoObstacle => "two-obstacle",
            FieldSpec::CampusGrid(_) => "campus-grid",
            FieldSpec::Corridor(_) => "corridor",
            FieldSpec::DisasterZone => "disaster-zone",
            FieldSpec::RandomObstacles(_) => "random-obstacles",
        }
    }

    /// Whether the field differs run to run (drawn from the run's
    /// environment seed) rather than being fixed for the scenario.
    pub fn is_randomized(&self) -> bool {
        matches!(self, FieldSpec::RandomObstacles(_))
    }

    /// Materializes the field, drawing any randomness from `rng`.
    pub fn build<R: Rng>(&self, rng: &mut R) -> Field {
        match self {
            FieldSpec::Paper => paper_field(),
            FieldSpec::TwoObstacle => two_obstacle_field(),
            FieldSpec::CampusGrid(params) => campus_grid_field(params),
            FieldSpec::Corridor(params) => corridor_field(params),
            FieldSpec::DisasterZone => disaster_zone_field(),
            FieldSpec::RandomObstacles(params) => random_obstacle_field(params, rng),
        }
    }
}

/// Initial sensor distribution of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScatterSpec {
    /// Uniform over the field's lower-left quarter (the paper's §6
    /// clustered start, scaled to the field).
    ClusteredQuarter,
    /// Uniform over an explicit sub-rectangle.
    Clustered {
        /// Sub-area min x (m).
        x0: f64,
        /// Sub-area min y (m).
        y0: f64,
        /// Sub-area max x (m).
        x1: f64,
        /// Sub-area max y (m).
        y1: f64,
    },
    /// Uniform over the whole free space.
    Uniform,
}

impl ScatterSpec {
    /// The spec's TOML `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            ScatterSpec::ClusteredQuarter => "clustered-quarter",
            ScatterSpec::Clustered { .. } => "clustered",
            ScatterSpec::Uniform => "uniform",
        }
    }

    /// Draws `n` initial positions on `field` from `rng`.
    pub fn place<R: Rng>(&self, field: &Field, n: usize, rng: &mut R) -> Vec<Point> {
        match self {
            ScatterSpec::ClusteredQuarter => {
                let b = field.bounds();
                let sub = Rect::new(
                    b.min.x,
                    b.min.y,
                    b.min.x + b.width() / 2.0,
                    b.min.y + b.height() / 2.0,
                );
                scatter_clustered(field, sub, n, rng)
            }
            ScatterSpec::Clustered { x0, y0, x1, y1 } => {
                scatter_clustered(field, Rect::new(*x0, *y0, *x1, *y1), n, rng)
            }
            ScatterSpec::Uniform => scatter_uniform(field, n, rng),
        }
    }
}

/// One labeled cell of a parameter sweep: a partial override set that
/// stacks on the scenario's base [`ScenarioSpec::params`].
///
/// Variants form an extra matrix axis between repetitions and schemes,
/// so every variant competes on the same environments — Table 1's
/// `TTL = 0.1N ... 0.4N` columns and the BLG/IFLG ablation are
/// variant sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamVariant {
    /// Display label (unique within a spec), e.g. `"TTL=0.2N"`.
    pub label: String,
    /// The overrides this variant applies on top of the base params.
    pub overrides: SchemeOverrides,
}

impl ParamVariant {
    /// A new labeled variant.
    pub fn new(label: impl Into<String>, overrides: SchemeOverrides) -> Self {
        ParamVariant {
            label: label.into(),
            overrides,
        }
    }
}

/// A declarative description of one experiment batch.
///
/// # Examples
///
/// ```
/// use msn_deploy::SchemeKind;
/// use msn_scenario::ScenarioSpec;
///
/// let spec = ScenarioSpec::new("demo")
///     .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
///     .with_sensor_counts(vec![40, 80])
///     .with_radios(vec![(60.0, 40.0)])
///     .with_duration(100.0)
///     .with_repetitions(2);
/// assert_eq!(spec.matrix().len(), 2 * 2 * 2);
/// let toml = spec.to_toml_string();
/// assert_eq!(ScenarioSpec::from_toml_str(&toml).unwrap(), spec);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used for output paths and reports).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Field geometry.
    pub field: FieldSpec,
    /// Initial sensor distribution.
    pub scatter: ScatterSpec,
    /// Sensor-count sweep (one run matrix column per count).
    pub sensor_counts: Vec<usize>,
    /// Schemes to compare. Every scheme sees the same environments
    /// (field, initial positions, sim seed) within a matrix cell.
    pub schemes: Vec<SchemeKind>,
    /// Radio-range combinations to sweep.
    pub radios: Vec<RadioSpec>,
    /// Simulated duration per run (s).
    pub duration: f64,
    /// Coverage raster cell (m).
    pub coverage_cell: f64,
    /// Repetitions per (radio, n, scheme) cell with different seeds.
    pub repetitions: usize,
    /// Base seed; per-run seeds are derived deterministically from it
    /// and the run's matrix coordinates (never from thread timing).
    pub seed: u64,
    /// Scheme parameter overrides applied to every run (TOML
    /// `[params.floor]`, `[params.cpvf]`, ...).
    pub params: SchemeOverrides,
    /// Parameter sweep cells (TOML `[[variants]]`); each stacks on
    /// [`ScenarioSpec::params`]. Empty means one unlabeled default
    /// variant.
    pub variants: Vec<ParamVariant>,
    /// Whether batch outputs additionally report the movement-cost
    /// aggregates (`moves` action counts and commanded `move_dist`)
    /// per run and per cell — the scale tier's headline metric,
    /// recorded natively by the world with no profiling needed. Off
    /// by default so pre-existing specs' outputs stay byte-identical;
    /// the TOML key `movement_summary = true` opts a spec in.
    pub movement_summary: bool,
    /// Scheduled mid-run world events (sensor failures,
    /// reinforcements, obstacle changes, base relocation) plus the
    /// recovery threshold — the TOML `[dynamics]` section. `None`
    /// (the default) runs every cell statically; `Some` switches the
    /// runner to the restart-on-event engine and adds the recovery
    /// metrics to batch outputs.
    pub dynamics: Option<EventSchedule>,
}

impl ScenarioSpec {
    /// A spec with the paper's defaults: paper field, clustered
    /// quarter scatter, 240 sensors, all five schemes, rc 60 / rs 40,
    /// 750 s, 2.5 m raster, 1 repetition, seed 42.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: String::new(),
            field: FieldSpec::Paper,
            scatter: ScatterSpec::ClusteredQuarter,
            sensor_counts: vec![240],
            schemes: SchemeKind::ALL.to_vec(),
            radios: vec![RadioSpec::new(60.0, 40.0)],
            duration: 750.0,
            coverage_cell: 2.5,
            repetitions: 1,
            seed: 42,
            params: SchemeOverrides::default(),
            variants: Vec::new(),
            movement_summary: false,
            dynamics: None,
        }
    }

    /// Sets the name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the description.
    #[must_use]
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Sets the field geometry.
    #[must_use]
    pub fn with_field(mut self, field: FieldSpec) -> Self {
        self.field = field;
        self
    }

    /// Sets the initial distribution.
    #[must_use]
    pub fn with_scatter(mut self, scatter: ScatterSpec) -> Self {
        self.scatter = scatter;
        self
    }

    /// Sets the sensor-count sweep.
    #[must_use]
    pub fn with_sensor_counts(mut self, counts: Vec<usize>) -> Self {
        self.sensor_counts = counts;
        self
    }

    /// Sets the scheme set.
    #[must_use]
    pub fn with_schemes(mut self, schemes: Vec<SchemeKind>) -> Self {
        self.schemes = schemes;
        self
    }

    /// Sets the radio combinations from `(rc, rs)` pairs.
    #[must_use]
    pub fn with_radios(mut self, radios: Vec<(f64, f64)>) -> Self {
        self.radios = radios
            .into_iter()
            .map(|(rc, rs)| RadioSpec::new(rc, rs))
            .collect();
        self
    }

    /// Sets the simulated duration (s).
    #[must_use]
    pub fn with_duration(mut self, duration: f64) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the coverage raster cell (m).
    #[must_use]
    pub fn with_coverage_cell(mut self, cell: f64) -> Self {
        self.coverage_cell = cell;
        self
    }

    /// Sets the repetition count.
    #[must_use]
    pub fn with_repetitions(mut self, repetitions: usize) -> Self {
        self.repetitions = repetitions;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the scenario-wide parameter overrides.
    #[must_use]
    pub fn with_params(mut self, params: SchemeOverrides) -> Self {
        self.params = params;
        self
    }

    /// Appends a labeled parameter-sweep variant.
    #[must_use]
    pub fn with_variant(mut self, label: impl Into<String>, overrides: SchemeOverrides) -> Self {
        self.variants.push(ParamVariant::new(label, overrides));
        self
    }

    /// Enables the movement-cost aggregates (`moves` / `move_dist`)
    /// in batch outputs.
    #[must_use]
    pub fn with_movement_summary(mut self, enabled: bool) -> Self {
        self.movement_summary = enabled;
        self
    }

    /// Sets the mid-run event schedule (the `[dynamics]` section),
    /// switching every run of the spec to the restart-on-event engine.
    #[must_use]
    pub fn with_dynamics(mut self, schedule: EventSchedule) -> Self {
        self.dynamics = Some(schedule);
        self
    }

    /// Number of variant slots in the matrix (at least 1: a spec
    /// without explicit variants has one unlabeled default).
    pub fn variant_count(&self) -> usize {
        self.variants.len().max(1)
    }

    /// The label of variant slot `idx` (empty for the implicit
    /// default variant).
    pub fn variant_label(&self, idx: usize) -> &str {
        self.variants.get(idx).map_or("", |v| v.label.as_str())
    }

    /// The fully merged overrides of variant slot `idx`: the
    /// variant's own overrides stacked on the base params.
    pub fn effective_overrides(&self, idx: usize) -> SchemeOverrides {
        match self.variants.get(idx) {
            Some(v) => v.overrides.merged_over(&self.params),
            None => self.params.clone(),
        }
    }

    /// Checks the spec is executable, returning the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.sensor_counts.is_empty() || self.sensor_counts.contains(&0) {
            return Err("sensor_counts must be non-empty and positive".into());
        }
        if self.schemes.is_empty() {
            return Err("schemes must be non-empty".into());
        }
        if self.radios.is_empty() {
            return Err("radios must be non-empty".into());
        }
        if self.radios.iter().any(|r| r.rc <= 0.0 || r.rs <= 0.0) {
            return Err("radio ranges must be positive".into());
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err("duration must be positive".into());
        }
        if !(self.coverage_cell.is_finite() && self.coverage_cell > 0.0) {
            return Err("coverage_cell must be positive".into());
        }
        if self.repetitions == 0 {
            return Err("repetitions must be at least 1".into());
        }
        if let ScatterSpec::Clustered { x0, y0, x1, y1 } = self.scatter {
            if ![x0, y0, x1, y1].iter().all(|v| v.is_finite()) || x1 <= x0 || y1 <= y0 {
                return Err(
                    "clustered scatter rect must be finite with x0 < x1 and y0 < y1".into(),
                );
            }
        }
        if let Some(d) = &self.dynamics {
            d.validate(self.duration)?;
        }
        self.params.validate().map_err(|e| format!("params: {e}"))?;
        for (i, v) in self.variants.iter().enumerate() {
            if v.label.is_empty() {
                return Err(format!("variant {i} has an empty label"));
            }
            if self.variants[..i].iter().any(|p| p.label == v.label) {
                return Err(format!("duplicate variant label '{}'", v.label));
            }
            v.overrides
                .validate()
                .map_err(|e| format!("variant '{}': {e}", v.label))?;
            // the merge onto the base params must also be coherent
            self.effective_overrides(i)
                .validate()
                .map_err(|e| format!("variant '{}' merged over params: {e}", v.label))?;
        }
        Ok(())
    }

    /// A stable fingerprint of everything that determines run results
    /// except the repetition count — field, scatter, sweep axes,
    /// durations, params, variants, schemes and the base seed.
    /// Recorded in `batch.json` and checked by batch resume, so
    /// records computed under an edited spec (changed duration,
    /// override values, ...) are never silently merged; repetitions
    /// are excluded because resume explicitly supports extending
    /// them.
    pub fn resume_digest(&self) -> String {
        fnv1a_hex(&self.clone().with_repetitions(1).to_toml_string())
    }

    /// A stable fingerprint of the *complete* spec, repetitions
    /// included — the content address the job store files batches
    /// under ([`crate::JobStore`]). Two submissions share a job (and
    /// its artifacts) exactly when this digest matches; a submission
    /// that only extends repetitions is a different job even though
    /// its [`ScenarioSpec::resume_digest`] is unchanged.
    pub fn job_digest(&self) -> String {
        fnv1a_hex(&self.to_toml_string())
    }

    /// Expands the spec into its flat run matrix, in deterministic
    /// order: radios × sensor counts × repetitions × variants ×
    /// schemes. Variants and schemes share the environment of their
    /// (radio, n, rep) slice, so parameter cells compete on identical
    /// fields and scatters.
    pub fn matrix(&self) -> Vec<RunCell> {
        let mut cells = Vec::with_capacity(
            self.radios.len()
                * self.sensor_counts.len()
                * self.repetitions
                * self.variant_count()
                * self.schemes.len(),
        );
        for (radio_idx, &radio) in self.radios.iter().enumerate() {
            for (n_idx, &n) in self.sensor_counts.iter().enumerate() {
                for rep in 0..self.repetitions {
                    let env_seed = derive_seed(self.seed, radio_idx, n_idx, rep);
                    for variant in 0..self.variant_count() {
                        for &scheme in &self.schemes {
                            cells.push(RunCell {
                                index: cells.len(),
                                radio,
                                n,
                                scheme,
                                variant,
                                rep,
                                env_seed,
                            });
                        }
                    }
                }
            }
        }
        cells
    }

    /// Serializes as a TOML document.
    pub fn to_toml_string(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("name".into(), TomlValue::Str(self.name.clone()));
        root.insert(
            "description".into(),
            TomlValue::Str(self.description.clone()),
        );
        root.insert(
            "schemes".into(),
            TomlValue::Array(
                self.schemes
                    .iter()
                    .map(|k| TomlValue::Str(k.name().into()))
                    .collect(),
            ),
        );
        root.insert(
            "sensor_counts".into(),
            TomlValue::Array(
                self.sensor_counts
                    .iter()
                    .map(|&n| TomlValue::Int(n as i64))
                    .collect(),
            ),
        );
        root.insert(
            "radios".into(),
            TomlValue::Array(
                self.radios
                    .iter()
                    .map(|r| TomlValue::Array(vec![TomlValue::Float(r.rc), TomlValue::Float(r.rs)]))
                    .collect(),
            ),
        );
        root.insert("duration".into(), TomlValue::Float(self.duration));
        root.insert("coverage_cell".into(), TomlValue::Float(self.coverage_cell));
        root.insert(
            "repetitions".into(),
            TomlValue::Int(self.repetitions as i64),
        );
        root.insert("seed".into(), TomlValue::from_u64(self.seed));
        // Emitted only when set: pre-existing specs (and their resume
        // digests, which hash this serialization) stay byte-identical.
        if self.movement_summary {
            root.insert("movement_summary".into(), TomlValue::Bool(true));
        }
        // Same gating: a spec without dynamics serializes exactly as
        // it did before the section existed.
        if let Some(d) = &self.dynamics {
            root.insert("dynamics".into(), dynamics_to_toml(d));
        }
        root.insert("field".into(), field_to_toml(&self.field));
        root.insert("scatter".into(), scatter_to_toml(&self.scatter));
        if let Some(params) = overrides_to_toml(&self.params) {
            root.insert("params".into(), params);
        }
        if !self.variants.is_empty() {
            root.insert(
                "variants".into(),
                TomlValue::Array(self.variants.iter().map(variant_to_toml).collect()),
            );
        }
        TomlValue::Table(root).to_toml_string()
    }

    /// Parses a spec from a TOML document.
    pub fn from_toml_str(text: &str) -> Result<Self, TomlError> {
        let root = TomlValue::parse(text)?;
        let name = require_str(&root, "name")?;
        let description = match root.get("description") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| TomlError("'description' must be a string".into()))?
                .to_string(),
            None => String::new(),
        };
        let mut spec = ScenarioSpec::new(name).with_description(description);
        if let Some(v) = root.get("schemes") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'schemes' must be an array".into()))?;
            let mut schemes = Vec::new();
            for item in items {
                let s = item
                    .as_str()
                    .ok_or_else(|| TomlError("'schemes' entries must be strings".into()))?;
                schemes.push(s.parse::<SchemeKind>().map_err(TomlError)?);
            }
            spec.schemes = schemes;
        }
        if let Some(v) = root.get("sensor_counts") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'sensor_counts' must be an array".into()))?;
            spec.sensor_counts = items
                .iter()
                .map(|i| {
                    i.as_usize().ok_or_else(|| {
                        TomlError("'sensor_counts' entries must be non-negative integers".into())
                    })
                })
                .collect::<Result<_, _>>()?;
        }
        if let Some(v) = root.get("radios") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'radios' must be an array of [rc, rs] pairs".into()))?;
            let mut radios = Vec::new();
            for item in items {
                let pair = item
                    .as_array()
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| TomlError("each radio must be an [rc, rs] pair".into()))?;
                let rc = pair[0]
                    .as_f64()
                    .ok_or_else(|| TomlError("radio rc must be numeric".into()))?;
                let rs = pair[1]
                    .as_f64()
                    .ok_or_else(|| TomlError("radio rs must be numeric".into()))?;
                radios.push(RadioSpec::new(rc, rs));
            }
            spec.radios = radios;
        }
        if let Some(v) = root.get("duration") {
            spec.duration = v
                .as_f64()
                .ok_or_else(|| TomlError("'duration' must be numeric".into()))?;
        }
        if let Some(v) = root.get("coverage_cell") {
            spec.coverage_cell = v
                .as_f64()
                .ok_or_else(|| TomlError("'coverage_cell' must be numeric".into()))?;
        }
        if let Some(v) = root.get("repetitions") {
            spec.repetitions = v
                .as_usize()
                .ok_or_else(|| TomlError("'repetitions' must be a non-negative integer".into()))?;
        }
        if let Some(v) = root.get("seed") {
            spec.seed = v
                .as_u64()
                .ok_or_else(|| TomlError("'seed' must be a non-negative integer".into()))?;
        }
        if let Some(v) = root.get("movement_summary") {
            spec.movement_summary = v
                .as_bool()
                .ok_or_else(|| TomlError("'movement_summary' must be a boolean".into()))?;
        }
        if let Some(v) = root.get("dynamics") {
            spec.dynamics = Some(dynamics_from_toml(v)?);
        }
        if let Some(v) = root.get("field") {
            spec.field = field_from_toml(v)?;
        }
        if let Some(v) = root.get("scatter") {
            spec.scatter = scatter_from_toml(v)?;
        }
        if let Some(v) = root.get("params") {
            check_keys(v, "params", &["floor", "cpvf", "vd", "opt"])?;
            spec.params = overrides_from_toml(v)?;
        }
        if let Some(v) = root.get("variants") {
            let items = v
                .as_array()
                .ok_or_else(|| TomlError("'variants' must be an array of tables".into()))?;
            spec.variants = items
                .iter()
                .map(variant_from_toml)
                .collect::<Result<_, _>>()?;
        }
        spec.validate().map_err(TomlError)?;
        Ok(spec)
    }
}

/// One entry of the expanded run matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCell {
    /// Flat matrix index (also the execution/collect order).
    pub index: usize,
    /// Radio combination.
    pub radio: RadioSpec,
    /// Sensor count.
    pub n: usize,
    /// Scheme under test.
    pub scheme: SchemeKind,
    /// Variant slot index (0 when the spec declares no variants); see
    /// [`ScenarioSpec::variant_label`] / [`ScenarioSpec::effective_overrides`].
    pub variant: usize,
    /// Repetition number within the cell.
    pub rep: usize,
    /// Environment seed shared by every scheme in this
    /// (radio, n, rep) slice: field, initial scatter and sim seed all
    /// derive from it, so schemes compete on identical environments.
    pub env_seed: u64,
}

impl RunCell {
    /// The run's environment, materialized deterministically from
    /// [`RunCell::env_seed`]: the field and the initial positions.
    pub fn build_environment(&self, spec: &ScenarioSpec) -> (Field, Vec<Point>) {
        let field = self.build_field(spec);
        let initial = self.build_scatter(spec, &field);
        (field, initial)
    }

    /// Just the field, drawn from the field stream of
    /// [`RunCell::env_seed`]. Every cell of a (radio, n, rep) slice
    /// derives the same field, so the batch runner materializes it
    /// once per slice and shares it across schemes and variants.
    pub fn build_field(&self, spec: &ScenarioSpec) -> Field {
        let mut field_rng = SmallRng::seed_from_u64(stream_seed(self.env_seed, 1));
        spec.field.build(&mut field_rng)
    }

    /// Just the initial positions, for a pre-built `field`. The
    /// scatter RNG stream is independent of the field stream, so this
    /// is byte-identical to [`RunCell::build_environment`] when the
    /// field is deterministic (the batch runner builds fixed fields
    /// once and re-scatters per cell).
    pub fn build_scatter(&self, spec: &ScenarioSpec, field: &Field) -> Vec<Point> {
        let mut scatter_rng = SmallRng::seed_from_u64(stream_seed(self.env_seed, 2));
        spec.scatter.place(field, self.n, &mut scatter_rng)
    }

    /// The seed for the in-run RNG (message backoff, random walks).
    pub fn sim_seed(&self) -> u64 {
        stream_seed(self.env_seed, 3)
    }

    /// The seed for the dynamics event streams (victim selection,
    /// reinforcement positions, restarted segment seeds). A fourth
    /// independent stream of [`RunCell::env_seed`], so adding a
    /// `[dynamics]` section never shifts the field, scatter or sim
    /// draws — and a dynamic run's event-free prefix reproduces the
    /// static trajectory exactly.
    pub fn event_seed(&self) -> u64 {
        stream_seed(self.env_seed, 4)
    }
}

/// FNV-1a, 64-bit, as lowercase hex: stable, dependency-free, good
/// enough for consistency checks and content addressing (not a
/// security boundary). Shared by the resume digest and the job
/// store's job digest.
pub(crate) fn fnv1a_hex(text: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Derives a run's environment seed from the base seed and its matrix
/// coordinates. Pure function of its arguments — results are
/// identical at any thread count and stable across runs.
pub fn derive_seed(base: u64, radio_idx: usize, n_idx: usize, rep: usize) -> u64 {
    let state = base
        ^ (radio_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (n_idx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ (rep as u64).wrapping_mul(0x1656_67B1_9E37_79F9);
    split_mix_64(state)
}

/// Splits an environment seed into independent streams (field /
/// scatter / sim) so consuming one stream never shifts another.
fn stream_seed(env_seed: u64, stream: u64) -> u64 {
    split_mix_64(env_seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// One SplitMix64 output step (finalizer-quality bit mixing).
fn split_mix_64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn field_to_toml(field: &FieldSpec) -> TomlValue {
    let mut t = BTreeMap::new();
    t.insert("kind".into(), TomlValue::Str(field.kind().into()));
    match field {
        FieldSpec::Paper | FieldSpec::TwoObstacle | FieldSpec::DisasterZone => {}
        FieldSpec::CampusGrid(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("blocks_x".into(), TomlValue::Int(p.blocks_x as i64));
            t.insert("blocks_y".into(), TomlValue::Int(p.blocks_y as i64));
            t.insert("building".into(), TomlValue::Float(p.building));
            t.insert("street".into(), TomlValue::Float(p.street));
            t.insert("margin".into(), TomlValue::Float(p.margin));
        }
        FieldSpec::Corridor(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("baffles".into(), TomlValue::Int(p.baffles as i64));
            t.insert("gap".into(), TomlValue::Float(p.gap));
            t.insert("thickness".into(), TomlValue::Float(p.thickness));
        }
        FieldSpec::RandomObstacles(p) => {
            t.insert("width".into(), TomlValue::Float(p.width));
            t.insert("height".into(), TomlValue::Float(p.height));
            t.insert("count_min".into(), TomlValue::Int(p.count.0 as i64));
            t.insert("count_max".into(), TomlValue::Int(p.count.1 as i64));
            t.insert("side_min".into(), TomlValue::Float(p.side.0));
            t.insert("side_max".into(), TomlValue::Float(p.side.1));
            t.insert("base_clearance".into(), TomlValue::Float(p.base_clearance));
            t.insert(
                "connectivity_cell".into(),
                TomlValue::Float(p.connectivity_cell),
            );
        }
    }
    TomlValue::Table(t)
}

fn get_f64(table: &TomlValue, key: &str, default: f64) -> Result<f64, TomlError> {
    match table.get(key) {
        Some(v) => v
            .as_f64()
            .ok_or_else(|| TomlError(format!("'{key}' must be numeric"))),
        None => Ok(default),
    }
}

fn get_usize(table: &TomlValue, key: &str, default: usize) -> Result<usize, TomlError> {
    match table.get(key) {
        Some(v) => v
            .as_usize()
            .ok_or_else(|| TomlError(format!("'{key}' must be a non-negative integer"))),
        None => Ok(default),
    }
}

fn field_from_toml(v: &TomlValue) -> Result<FieldSpec, TomlError> {
    let kind = require_str(v, "kind")?;
    match kind.as_str() {
        "paper" => Ok(FieldSpec::Paper),
        "two-obstacle" => Ok(FieldSpec::TwoObstacle),
        "disaster-zone" => Ok(FieldSpec::DisasterZone),
        "campus-grid" => {
            let d = CampusGridParams::default();
            Ok(FieldSpec::CampusGrid(CampusGridParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                blocks_x: get_usize(v, "blocks_x", d.blocks_x)?,
                blocks_y: get_usize(v, "blocks_y", d.blocks_y)?,
                building: get_f64(v, "building", d.building)?,
                street: get_f64(v, "street", d.street)?,
                margin: get_f64(v, "margin", d.margin)?,
            }))
        }
        "corridor" => {
            let d = CorridorParams::default();
            Ok(FieldSpec::Corridor(CorridorParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                baffles: get_usize(v, "baffles", d.baffles)?,
                gap: get_f64(v, "gap", d.gap)?,
                thickness: get_f64(v, "thickness", d.thickness)?,
            }))
        }
        "random-obstacles" => {
            let d = RandomObstacleParams::default();
            Ok(FieldSpec::RandomObstacles(RandomObstacleParams {
                width: get_f64(v, "width", d.width)?,
                height: get_f64(v, "height", d.height)?,
                count: (
                    get_usize(v, "count_min", d.count.0)?,
                    get_usize(v, "count_max", d.count.1)?,
                ),
                side: (
                    get_f64(v, "side_min", d.side.0)?,
                    get_f64(v, "side_max", d.side.1)?,
                ),
                base_clearance: get_f64(v, "base_clearance", d.base_clearance)?,
                connectivity_cell: get_f64(v, "connectivity_cell", d.connectivity_cell)?,
            }))
        }
        other => Err(TomlError(format!(
            "unknown field kind '{other}' (expected paper, two-obstacle, campus-grid, corridor, disaster-zone or random-obstacles)"
        ))),
    }
}

/// Inserts `key = value` when the override is set.
fn put<T, F: FnOnce(T) -> TomlValue>(
    t: &mut BTreeMap<String, TomlValue>,
    key: &str,
    v: Option<T>,
    wrap: F,
) {
    if let Some(v) = v {
        t.insert(key.into(), wrap(v));
    }
}

/// Serializes an override set as its `[params]`-style table, or
/// `None` when nothing is overridden.
fn overrides_to_toml(o: &SchemeOverrides) -> Option<TomlValue> {
    let mut root = BTreeMap::new();
    let mut floor = BTreeMap::new();
    put(&mut floor, "ttl", o.floor.ttl, |v| TomlValue::Int(v as i64));
    put(&mut floor, "ttl_frac", o.floor.ttl_frac, TomlValue::Float);
    put(&mut floor, "quorum", o.floor.quorum, |v| {
        TomlValue::Int(v as i64)
    });
    put(&mut floor, "patience", o.floor.patience, |v| {
        TomlValue::Int(v as i64)
    });
    put(
        &mut floor,
        "movable_threshold",
        o.floor.movable_threshold,
        TomlValue::Float,
    );
    put(
        &mut floor,
        "phase1_timeout_frac",
        o.floor.phase1_timeout_frac,
        TomlValue::Float,
    );
    put(
        &mut floor,
        "max_invites_per_ep",
        o.floor.max_invites_per_ep,
        |v| TomlValue::Int(v as i64),
    );
    put(
        &mut floor,
        "max_concurrent_eps",
        o.floor.max_concurrent_eps,
        |v| TomlValue::Int(v as i64),
    );
    put(
        &mut floor,
        "idle_stop_periods",
        o.floor.idle_stop_periods,
        |v| TomlValue::Int(v as i64),
    );
    put(
        &mut floor,
        "enable_blg",
        o.floor.enable_blg,
        TomlValue::Bool,
    );
    put(
        &mut floor,
        "enable_iflg",
        o.floor.enable_iflg,
        TomlValue::Bool,
    );
    if !floor.is_empty() {
        root.insert("floor".into(), TomlValue::Table(floor));
    }
    let mut cpvf = BTreeMap::new();
    put(
        &mut cpvf,
        "backoff_max",
        o.cpvf.backoff_max,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "allow_parent_change",
        o.cpvf.allow_parent_change,
        TomlValue::Bool,
    );
    if let Some(osc) = o.cpvf.oscillation {
        let (name, delta) = match osc {
            OscillationAvoidance::Off => ("off", None),
            OscillationAvoidance::OneStep { delta } => ("one-step", Some(delta)),
            OscillationAvoidance::TwoStep { delta } => ("two-step", Some(delta)),
        };
        cpvf.insert("oscillation".into(), TomlValue::Str(name.into()));
        put(&mut cpvf, "delta", delta, TomlValue::Float);
    }
    put(
        &mut cpvf,
        "neighbor_threshold",
        o.cpvf.neighbor_threshold,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "neighbor_gain",
        o.cpvf.neighbor_gain,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "obstacle_range",
        o.cpvf.obstacle_range,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "obstacle_gain",
        o.cpvf.obstacle_gain,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "boundary_range",
        o.cpvf.boundary_range,
        TomlValue::Float,
    );
    put(
        &mut cpvf,
        "boundary_gain",
        o.cpvf.boundary_gain,
        TomlValue::Float,
    );
    put(&mut cpvf, "min_force", o.cpvf.min_force, TomlValue::Float);
    if !cpvf.is_empty() {
        root.insert("cpvf".into(), TomlValue::Table(cpvf));
    }
    let mut vd = BTreeMap::new();
    put(&mut vd, "rounds", o.vd.rounds, |v| TomlValue::Int(v as i64));
    put(
        &mut vd,
        "step_cap_frac",
        o.vd.step_cap_frac,
        TomlValue::Float,
    );
    put(&mut vd, "explode", o.vd.explode, TomlValue::Bool);
    if !vd.is_empty() {
        root.insert("vd".into(), TomlValue::Table(vd));
    }
    let mut opt = BTreeMap::new();
    put(
        &mut opt,
        "connector_slack",
        o.opt.connector_slack,
        TomlValue::Float,
    );
    if !opt.is_empty() {
        root.insert("opt".into(), TomlValue::Table(opt));
    }
    if root.is_empty() {
        None
    } else {
        Some(TomlValue::Table(root))
    }
}

fn opt_f64(t: &TomlValue, key: &str) -> Result<Option<f64>, TomlError> {
    match t.get(key) {
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| TomlError(format!("'{key}' must be numeric"))),
        None => Ok(None),
    }
}

fn opt_usize(t: &TomlValue, key: &str) -> Result<Option<usize>, TomlError> {
    match t.get(key) {
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| TomlError(format!("'{key}' must be a non-negative integer"))),
        None => Ok(None),
    }
}

fn opt_u32(t: &TomlValue, key: &str) -> Result<Option<u32>, TomlError> {
    opt_usize(t, key)?
        .map(|v| {
            u32::try_from(v)
                .map_err(|_| TomlError(format!("'{key}' must fit in 32 bits (got {v})")))
        })
        .transpose()
}

fn opt_bool(t: &TomlValue, key: &str) -> Result<Option<bool>, TomlError> {
    match t.get(key) {
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| TomlError(format!("'{key}' must be a boolean"))),
        None => Ok(None),
    }
}

/// Rejects unknown keys so a typo in a spec fails loudly instead of
/// silently running with defaults.
fn check_keys(t: &TomlValue, section: &str, allowed: &[&str]) -> Result<(), TomlError> {
    let TomlValue::Table(map) = t else {
        return Err(TomlError(format!("'{section}' must be a table")));
    };
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(TomlError(format!(
                "unknown key '{key}' in [{section}] (expected one of {})",
                allowed.join(", ")
            )));
        }
    }
    Ok(())
}

/// Parses a `[params]`-style override table (callers have already
/// checked the table's own keys).
fn overrides_from_toml(v: &TomlValue) -> Result<SchemeOverrides, TomlError> {
    let mut o = SchemeOverrides::default();
    if let Some(t) = v.get("floor") {
        check_keys(
            t,
            "params.floor",
            &[
                "ttl",
                "ttl_frac",
                "quorum",
                "patience",
                "movable_threshold",
                "phase1_timeout_frac",
                "max_invites_per_ep",
                "max_concurrent_eps",
                "idle_stop_periods",
                "enable_blg",
                "enable_iflg",
            ],
        )?;
        o.floor = FloorOverrides {
            ttl: opt_usize(t, "ttl")?,
            ttl_frac: opt_f64(t, "ttl_frac")?,
            quorum: opt_usize(t, "quorum")?,
            patience: opt_u32(t, "patience")?,
            movable_threshold: opt_f64(t, "movable_threshold")?,
            phase1_timeout_frac: opt_f64(t, "phase1_timeout_frac")?,
            max_invites_per_ep: opt_u32(t, "max_invites_per_ep")?,
            max_concurrent_eps: opt_usize(t, "max_concurrent_eps")?,
            idle_stop_periods: opt_u32(t, "idle_stop_periods")?,
            enable_blg: opt_bool(t, "enable_blg")?,
            enable_iflg: opt_bool(t, "enable_iflg")?,
        };
    }
    if let Some(t) = v.get("cpvf") {
        check_keys(
            t,
            "params.cpvf",
            &[
                "backoff_max",
                "allow_parent_change",
                "oscillation",
                "delta",
                "neighbor_threshold",
                "neighbor_gain",
                "obstacle_range",
                "obstacle_gain",
                "boundary_range",
                "boundary_gain",
                "min_force",
            ],
        )?;
        let oscillation = match t.get("oscillation") {
            None => {
                if t.get("delta").is_some() {
                    return Err(TomlError("'delta' requires 'oscillation' to be set".into()));
                }
                None
            }
            Some(kind) => {
                let kind = kind
                    .as_str()
                    .ok_or_else(|| TomlError("'oscillation' must be a string".into()))?;
                let delta = opt_f64(t, "delta")?;
                Some(match (kind, delta) {
                    ("off", None) => OscillationAvoidance::Off,
                    ("off", Some(_)) => {
                        return Err(TomlError("oscillation 'off' takes no delta".into()))
                    }
                    ("one-step", Some(delta)) => OscillationAvoidance::OneStep { delta },
                    ("two-step", Some(delta)) => OscillationAvoidance::TwoStep { delta },
                    ("one-step" | "two-step", None) => {
                        return Err(TomlError(format!("oscillation '{kind}' needs a 'delta'")))
                    }
                    (other, _) => {
                        return Err(TomlError(format!(
                            "unknown oscillation '{other}' (expected off, one-step or two-step)"
                        )))
                    }
                })
            }
        };
        o.cpvf = CpvfOverrides {
            backoff_max: opt_f64(t, "backoff_max")?,
            allow_parent_change: opt_bool(t, "allow_parent_change")?,
            oscillation,
            neighbor_threshold: opt_f64(t, "neighbor_threshold")?,
            neighbor_gain: opt_f64(t, "neighbor_gain")?,
            obstacle_range: opt_f64(t, "obstacle_range")?,
            obstacle_gain: opt_f64(t, "obstacle_gain")?,
            boundary_range: opt_f64(t, "boundary_range")?,
            boundary_gain: opt_f64(t, "boundary_gain")?,
            min_force: opt_f64(t, "min_force")?,
        };
    }
    if let Some(t) = v.get("vd") {
        check_keys(t, "params.vd", &["rounds", "step_cap_frac", "explode"])?;
        o.vd = VdOverrides {
            rounds: opt_usize(t, "rounds")?,
            step_cap_frac: opt_f64(t, "step_cap_frac")?,
            explode: opt_bool(t, "explode")?,
        };
    }
    if let Some(t) = v.get("opt") {
        check_keys(t, "params.opt", &["connector_slack"])?;
        o.opt = OptOverrides {
            connector_slack: opt_f64(t, "connector_slack")?,
        };
    }
    Ok(o)
}

fn variant_to_toml(v: &ParamVariant) -> TomlValue {
    let mut t = match overrides_to_toml(&v.overrides) {
        Some(TomlValue::Table(t)) => t,
        _ => BTreeMap::new(),
    };
    t.insert("label".into(), TomlValue::Str(v.label.clone()));
    TomlValue::Table(t)
}

fn variant_from_toml(v: &TomlValue) -> Result<ParamVariant, TomlError> {
    check_keys(v, "variants", &["label", "floor", "cpvf", "vd", "opt"])?;
    let label = require_str(v, "label")
        .map_err(|_| TomlError("each [[variants]] entry needs a string 'label'".into()))?;
    Ok(ParamVariant::new(label, overrides_from_toml(v)?))
}

fn scatter_to_toml(scatter: &ScatterSpec) -> TomlValue {
    let mut t = BTreeMap::new();
    t.insert("kind".into(), TomlValue::Str(scatter.kind().into()));
    if let ScatterSpec::Clustered { x0, y0, x1, y1 } = scatter {
        t.insert("x0".into(), TomlValue::Float(*x0));
        t.insert("y0".into(), TomlValue::Float(*y0));
        t.insert("x1".into(), TomlValue::Float(*x1));
        t.insert("y1".into(), TomlValue::Float(*y1));
    }
    TomlValue::Table(t)
}

fn scatter_from_toml(v: &TomlValue) -> Result<ScatterSpec, TomlError> {
    let kind = require_str(v, "kind")?;
    match kind.as_str() {
        "clustered-quarter" => Ok(ScatterSpec::ClusteredQuarter),
        "uniform" => Ok(ScatterSpec::Uniform),
        "clustered" => Ok(ScatterSpec::Clustered {
            x0: get_f64(v, "x0", 0.0)?,
            y0: get_f64(v, "y0", 0.0)?,
            x1: get_f64(v, "x1", 0.0)?,
            y1: get_f64(v, "y1", 0.0)?,
        }),
        other => Err(TomlError(format!(
            "unknown scatter kind '{other}' (expected clustered-quarter, clustered or uniform)"
        ))),
    }
}

fn rect_to_toml(r: &Rect) -> TomlValue {
    TomlValue::Array(vec![
        TomlValue::Float(r.min.x),
        TomlValue::Float(r.min.y),
        TomlValue::Float(r.max.x),
        TomlValue::Float(r.max.y),
    ])
}

fn rect_from_toml(t: &TomlValue, key: &str) -> Result<Rect, TomlError> {
    let arr = t
        .get(key)
        .and_then(TomlValue::as_array)
        .filter(|a| a.len() == 4)
        .ok_or_else(|| TomlError(format!("'{key}' must be an [x0, y0, x1, y1] array")))?;
    let mut v = [0.0; 4];
    for (slot, item) in v.iter_mut().zip(arr) {
        *slot = item
            .as_f64()
            .ok_or_else(|| TomlError(format!("'{key}' entries must be numeric")))?;
    }
    if !(v[0] < v[2] && v[1] < v[3]) {
        return Err(TomlError(format!(
            "'{key}' must satisfy x0 < x1 and y0 < y1"
        )));
    }
    Ok(Rect::new(v[0], v[1], v[2], v[3]))
}

fn dynamics_to_toml(d: &EventSchedule) -> TomlValue {
    let mut root = BTreeMap::new();
    root.insert("recovery_frac".into(), TomlValue::Float(d.recovery_frac));
    if !d.events.is_empty() {
        let events = d
            .events
            .iter()
            .map(|e| {
                let mut t = BTreeMap::new();
                t.insert("time".into(), TomlValue::Float(e.time));
                t.insert("kind".into(), TomlValue::Str(e.action.kind().into()));
                match &e.action {
                    EventAction::Fail { count, mode } => {
                        match count {
                            FailCount::Count(k) => {
                                t.insert("count".into(), TomlValue::Int(*k as i64));
                            }
                            FailCount::Frac(f) => {
                                t.insert("frac".into(), TomlValue::Float(*f));
                            }
                        }
                        match mode {
                            FailMode::Random => {}
                            FailMode::Drained => {
                                t.insert("mode".into(), TomlValue::Str("drained".into()));
                            }
                            FailMode::Region(r) => {
                                t.insert("mode".into(), TomlValue::Str("region".into()));
                                t.insert("region".into(), rect_to_toml(r));
                            }
                        }
                    }
                    EventAction::Reinforce { count, rect } => {
                        t.insert("count".into(), TomlValue::Int(*count as i64));
                        t.insert("rect".into(), rect_to_toml(rect));
                    }
                    EventAction::ObstacleAdd { rect } => {
                        t.insert("rect".into(), rect_to_toml(rect));
                    }
                    EventAction::ObstacleRemove { index } => {
                        t.insert("index".into(), TomlValue::Int(*index as i64));
                    }
                    EventAction::RelocateBase { to } => {
                        t.insert(
                            "to".into(),
                            TomlValue::Array(vec![TomlValue::Float(to.x), TomlValue::Float(to.y)]),
                        );
                    }
                }
                TomlValue::Table(t)
            })
            .collect();
        root.insert("events".into(), TomlValue::Array(events));
    }
    TomlValue::Table(root)
}

fn dyn_event_from_toml(v: &TomlValue) -> Result<DynEvent, TomlError> {
    let kind = require_str(v, "kind")?;
    let time = v
        .get("time")
        .and_then(TomlValue::as_f64)
        .ok_or_else(|| TomlError("each [[dynamics.events]] entry needs a numeric 'time'".into()))?;
    let action = match kind.as_str() {
        "fail" => {
            check_keys(
                v,
                "dynamics.events",
                &["kind", "time", "count", "frac", "mode", "region"],
            )?;
            let count = match (opt_usize(v, "count")?, opt_f64(v, "frac")?) {
                (Some(k), None) => FailCount::Count(k),
                (None, Some(f)) => FailCount::Frac(f),
                (None, None) => {
                    return Err(TomlError("a fail event needs 'count' or 'frac'".into()))
                }
                (Some(_), Some(_)) => {
                    return Err(TomlError(
                        "a fail event takes 'count' or 'frac', not both".into(),
                    ))
                }
            };
            let mode = match v.get("mode").map(|m| {
                m.as_str()
                    .ok_or_else(|| TomlError("'mode' must be a string".into()))
            }) {
                None => FailMode::Random,
                Some(m) => match m? {
                    "random" => FailMode::Random,
                    "drained" => FailMode::Drained,
                    "region" => FailMode::Region(rect_from_toml(v, "region")?),
                    other => {
                        return Err(TomlError(format!(
                            "unknown fail mode '{other}' (expected random, drained or region)"
                        )))
                    }
                },
            };
            EventAction::Fail { count, mode }
        }
        "reinforce" => {
            check_keys(v, "dynamics.events", &["kind", "time", "count", "rect"])?;
            EventAction::Reinforce {
                count: opt_usize(v, "count")?
                    .ok_or_else(|| TomlError("a reinforce event needs a 'count'".into()))?,
                rect: rect_from_toml(v, "rect")?,
            }
        }
        "obstacle-add" => {
            check_keys(v, "dynamics.events", &["kind", "time", "rect"])?;
            EventAction::ObstacleAdd {
                rect: rect_from_toml(v, "rect")?,
            }
        }
        "obstacle-remove" => {
            check_keys(v, "dynamics.events", &["kind", "time", "index"])?;
            EventAction::ObstacleRemove {
                index: opt_usize(v, "index")?
                    .ok_or_else(|| TomlError("an obstacle-remove event needs an 'index'".into()))?,
            }
        }
        "relocate-base" => {
            check_keys(v, "dynamics.events", &["kind", "time", "to"])?;
            let arr = v
                .get("to")
                .and_then(TomlValue::as_array)
                .filter(|a| a.len() == 2)
                .ok_or_else(|| TomlError("'to' must be an [x, y] pair".into()))?;
            let x = arr[0]
                .as_f64()
                .ok_or_else(|| TomlError("'to' entries must be numeric".into()))?;
            let y = arr[1]
                .as_f64()
                .ok_or_else(|| TomlError("'to' entries must be numeric".into()))?;
            EventAction::RelocateBase {
                to: Point::new(x, y),
            }
        }
        other => {
            return Err(TomlError(format!(
                "unknown dynamics event kind '{other}' (expected fail, reinforce, \
                 obstacle-add, obstacle-remove or relocate-base)"
            )))
        }
    };
    Ok(DynEvent { time, action })
}

fn dynamics_from_toml(v: &TomlValue) -> Result<EventSchedule, TomlError> {
    check_keys(v, "dynamics", &["recovery_frac", "events"])?;
    let mut schedule = EventSchedule::new(Vec::new());
    schedule.recovery_frac = get_f64(v, "recovery_frac", EventSchedule::DEFAULT_RECOVERY_FRAC)?;
    if let Some(items) = v.get("events") {
        let items = items
            .as_array()
            .ok_or_else(|| TomlError("'dynamics.events' must be an array of tables".into()))?;
        schedule.events = items
            .iter()
            .map(dyn_event_from_toml)
            .collect::<Result<_, _>>()?;
    }
    Ok(schedule)
}

fn require_str(table: &TomlValue, key: &str) -> Result<String, TomlError> {
    table
        .get(key)
        .and_then(TomlValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| TomlError(format!("missing required string '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shares_env_seed_across_schemes() {
        let spec = ScenarioSpec::new("t")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_sensor_counts(vec![10, 20])
            .with_radios(vec![(60.0, 40.0), (30.0, 40.0)])
            .with_repetitions(3);
        let cells = spec.matrix();
        assert_eq!(cells.len(), 2 * 2 * 3 * 2);
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        // schemes within one (radio, n, rep) slice share the environment
        for pair in cells.chunks(2) {
            assert_eq!(pair[0].env_seed, pair[1].env_seed);
            assert_ne!(pair[0].scheme, pair[1].scheme);
        }
        // different reps get different environments
        assert_ne!(cells[0].env_seed, cells[2].env_seed);
    }

    #[test]
    fn derived_seeds_are_stable_and_spread() {
        assert_eq!(derive_seed(42, 0, 1, 2), derive_seed(42, 0, 1, 2));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 1, 0, 0));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 0, 1, 0));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(42, 0, 0, 1));
        assert_ne!(derive_seed(42, 0, 0, 0), derive_seed(43, 0, 0, 0));
    }

    #[test]
    fn environment_is_deterministic() {
        let spec = ScenarioSpec::new("t")
            .with_field(FieldSpec::RandomObstacles(RandomObstacleParams::default()))
            .with_sensor_counts(vec![15]);
        let cell = spec.matrix()[0];
        let (f1, i1) = cell.build_environment(&spec);
        let (f2, i2) = cell.build_environment(&spec);
        assert_eq!(f1.obstacles().len(), f2.obstacles().len());
        assert_eq!(i1, i2);
        assert_eq!(i1.len(), 15);
    }

    #[test]
    fn toml_roundtrip_all_field_kinds() {
        let fields = [
            FieldSpec::Paper,
            FieldSpec::TwoObstacle,
            FieldSpec::CampusGrid(CampusGridParams::default()),
            FieldSpec::Corridor(CorridorParams::default()),
            FieldSpec::DisasterZone,
            FieldSpec::RandomObstacles(RandomObstacleParams::default()),
        ];
        let scatters = [
            ScatterSpec::ClusteredQuarter,
            ScatterSpec::Uniform,
            ScatterSpec::Clustered {
                x0: 0.0,
                y0: 10.0,
                x1: 200.0,
                y1: 300.0,
            },
        ];
        for field in fields {
            for scatter in scatters.iter().cloned() {
                let spec = ScenarioSpec::new("roundtrip")
                    .with_description("all kinds")
                    .with_field(field.clone())
                    .with_scatter(scatter)
                    .with_schemes(vec![SchemeKind::Floor, SchemeKind::Minimax])
                    .with_sensor_counts(vec![30, 60])
                    .with_radios(vec![(20.0, 60.0), (60.0, 60.0)])
                    .with_duration(120.0)
                    .with_coverage_cell(5.0)
                    .with_repetitions(4)
                    .with_seed(7);
                let text = spec.to_toml_string();
                let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
                assert_eq!(parsed, spec, "round-trip failed for:\n{text}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(ScenarioSpec::new("x").validate().is_ok());
        assert!(ScenarioSpec::new("").validate().is_err());
        assert!(ScenarioSpec::new("x")
            .with_sensor_counts(vec![])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_schemes(vec![])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_radios(vec![(0.0, 40.0)])
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_duration(0.0)
            .validate()
            .is_err());
        assert!(ScenarioSpec::new("x")
            .with_repetitions(0)
            .validate()
            .is_err());
        // degenerate, inverted and non-finite clustered rects
        for (x0, y0, x1, y1) in [
            (0.0, 0.0, 0.0, 0.0),
            (100.0, 0.0, 50.0, 50.0),
            (0.0, f64::NAN, 50.0, 50.0),
        ] {
            assert!(ScenarioSpec::new("x")
                .with_scatter(ScatterSpec::Clustered { x0, y0, x1, y1 })
                .validate()
                .is_err());
        }
    }

    #[test]
    fn variants_extend_the_matrix_and_share_environments() {
        let no_blg = SchemeOverrides {
            floor: msn_deploy::FloorOverrides {
                enable_blg: Some(false),
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = ScenarioSpec::new("v")
            .with_schemes(vec![SchemeKind::Floor])
            .with_sensor_counts(vec![10])
            .with_repetitions(2)
            .with_variant("full", SchemeOverrides::default())
            .with_variant("no-blg", no_blg.clone());
        let cells = spec.matrix();
        assert_eq!(cells.len(), 2 * 2, "reps x variants");
        // variants within one rep share the environment
        assert_eq!(cells[0].env_seed, cells[1].env_seed);
        assert_eq!(cells[0].variant, 0);
        assert_eq!(cells[1].variant, 1);
        assert_eq!(spec.variant_label(1), "no-blg");
        assert_eq!(spec.effective_overrides(1), no_blg);
        // a spec without variants has exactly one slot with no overrides
        let plain = ScenarioSpec::new("p");
        assert_eq!(plain.variant_count(), 1);
        assert_eq!(plain.variant_label(0), "");
        assert!(plain.effective_overrides(0).is_default());
    }

    #[test]
    fn variants_stack_on_base_params() {
        let base = SchemeOverrides {
            floor: msn_deploy::FloorOverrides {
                quorum: Some(3),
                ..Default::default()
            },
            ..Default::default()
        };
        let ttl = SchemeOverrides {
            floor: msn_deploy::FloorOverrides {
                ttl: Some(12),
                ..Default::default()
            },
            ..Default::default()
        };
        let spec = ScenarioSpec::new("s")
            .with_params(base)
            .with_variant("ttl-12", ttl);
        let eff = spec.effective_overrides(0);
        assert_eq!(eff.floor.quorum, Some(3));
        assert_eq!(eff.floor.ttl, Some(12));
    }

    #[test]
    fn params_and_variants_roundtrip_toml() {
        let spec = ScenarioSpec::new("sweep")
            .with_schemes(vec![SchemeKind::Cpvf, SchemeKind::Floor])
            .with_params(SchemeOverrides {
                floor: msn_deploy::FloorOverrides {
                    quorum: Some(3),
                    enable_iflg: Some(true),
                    ..Default::default()
                },
                cpvf: msn_deploy::CpvfOverrides {
                    backoff_max: Some(5.0),
                    obstacle_gain: Some(2.5),
                    ..Default::default()
                },
                vd: msn_deploy::VdOverrides {
                    rounds: Some(8),
                    ..Default::default()
                },
                opt: msn_deploy::OptOverrides {
                    connector_slack: Some(0.9),
                },
            })
            .with_variant("off", SchemeOverrides::default())
            .with_variant(
                "two-step-4",
                SchemeOverrides {
                    cpvf: msn_deploy::CpvfOverrides {
                        oscillation: Some(OscillationAvoidance::TwoStep { delta: 4.0 }),
                        ..Default::default()
                    },
                    ..Default::default()
                },
            )
            .with_variant(
                "ttl-frac",
                SchemeOverrides {
                    floor: msn_deploy::FloorOverrides {
                        ttl_frac: Some(0.2),
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
        let text = spec.to_toml_string();
        let parsed = ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(parsed, spec, "round-trip failed for:\n{text}");
        assert!(text.contains("[[variants]]"), "{text}");
        assert!(text.contains("[params.floor]"), "{text}");
    }

    #[test]
    fn bad_params_are_rejected_with_context() {
        let e =
            ScenarioSpec::from_toml_str("name = \"x\"\n[params.floor]\nttl = 5\nttl_frac = 0.2\n")
                .unwrap_err();
        assert!(e.0.contains("mutually exclusive"), "{}", e.0);
        let e =
            ScenarioSpec::from_toml_str("name = \"x\"\n[params.floor]\nttll = 5\n").unwrap_err();
        assert!(e.0.contains("unknown key 'ttll'"), "{}", e.0);
        let e =
            ScenarioSpec::from_toml_str("name = \"x\"\n[params.cpvf]\ndelta = 2.0\n").unwrap_err();
        assert!(e.0.contains("oscillation"), "{}", e.0);
        let e = ScenarioSpec::from_toml_str(
            "name = \"x\"\n[[variants]]\nlabel = \"a\"\n[[variants]]\nlabel = \"a\"\n",
        )
        .unwrap_err();
        assert!(e.0.contains("duplicate variant label"), "{}", e.0);
        let e = ScenarioSpec::from_toml_str("name = \"x\"\n[[variants]]\nfloor = 1\n").unwrap_err();
        assert!(e.0.contains("label"), "{}", e.0);
        // u32 fields reject values that would truncate
        let e =
            ScenarioSpec::from_toml_str("name = \"x\"\n[params.floor]\npatience = 4294967296\n")
                .unwrap_err();
        assert!(e.0.contains("32 bits"), "{}", e.0);
    }

    #[test]
    fn digest_tracks_content_but_not_repetitions() {
        let spec = ScenarioSpec::new("d");
        let base = spec.resume_digest();
        assert_eq!(spec.clone().with_repetitions(5).resume_digest(), base);
        assert_ne!(spec.clone().with_seed(7).resume_digest(), base);
        assert_ne!(spec.clone().with_duration(10.0).resume_digest(), base);
        assert_ne!(
            spec.clone()
                .with_variant("v", SchemeOverrides::default())
                .resume_digest(),
            base
        );
    }

    #[test]
    fn seeds_above_i64_max_roundtrip() {
        let spec = ScenarioSpec::new("big-seed").with_seed(u64::MAX);
        let text = spec.to_toml_string();
        assert!(text.contains("seed = 18446744073709551615"), "{text}");
        assert_eq!(ScenarioSpec::from_toml_str(&text).unwrap(), spec);
    }

    #[test]
    fn parse_errors_name_the_problem() {
        let e = ScenarioSpec::from_toml_str("x = 1").unwrap_err();
        assert!(e.0.contains("name"));
        let e = ScenarioSpec::from_toml_str("name = \"x\"\nschemes = [\"NOPE\"]").unwrap_err();
        assert!(e.0.contains("NOPE"));
        let e = ScenarioSpec::from_toml_str("name = \"x\"\n[field]\nkind = \"moon\"").unwrap_err();
        assert!(e.0.contains("moon"));
    }

    fn every_kind_schedule() -> EventSchedule {
        let mut s = EventSchedule::new(vec![
            DynEvent {
                time: 100.0,
                action: EventAction::Fail {
                    count: FailCount::Count(5),
                    mode: FailMode::Random,
                },
            },
            DynEvent {
                time: 200.0,
                action: EventAction::Fail {
                    count: FailCount::Frac(0.25),
                    mode: FailMode::Drained,
                },
            },
            DynEvent {
                time: 250.0,
                action: EventAction::Fail {
                    count: FailCount::Count(3),
                    mode: FailMode::Region(Rect::new(10.0, 10.0, 90.0, 90.0)),
                },
            },
            DynEvent {
                time: 300.0,
                action: EventAction::Reinforce {
                    count: 4,
                    rect: Rect::new(0.0, 0.0, 50.0, 50.0),
                },
            },
            DynEvent {
                time: 400.0,
                action: EventAction::ObstacleAdd {
                    rect: Rect::new(20.0, 20.0, 60.0, 60.0),
                },
            },
            DynEvent {
                time: 500.0,
                action: EventAction::ObstacleRemove { index: 0 },
            },
            DynEvent {
                time: 600.0,
                action: EventAction::RelocateBase {
                    to: Point::new(7.0, 8.0),
                },
            },
        ]);
        s.recovery_frac = 0.9;
        s
    }

    #[test]
    fn dynamics_roundtrip_every_event_kind() {
        let spec = ScenarioSpec::new("dyn").with_dynamics(every_kind_schedule());
        let text = spec.to_toml_string();
        assert!(text.contains("[dynamics]"), "{text}");
        assert!(text.contains("[[dynamics.events]]"), "{text}");
        assert_eq!(ScenarioSpec::from_toml_str(&text).unwrap(), spec);
    }

    #[test]
    fn dynamics_absent_leaves_serialization_untouched() {
        let spec = ScenarioSpec::new("plain");
        let text = spec.to_toml_string();
        assert!(!text.contains("dynamics"), "{text}");
        // adding a schedule changes the resume digest, so resume never
        // merges static records into a dynamic batch
        let base = spec.resume_digest();
        assert_ne!(
            spec.clone()
                .with_dynamics(every_kind_schedule())
                .resume_digest(),
            base
        );
    }

    #[test]
    fn dynamics_validation_runs_against_the_spec_duration() {
        // 800.0 exceeds the default 750 s duration
        let mut late = every_kind_schedule();
        late.events[0].time = 800.0;
        late.events.truncate(1);
        let spec = ScenarioSpec::new("late").with_dynamics(late);
        let err = spec.validate().unwrap_err();
        assert!(err.contains("750"), "{err}");
        let text = spec.to_toml_string();
        assert!(ScenarioSpec::from_toml_str(&text).is_err());
    }

    #[test]
    fn dynamics_parse_errors_name_the_problem() {
        let base = "name = \"x\"\n[dynamics]\n";
        for (body, needle) in [
            ("[[dynamics.events]]\nkind = \"melt\"\ntime = 5.0", "melt"),
            ("[[dynamics.events]]\nkind = \"fail\"\ntime = 5.0", "'count' or 'frac'"),
            (
                "[[dynamics.events]]\nkind = \"fail\"\ntime = 5.0\ncount = 2\nfrac = 0.5",
                "not both",
            ),
            (
                "[[dynamics.events]]\nkind = \"fail\"\ntime = 5.0\ncount = 2\nmode = \"sideways\"",
                "sideways",
            ),
            (
                "[[dynamics.events]]\nkind = \"reinforce\"\ntime = 5.0\ncount = 2\nrect = [0.0, 0.0]",
                "rect",
            ),
            ("[[dynamics.events]]\nkind = \"fail\"\ncount = 2", "time"),
            ("recovery_frac = 2.0", "recovery_frac"),
            ("typo = 1", "typo"),
        ] {
            let e = ScenarioSpec::from_toml_str(&format!("{base}{body}")).unwrap_err();
            assert!(e.0.contains(needle), "body {body:?} gave {e}");
        }
    }

    #[test]
    fn event_seed_is_a_distinct_stream() {
        let spec = ScenarioSpec::new("s");
        let cell = spec.matrix()[0];
        let others = [
            cell.sim_seed(),
            stream_seed(cell.env_seed, 1),
            stream_seed(cell.env_seed, 2),
        ];
        assert!(!others.contains(&cell.event_seed()));
        assert_eq!(cell.event_seed(), spec.matrix()[0].event_seed());
    }
}
