//! Streaming progress events for batch runs.
//!
//! The runner reports run lifecycle and checkpoint writes through a
//! [`ProgressSink`] callback; the CLI turns events into either a
//! human progress line (elapsed + ETA) or an NDJSON stream on stderr
//! (`scenario run --progress ndjson`) — one schema-stable JSON object
//! per line, the event vocabulary a future `scenario serve` will
//! speak. Events carry the run's matrix coordinates and environment
//! seed, so a consumer can correlate them with `batch.json` records.
//!
//! Emitting events never perturbs the simulation: events are built
//! from already-computed records and wall-clock readings only.

use crate::json::Json;
use std::fmt;
use std::sync::Arc;

/// One progress event of a batch run.
///
/// `elapsed_s` is wall time since the batch started; `eta_s` is the
/// linear estimate `elapsed * remaining / completed` over the runs
/// this invocation actually executes (cached cells restored by
/// `--resume` are excluded — they complete instantly).
#[derive(Debug, Clone, PartialEq)]
pub enum ProgressEvent {
    /// The batch is about to execute.
    BatchStarted {
        /// Scenario name.
        scenario: String,
        /// Runs this invocation will execute (matrix minus cached).
        total: usize,
        /// Matrix cells restored from a prior `batch.json`.
        cached: usize,
        /// Worker threads.
        threads: usize,
    },
    /// A worker picked up one matrix cell.
    RunStarted {
        /// Matrix index of the cell.
        index: usize,
        /// Communication radius.
        rc: f64,
        /// Sensing radius.
        rs: f64,
        /// Sensor count.
        n: usize,
        /// Scheme name.
        scheme: String,
        /// Variant label (empty without variants).
        variant: String,
        /// Repetition number.
        rep: usize,
        /// Environment seed of the run.
        env_seed: u64,
    },
    /// A run completed and its record is in place.
    RunFinished {
        /// Matrix index of the cell.
        index: usize,
        /// Communication radius.
        rc: f64,
        /// Sensing radius.
        rs: f64,
        /// Sensor count.
        n: usize,
        /// Scheme name.
        scheme: String,
        /// Variant label (empty without variants).
        variant: String,
        /// Repetition number.
        rep: usize,
        /// Environment seed of the run.
        env_seed: u64,
        /// Final coverage fraction of the run.
        coverage: f64,
        /// Runs finished so far this invocation.
        completed: usize,
        /// Runs this invocation executes in total.
        total: usize,
        /// Seconds since the batch started.
        elapsed_s: f64,
        /// Estimated seconds to completion (see [`eta_seconds`]).
        eta_s: Option<f64>,
    },
    /// A `--checkpoint-every` snapshot landed on disk.
    CheckpointWritten {
        /// Destination `batch.json`.
        path: String,
        /// Completed runs the checkpoint covers.
        runs: usize,
    },
    /// Every run finished (before output files are written).
    BatchFinished {
        /// Scenario name.
        scenario: String,
        /// Runs executed this invocation.
        total: usize,
        /// Seconds since the batch started.
        elapsed_s: f64,
    },
}

impl ProgressEvent {
    /// The event as a JSON object with a fixed member order — the
    /// NDJSON schema (`event` discriminates the variant).
    pub fn to_json(&self) -> Json {
        match self {
            ProgressEvent::BatchStarted {
                scenario,
                total,
                cached,
                threads,
            } => Json::obj()
                .field("event", "batch-started")
                .field("scenario", scenario.as_str())
                .field("total", *total)
                .field("cached", *cached)
                .field("threads", *threads),
            ProgressEvent::RunStarted {
                index,
                rc,
                rs,
                n,
                scheme,
                variant,
                rep,
                env_seed,
            } => Json::obj()
                .field("event", "run-started")
                .field("index", *index)
                .field("rc", *rc)
                .field("rs", *rs)
                .field("n", *n)
                .field("scheme", scheme.as_str())
                .field("variant", variant.as_str())
                .field("rep", *rep)
                .field("env_seed", *env_seed),
            ProgressEvent::RunFinished {
                index,
                rc,
                rs,
                n,
                scheme,
                variant,
                rep,
                env_seed,
                coverage,
                completed,
                total,
                elapsed_s,
                eta_s,
            } => Json::obj()
                .field("event", "run-finished")
                .field("index", *index)
                .field("rc", *rc)
                .field("rs", *rs)
                .field("n", *n)
                .field("scheme", scheme.as_str())
                .field("variant", variant.as_str())
                .field("rep", *rep)
                .field("env_seed", *env_seed)
                .field("coverage", *coverage)
                .field("completed", *completed)
                .field("total", *total)
                .field("elapsed_s", *elapsed_s)
                .field("eta_s", *eta_s),
            ProgressEvent::CheckpointWritten { path, runs } => Json::obj()
                .field("event", "checkpoint")
                .field("path", path.as_str())
                .field("runs", *runs),
            ProgressEvent::BatchFinished {
                scenario,
                total,
                elapsed_s,
            } => Json::obj()
                .field("event", "batch-finished")
                .field("scenario", scenario.as_str())
                .field("total", *total)
                .field("elapsed_s", *elapsed_s),
        }
    }

    /// The event as one NDJSON line (no trailing newline).
    pub fn ndjson_line(&self) -> String {
        self.to_json().compact()
    }
}

/// Linear time-to-completion estimate from `completed` of `total`
/// runs in `elapsed_s` seconds; `None` until the first run finishes
/// (no rate to extrapolate). The human progress line and the NDJSON
/// `run-finished` payload share this derivation.
pub fn eta_seconds(completed: usize, total: usize, elapsed_s: f64) -> Option<f64> {
    if completed == 0 || total < completed {
        return None;
    }
    Some(elapsed_s * (total - completed) as f64 / completed as f64)
}

/// A shared, thread-safe callback receiving [`ProgressEvent`]s during
/// a batch. Workers call it concurrently; the callback must do its
/// own line-atomic output (one `eprintln!` per event qualifies).
#[derive(Clone)]
pub struct ProgressSink(Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl ProgressSink {
    /// Wraps a callback.
    pub fn new(callback: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressSink(Arc::new(callback))
    }

    /// Delivers one event.
    pub fn emit(&self, event: &ProgressEvent) {
        (self.0)(event);
    }
}

impl fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressSink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ndjson_schema_is_stable() {
        let event = ProgressEvent::RunFinished {
            index: 3,
            rc: 60.0,
            rs: 40.0,
            n: 240,
            scheme: "FLOOR".into(),
            variant: "defaults".into(),
            rep: 1,
            env_seed: 42,
            coverage: 0.5,
            completed: 4,
            total: 8,
            elapsed_s: 2.0,
            eta_s: Some(2.0),
        };
        assert_eq!(
            event.ndjson_line(),
            "{\"event\":\"run-finished\",\"index\":3,\"rc\":60.0,\"rs\":40.0,\"n\":240,\
             \"scheme\":\"FLOOR\",\"variant\":\"defaults\",\"rep\":1,\"env_seed\":42,\
             \"coverage\":0.5,\"completed\":4,\"total\":8,\"elapsed_s\":2.0,\"eta_s\":2.0}"
        );
        let line = ProgressEvent::CheckpointWritten {
            path: "out/batch.json".into(),
            runs: 4,
        }
        .ndjson_line();
        assert_eq!(
            line,
            "{\"event\":\"checkpoint\",\"path\":\"out/batch.json\",\"runs\":4}"
        );
        // every line parses back as a JSON object
        assert!(Json::parse(&line).is_ok());
    }

    #[test]
    fn missing_eta_serializes_as_null() {
        let event = ProgressEvent::RunFinished {
            index: 0,
            rc: 60.0,
            rs: 40.0,
            n: 10,
            scheme: "CPVF".into(),
            variant: String::new(),
            rep: 0,
            env_seed: 1,
            coverage: 0.1,
            completed: 0,
            total: 2,
            elapsed_s: 0.0,
            eta_s: None,
        };
        assert!(event.ndjson_line().contains("\"eta_s\":null"));
    }

    #[test]
    fn eta_extrapolates_linearly() {
        assert_eq!(eta_seconds(0, 8, 1.0), None);
        assert_eq!(eta_seconds(2, 8, 10.0), Some(30.0));
        assert_eq!(eta_seconds(8, 8, 10.0), Some(0.0));
        assert_eq!(eta_seconds(9, 8, 10.0), None);
    }
}
