//! The `scenario` CLI: run, resume, profile, diff, list and describe
//! declarative scenario specs.
//!
//! ```text
//! scenario run <spec.toml> [--out DIR] [--threads N] [--quick] [--resume]
//!                          [--checkpoint-every N] [--profile PATH]
//!                          [--progress ndjson]
//! scenario diff <a/batch.json> <b/batch.json> [--tol T] [--junit PATH]
//! scenario bench-diff <baseline.json> <current.json> [--tol T]
//! scenario profile-report <profile.json>
//! scenario profile-diff <a.json> <b.json> [--tol T]
//! scenario list [DIR]
//! scenario describe <spec.toml>
//! ```
//!
//! `run` executes the spec's full matrix in parallel and writes
//! `batch.json`, `batch.csv` and `report.txt` under the output
//! directory (default `results/scenario/<name>/`), printing the ASCII
//! report. `--quick` shrinks duration/repetitions for a fast smoke
//! pass; `--resume` skips matrix cells already recorded in the output
//! directory's `batch.json` (seed derivation is coordinate-based, so
//! resumed output is byte-identical to an uninterrupted run).
//! Completed runs are checkpointed to `batch.json` atomically every
//! `--checkpoint-every` runs (default 25; `0` disables), so
//! `--resume` also survives a hard kill mid-batch.
//! Rerunning with `RAYON_NUM_THREADS=1` (or `--threads 1`) produces
//! byte-identical JSON. `diff` compares two batch files cell-by-cell
//! within a relative tolerance and exits nonzero on any difference —
//! the CI regression gate; `--junit` additionally writes one JUnit
//! testcase per matrix cell for CI annotation. `bench-diff` holds a
//! `BENCH_*.json` perf record against a committed baseline and exits
//! nonzero when a kernel regressed beyond tolerance — the CI
//! bench-trend gate.
//!
//! Observability (strictly zero-perturbation — batch outputs are
//! byte-identical with it on or off): `--profile PATH` writes a
//! per-cell aggregated profile record (span tree, counter sums, value
//! stats); `profile-report` renders its sorted self-time table;
//! `profile-diff` classifies per-span deltas with the same machinery
//! as `bench-diff`. `--progress ndjson` streams schema-stable per-run
//! progress events (run started/finished, checkpoint written, ETA) to
//! stderr, one JSON object per line; without it a human progress line
//! tracks completed/total matrix cells with elapsed + ETA.

use msn_scenario::{
    diff_batches, diff_bench, junit_xml, BatchFile, BatchRunner, BenchRecord, ProfileRecord,
    ProgressEvent, ProgressSink, ScenarioSpec,
};
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]).map(|_| true),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("profile-report") => cmd_profile_report(&args[1..]).map(|_| true),
        Some("profile-diff") => cmd_profile_diff(&args[1..]),
        Some("list") => cmd_list(&args[1..]).map(|_| true),
        Some("describe") => cmd_describe(&args[1..]).map(|_| true),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(true)
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
scenario — declarative experiment batches for the MSN deployment schemes

USAGE:
    scenario run <spec.toml> [--out DIR] [--threads N] [--quick] [--resume]
                             [--checkpoint-every N] [--profile PATH]
                             [--progress ndjson]
    scenario diff <a/batch.json> <b/batch.json> [--tol T] [--junit PATH]
    scenario bench-diff <baseline.json> <current.json> [--tol T]
    scenario profile-report <profile.json>
    scenario profile-diff <a.json> <b.json> [--tol T]
    scenario list [DIR]           (default DIR: scenarios/)
    scenario describe <spec.toml>

`run` writes batch.json, batch.csv and report.txt under --out
(default results/scenario/<name>/) and prints the report.
`--quick` caps duration at 100 s, repetitions at 2 and the coverage
raster at >= 5 m for a fast smoke pass.
`--resume` loads an existing batch.json from the output directory and
skips every matrix cell it already records; the merged output is
byte-identical to an uninterrupted run.
`--checkpoint-every N` flushes completed runs to batch.json (atomic
write-then-rename) every N runs, so a hard-killed batch resumes from
the last checkpoint instead of from scratch; default 25, 0 disables.
`diff` compares two batch.json files cell-by-cell; numeric metrics
must agree within the relative tolerance T (default 0 = exact) and
the exit code is nonzero on any difference. `--junit PATH` also
writes a JUnit XML file with one testcase per matrix cell, for CI
annotation.
`bench-diff` compares two BENCH_*.json kernel perf records; a kernel
slower than baseline * (1 + T) (default T 0.25), or missing from the
current record, fails the gate with a nonzero exit. Regressions are
also emitted as GitHub ::error:: annotations when GITHUB_ACTIONS is
set.
`--profile PATH` aggregates per-run msn-obs observations (span trees,
counters, value stats) into a per-cell profile record at PATH.
Profiling never perturbs results: batch outputs are byte-identical
with or without it. `profile-report` renders a profile's sorted
self-time table; `profile-diff` classifies per-span deltas (mean self
ns per entry) against a baseline profile with the same
Ok/Improved/Regression machinery and exit semantics as bench-diff.
`--progress ndjson` streams one JSON progress event per line to
stderr (run-started / run-finished with completed/total, elapsed and
ETA / checkpoint / batch lifecycle); the default human progress line
reports the same completed/total, elapsed and ETA.
";

fn load_spec(path: &str) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ScenarioSpec::from_toml_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut spec_path: Option<&str> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut resume = false;
    let mut checkpoint_every: usize = 25;
    let mut profile_path: Option<PathBuf> = None;
    let mut ndjson = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out_dir = Some(PathBuf::from(v));
            }
            "--profile" => {
                let v = it.next().ok_or("--profile needs a path")?;
                profile_path = Some(PathBuf::from(v));
            }
            "--progress" => {
                let v = it.next().ok_or("--progress needs a mode (ndjson)")?;
                match v.as_str() {
                    "ndjson" => ndjson = true,
                    other => return Err(format!("unknown progress mode '{other}' (ndjson)")),
                }
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid thread count '{v}'"))?
                        .max(1),
                );
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a number")?;
                checkpoint_every = v
                    .parse::<usize>()
                    .map_err(|_| format!("invalid checkpoint interval '{v}'"))?;
            }
            "--quick" => quick = true,
            "--resume" => resume = true,
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other);
            }
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    let spec_path = spec_path.ok_or_else(|| format!("run needs a spec file\n{USAGE}"))?;
    let mut spec = load_spec(spec_path)?;
    if quick {
        spec = spec
            .clone()
            .with_duration(spec.duration.min(100.0))
            .with_repetitions(spec.repetitions.min(2))
            .with_coverage_cell(spec.coverage_cell.max(5.0));
    }
    let mut runner = BatchRunner::new();
    if let Some(t) = threads {
        runner = runner.with_threads(t);
    }
    if profile_path.is_some() {
        runner = runner.with_profiling(true);
    }
    runner = runner.with_progress(if ndjson {
        // one schema-stable JSON object per line on stderr; stdout
        // stays reserved for the report
        ProgressSink::new(|event| eprintln!("{}", event.ndjson_line()))
    } else {
        human_progress_sink()
    });
    let dir = out_dir.unwrap_or_else(|| Path::new("results/scenario").join(&spec.name));
    if checkpoint_every > 0 {
        // the checkpoint lands where the final batch.json will, so a
        // killed run resumes transparently with --resume
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
        runner = runner.with_checkpoint(dir.join("batch.json"), checkpoint_every);
    }
    let prior = if resume {
        let path = dir.join("batch.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let file = BatchFile::parse(&text)
                    .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
                eprintln!(
                    "resuming from {} ({} recorded run(s))",
                    path.display(),
                    file.run_count()
                );
                Some(file)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("nothing to resume ({} not found)", path.display());
                None
            }
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        }
    } else {
        None
    };
    let matrix_size = spec.matrix().len();
    let cached = prior.as_ref().map_or(0, |p| {
        spec.matrix()
            .iter()
            .filter(|cell| {
                p.lookup(
                    cell.radio.rc,
                    cell.radio.rs,
                    cell.n,
                    cell.scheme.name(),
                    spec.variant_label(cell.variant),
                    cell.rep,
                )
                .is_some()
            })
            .count()
    });
    eprintln!(
        "running '{}': {} runs ({} radios x {} counts x {} reps x {} variants x {} schemes) \
         on {} thread(s){}{}",
        spec.name,
        matrix_size,
        spec.radios.len(),
        spec.sensor_counts.len(),
        spec.repetitions,
        spec.variant_count(),
        spec.schemes.len(),
        runner.effective_threads(),
        if cached > 0 {
            format!(" [{cached} cached]")
        } else {
            String::new()
        },
        if quick { " [quick]" } else { "" },
    );
    let started = std::time::Instant::now();
    let result = runner
        .run_resuming(&spec, prior.as_ref())
        .map_err(|e| e.to_string())?;
    eprintln!("finished in {:.1} s", started.elapsed().as_secs_f64());

    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    let report = result.report();
    for (name, contents) in [
        ("batch.json", result.to_json()),
        ("batch.csv", result.to_csv()),
        ("report.txt", report.clone()),
    ] {
        // Atomic write-then-rename, like the mid-run checkpoints: a
        // kill during the final write must not replace the last good
        // batch.json with a torn file.
        let path = dir.join(name);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, contents)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = profile_path {
        let record = ProfileRecord::from_batch(&result).map_err(|e| e.to_string())?;
        if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {parent:?}: {e}"))?;
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, record.to_json_string())
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        eprintln!("wrote {}", path.display());
    }
    println!("{report}");
    Ok(())
}

/// The default progress reporter: a completed/total line with
/// elapsed and ETA (same derivation as the NDJSON payload,
/// `eta_seconds`) — rewritten in place on a terminal, printed at
/// ~10 % milestones otherwise so logs stay readable.
fn human_progress_sink() -> ProgressSink {
    let tty = std::io::stderr().is_terminal();
    ProgressSink::new(move |event| {
        let &ProgressEvent::RunFinished {
            completed,
            total,
            elapsed_s,
            eta_s,
            ..
        } = &event
        else {
            return;
        };
        let eta = eta_s.map_or_else(|| "-".to_string(), |e| format!("{e:.1} s"));
        let line = format!("[{completed}/{total}] elapsed {elapsed_s:.1} s, eta {eta}");
        if tty {
            eprint!("\r{line}        ");
            if completed == total {
                eprintln!();
            }
        } else if completed == total || completed % (total / 10).max(1) == 0 {
            eprintln!("{line}");
        }
    })
}

/// Compares two batch.json files; `Ok(false)` means they differ (the
/// caller maps it to a nonzero exit code).
fn cmd_diff(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = 0.0f64;
    let mut junit: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it.next().ok_or("--tol needs a number")?;
                tol = parse_tol(v)?;
            }
            "--junit" => {
                junit = Some(it.next().ok_or("--junit needs a path")?);
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    let [a_path, b_path] = paths[..] else {
        return Err(format!("diff needs exactly two batch.json files\n{USAGE}"));
    };
    let load = |path: &str| -> Result<BatchFile, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BatchFile::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    let report = diff_batches(&a, &b, tol);
    print!("{}", report.render());
    if let Some(path) = junit {
        let suite = format!("scenario-diff:{}", a.scenario);
        std::fs::write(path, junit_xml(&report, &suite))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if report.is_match() {
        println!("MATCH (tol {tol})");
    } else {
        println!("DIFFER (tol {tol})");
    }
    Ok(report.is_match())
}

/// Compares two BENCH_*.json perf records; `Ok(false)` means the
/// current record regressed beyond tolerance (nonzero exit — the CI
/// bench-trend gate).
fn cmd_bench_diff(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it.next().ok_or("--tol needs a number")?;
                tol = parse_tol(v)?;
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    let [base_path, cur_path] = paths[..] else {
        return Err(format!(
            "bench-diff needs exactly two BENCH_*.json files\n{USAGE}"
        ));
    };
    let load = |path: &str| -> Result<BenchRecord, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchRecord::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = load(base_path)?;
    let current = load(cur_path)?;
    let report = diff_bench(&baseline, &current, tol);
    print!("{}", report.render());
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        for note in report.annotations() {
            println!("{note}");
        }
    }
    if report.is_match() {
        println!(
            "PASS ({} vs {}, tol {tol})",
            baseline.record, current.record
        );
    } else {
        println!(
            "FAIL ({} vs {}, tol {tol})",
            baseline.record, current.record
        );
    }
    Ok(report.is_match())
}

fn cmd_profile_report(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err(format!(
            "profile-report needs exactly one profile.json\n{USAGE}"
        ));
    };
    let record = load_profile(path)?;
    print!("{}", record.render_report());
    Ok(())
}

fn cmd_profile_diff(args: &[String]) -> Result<bool, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it.next().ok_or("--tol needs a number")?;
                tol = parse_tol(v)?;
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(format!("unexpected argument '{other}'\n{USAGE}")),
        }
    }
    let [base_path, cur_path] = paths[..] else {
        return Err(format!(
            "profile-diff needs exactly two profile.json files\n{USAGE}"
        ));
    };
    let baseline = load_profile(base_path)?.to_bench_record(base_path);
    let current = load_profile(cur_path)?.to_bench_record(cur_path);
    let report = diff_bench(&baseline, &current, tol);
    print!("{}", report.render());
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        for note in report.annotations() {
            println!("{note}");
        }
    }
    if report.is_match() {
        println!("PASS ({base_path} vs {cur_path}, tol {tol})");
    } else {
        println!("FAIL ({base_path} vs {cur_path}, tol {tol})");
    }
    Ok(report.is_match())
}

fn load_profile(path: &str) -> Result<ProfileRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    ProfileRecord::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_tol(v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .ok()
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or_else(|| format!("invalid tolerance '{v}'"))
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let dir = args.first().map(String::as_str).unwrap_or("scenarios");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        println!("no .toml specs in {dir}");
        return Ok(());
    }
    for path in entries {
        match load_spec(&path.to_string_lossy()) {
            Ok(spec) => println!(
                "{:<40} {:<18} {:>5} runs  {}",
                path.display(),
                spec.field.kind(),
                spec.matrix().len(),
                spec.description,
            ),
            Err(e) => println!("{:<40} INVALID: {e}", path.display()),
        }
    }
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .ok_or_else(|| format!("describe needs a spec file\n{USAGE}"))?;
    let spec = load_spec(path)?;
    println!("name:          {}", spec.name);
    if !spec.description.is_empty() {
        println!("description:   {}", spec.description);
    }
    println!("field:         {}", spec.field.kind());
    println!("scatter:       {}", spec.scatter.kind());
    println!(
        "schemes:       {}",
        spec.schemes
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("sensor counts: {:?}", spec.sensor_counts);
    println!(
        "radios:        {}",
        spec.radios
            .iter()
            .map(|r| format!("({}, {})", r.rc, r.rs))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("duration:      {} s", spec.duration);
    println!("coverage cell: {} m", spec.coverage_cell);
    println!("repetitions:   {}", spec.repetitions);
    println!("base seed:     {}", spec.seed);
    if !spec.params.is_default() {
        println!("params:        scenario-wide overrides set");
    }
    if !spec.variants.is_empty() {
        println!(
            "variants:      {}",
            spec.variants
                .iter()
                .map(|v| v.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!("matrix:        {} runs", spec.matrix().len());
    println!("randomized:    {}", spec.field.is_randomized());
    Ok(())
}
