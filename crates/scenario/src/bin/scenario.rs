//! The `scenario` CLI: a thin transport over [`msn_scenario`]'s typed
//! service API.
//!
//! Every subcommand builds a [`Response`] (or an [`ApiError`]) and
//! hands it to one `finish()` sink, which renders it either as the
//! traditional human output or — with the global `--json` flag — as
//! the exact same JSON document the `scenario serve` daemon frames
//! over its Unix socket. Exit codes are unified there too: `0` on
//! success, `1` when the response reports a failure (an error, or a
//! diff that differs), `2` on usage errors.
//!
//! Local execution (`run`, `diff`, `bench-diff`, `profile-*`, `list`,
//! `describe`) and daemon interaction (`serve`, `submit`, `job`,
//! `jobs`, `fetch`, `subscribe`, `diff --socket`, `profile-report
//! --socket`, `profile-diff --socket`, `load-test`, `ping`,
//! `shutdown`) speak the same Request/Response vocabulary; the daemon
//! path goes through [`msn_scenario::Client`], the local path calls
//! the library directly. `run` takes a pid-stamped lock next to
//! `batch.json` so two invocations can't interleave checkpoints, and
//! its output is byte-identical to what a served job stores for the
//! same spec.

use msn_scenario::{
    diff_batches, diff_bench, junit_xml, load_test, serve, ApiError, BatchFile, BatchLock,
    BenchRecord, Client, JobInfo, JobState, Json, LoadTestConfig, ProfileRecord, ProgressEvent,
    ProgressSink, Request, Response, RunConfig, ScenarioSpec, ServeConfig,
};
use std::io::IsTerminal;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag(&mut args, "--json");
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("job") => cmd_job(&args[1..]),
        Some("jobs") => cmd_jobs(&args[1..]),
        Some("fetch") => cmd_fetch(&args[1..]),
        Some("subscribe") => cmd_subscribe(&args[1..]),
        Some("load-test") => cmd_load_test(&args[1..]),
        Some("ping") => cmd_ping(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("bench-diff") => cmd_bench_diff(&args[1..]),
        Some("profile-report") => cmd_profile_report(&args[1..]),
        Some("profile-diff") => cmd_profile_diff(&args[1..]),
        Some("list") => cmd_list(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(usage(format!("unknown command '{other}'"))),
    };
    finish(json, result)
}

/// The single output/exit-code sink every subcommand funnels through.
fn finish(json: bool, result: Result<Response, ApiError>) -> ExitCode {
    let response = match result {
        Ok(response) => response,
        Err(error) => Response::Error { error },
    };
    let usage_error = matches!(
        &response,
        Response::Error {
            error: ApiError::Usage(_)
        }
    );
    if json {
        print!("{}", response.to_json().pretty());
    } else {
        render_human(&response);
    }
    if usage_error {
        ExitCode::from(2)
    } else if response.indicates_failure() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders a response the way the pre-service CLI printed it.
fn render_human(response: &Response) {
    match response {
        Response::Pong { version } => println!("pong (api v{version})"),
        Response::Submitted {
            job,
            deduped,
            queue_depth,
        } => {
            println!(
                "{}{}",
                job_line(job),
                if *deduped { "  [deduped]" } else { "" }
            );
            println!("queue depth: {queue_depth}");
        }
        Response::Job { job } => {
            println!("{}", job_line(job));
            if let JobState::Failed { error } = &job.state {
                println!("  error: {error}");
            }
        }
        Response::Jobs { jobs } => {
            if jobs.is_empty() {
                println!("no jobs");
            }
            for job in jobs {
                println!("{}", job_line(job));
            }
        }
        Response::Artifact { contents, .. } => print!("{contents}"),
        Response::Diff {
            matches,
            tol,
            report,
        } => {
            print!("{report}");
            if *matches {
                println!("MATCH (tol {tol})");
            } else {
                println!("DIFFER (tol {tol})");
            }
        }
        Response::BenchDiff {
            matches,
            tol,
            baseline,
            current,
            report,
            annotations,
        } => {
            print!("{report}");
            if std::env::var_os("GITHUB_ACTIONS").is_some() {
                for note in annotations {
                    println!("{note}");
                }
            }
            if *matches {
                println!("PASS ({baseline} vs {current}, tol {tol})");
            } else {
                println!("FAIL ({baseline} vs {current}, tol {tol})");
            }
        }
        Response::Report { text } => print!("{text}"),
        Response::ShuttingDown => println!("daemon shutting down"),
        Response::RunFinished { report, .. } => println!("{report}"),
        Response::Specs { specs } => {
            if specs.is_empty() {
                println!("no .toml specs found");
            }
            for entry in specs {
                println!("{:<40} {}", entry.path, entry.summary);
            }
        }
        Response::Spec {
            digest,
            resume_digest,
            spec_toml,
            ..
        } => {
            // the canonical TOML round-trips, so the detailed view can
            // be rebuilt from the response alone
            match ScenarioSpec::from_toml_str(spec_toml) {
                Ok(spec) => print!("{}", describe_text(&spec)),
                Err(e) => println!("unrenderable spec: {e}"),
            }
            println!("job digest:    {digest}");
            println!("resume digest: {resume_digest}");
        }
        Response::LoadTest { report } => print!("{}", report.render()),
        Response::Error { error } => eprintln!("error: {error}"),
    }
}

fn job_line(job: &JobInfo) -> String {
    format!(
        "{:<16}  {:<12}  {:>5}/{:<5}  {}",
        job.digest,
        job.state.kind(),
        job.completed_runs,
        job.total_runs,
        job.scenario
    )
}

const USAGE: &str = "\
scenario — declarative experiment batches for the MSN deployment schemes

USAGE (local):
    scenario run <spec.toml> [--out DIR] [--threads N] [--quick] [--resume]
                             [--checkpoint-every N] [--profile PATH]
                             [--progress ndjson]
    scenario diff <a/batch.json> <b/batch.json> [--tol T] [--junit PATH]
    scenario bench-diff <baseline.json> <current.json> [--tol T]
    scenario profile-report <profile.json>
    scenario profile-diff <a.json> <b.json> [--tol T]
    scenario list [DIR]           (default DIR: scenarios/)
    scenario describe <spec.toml>

USAGE (service):
    scenario serve [--socket PATH] [--jobs DIR] [--threads N] [--queue N]
                   [--checkpoint-every N] [--no-profile]
    scenario submit <spec.toml> [--socket PATH] [--quick] [--wait]
    scenario job <digest> [--socket PATH]
    scenario jobs [--socket PATH]
    scenario fetch <digest> <artifact> [--socket PATH]
    scenario subscribe <digest> [--socket PATH]
    scenario diff <digest-a> <digest-b> --socket PATH [--tol T]
    scenario profile-report <digest> --socket PATH
    scenario profile-diff <digest-a> <digest-b> --socket PATH [--tol T]
    scenario load-test <spec.toml> [--socket PATH] [--count N]
                       [--concurrency N] [--quick]
    scenario ping [--socket PATH]
    scenario shutdown [--socket PATH]

Every command accepts a global --json flag: the output becomes the
same Response JSON document the daemon serves over its socket, and
exit codes are 0 (success), 1 (failed operation or differing diff),
2 (usage error).

`run` writes batch.json, batch.csv and report.txt under --out
(default results/scenario/<name>/) and prints the report; it locks
the output directory (batch.json.lock) so two concurrent runs cannot
interleave checkpoint writes. `--quick` caps duration at 100 s,
repetitions at 2 and the coverage raster at >= 5 m. `--resume` skips
matrix cells already recorded in batch.json; `--checkpoint-every N`
flushes completed runs atomically every N runs (default 25, 0
disables). `--profile PATH` writes a per-cell profile record;
`--progress ndjson` streams schema-stable progress events to stderr.

`serve` runs the job daemon: specs submitted over the Unix socket
(default results/serve/scenario.sock) queue into a bounded FIFO
(default 64) and execute one at a time on the persistent worker pool;
artifacts land in a content-addressed job store (default
results/serve/jobs/<digest>/). Identical specs dedup onto the same
job; a SIGKILL'd daemon recovers queued/running jobs on restart and
resumes from the last checkpoint. `submit --wait` streams progress
until the job finishes; `fetch` prints a stored artifact to stdout;
`subscribe` streams a job's NDJSON events. `load-test` replays a
burst of distinct-seed submissions and reports p50/p99 submission
latency and the deepest queue observed.

`diff` compares two batch.json files (or, with --socket, two stored
jobs) cell-by-cell within relative tolerance T (default 0 = exact);
exit is nonzero on any difference. `--junit PATH` (local only) writes
one JUnit testcase per matrix cell. `bench-diff` gates BENCH_*.json
kernel records against a baseline (default tol 0.25);
`profile-report` renders a profile's self-time table; `profile-diff`
classifies per-span deltas with the bench-diff machinery.
";

fn usage(msg: impl Into<String>) -> ApiError {
    ApiError::Usage(format!("{}\n{USAGE}", msg.into()))
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    let before = args.len();
    args.retain(|a| a != flag);
    before != args.len()
}

fn default_socket() -> PathBuf {
    PathBuf::from("results/serve/scenario.sock")
}

fn load_spec(path: &str) -> Result<ScenarioSpec, ApiError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            ApiError::NotFound(format!("spec file {path}"))
        } else {
            ApiError::Io(format!("cannot read {path}: {e}"))
        }
    })?;
    ScenarioSpec::from_toml_str(&text).map_err(|e| ApiError::InvalidSpec(format!("{path}: {e}")))
}

/// The `--quick` shrink: capped duration/repetitions and a coarse
/// coverage raster for fast smoke passes. Shared by `run`, `submit`
/// and `load-test`.
fn quick_spec(spec: &ScenarioSpec) -> ScenarioSpec {
    spec.clone()
        .with_duration(spec.duration.min(100.0))
        .with_repetitions(spec.repetitions.min(2))
        .with_coverage_cell(spec.coverage_cell.max(5.0))
}

fn parse_count(v: &str, what: &str) -> Result<usize, ApiError> {
    v.parse::<usize>()
        .map_err(|_| ApiError::Usage(format!("invalid {what} '{v}'")))
}

fn parse_tol(v: &str) -> Result<f64, ApiError> {
    v.parse::<f64>()
        .ok()
        .filter(|t| t.is_finite() && *t >= 0.0)
        .ok_or_else(|| ApiError::Usage(format!("invalid tolerance '{v}'")))
}

// ---------------------------------------------------------------------------
// Local execution
// ---------------------------------------------------------------------------

fn cmd_run(args: &[String]) -> Result<Response, ApiError> {
    let mut spec_path: Option<&str> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut threads: Option<usize> = None;
    let mut quick = false;
    let mut resume = false;
    let mut checkpoint_every: usize = 25;
    let mut profile_path: Option<PathBuf> = None;
    let mut ndjson = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                let v = it.next().ok_or_else(|| usage("--out needs a directory"))?;
                out_dir = Some(PathBuf::from(v));
            }
            "--profile" => {
                let v = it.next().ok_or_else(|| usage("--profile needs a path"))?;
                profile_path = Some(PathBuf::from(v));
            }
            "--progress" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--progress needs a mode (ndjson)"))?;
                match v.as_str() {
                    "ndjson" => ndjson = true,
                    other => {
                        return Err(usage(format!("unknown progress mode '{other}' (ndjson)")))
                    }
                }
            }
            "--threads" => {
                let v = it.next().ok_or_else(|| usage("--threads needs a number"))?;
                threads = Some(
                    v.parse::<usize>()
                        .map_err(|_| ApiError::Usage(format!("invalid thread count '{v}'")))?
                        .max(1),
                );
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--checkpoint-every needs a number"))?;
                checkpoint_every = parse_count(v, "checkpoint interval")?;
            }
            "--quick" => quick = true,
            "--resume" => resume = true,
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other);
            }
            other => return Err(usage(format!("unexpected argument '{other}'"))),
        }
    }
    let spec_path = spec_path.ok_or_else(|| usage("run needs a spec file"))?;
    let mut spec = load_spec(spec_path)?;
    if quick {
        spec = quick_spec(&spec);
    }
    let dir = out_dir.unwrap_or_else(|| Path::new("results/scenario").join(&spec.name));
    // refuse a second concurrent run against the same batch.json — a
    // double launch would silently interleave checkpoint writes
    let _lock = BatchLock::acquire(&dir)?;
    let mut config = RunConfig::new();
    if let Some(t) = threads {
        config = config.threads(t);
    }
    if profile_path.is_some() {
        config = config.profiling(true);
    }
    config = config.progress(if ndjson {
        // one schema-stable JSON object per line on stderr; stdout
        // stays reserved for the report
        ProgressSink::new(|event| eprintln!("{}", event.ndjson_line()))
    } else {
        human_progress_sink()
    });
    if checkpoint_every > 0 {
        // the checkpoint lands where the final batch.json will, so a
        // killed run resumes transparently with --resume
        config = config.checkpoint(dir.join("batch.json"), checkpoint_every);
    }
    let prior = if resume {
        let path = dir.join("batch.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let file = BatchFile::parse(&text).map_err(|e| {
                    ApiError::InvalidSpec(format!("cannot resume from {}: {e}", path.display()))
                })?;
                eprintln!(
                    "resuming from {} ({} recorded run(s))",
                    path.display(),
                    file.run_count()
                );
                Some(file)
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                eprintln!("nothing to resume ({} not found)", path.display());
                None
            }
            Err(e) => return Err(ApiError::Io(format!("cannot read {}: {e}", path.display()))),
        }
    } else {
        None
    };
    let matrix_size = spec.matrix().len();
    let cached = prior.as_ref().map_or(0, |p| {
        spec.matrix()
            .iter()
            .filter(|cell| {
                p.lookup(
                    cell.radio.rc,
                    cell.radio.rs,
                    cell.n,
                    cell.scheme.name(),
                    spec.variant_label(cell.variant),
                    cell.rep,
                )
                .is_some()
            })
            .count()
    });
    let runner = config.runner();
    eprintln!(
        "running '{}': {} runs ({} radios x {} counts x {} reps x {} variants x {} schemes) \
         on {} thread(s){}{}",
        spec.name,
        matrix_size,
        spec.radios.len(),
        spec.sensor_counts.len(),
        spec.repetitions,
        spec.variant_count(),
        spec.schemes.len(),
        runner.effective_threads(),
        if cached > 0 {
            format!(" [{cached} cached]")
        } else {
            String::new()
        },
        if quick { " [quick]" } else { "" },
    );
    let started = std::time::Instant::now();
    let result = runner
        .run_resuming(&spec, prior.as_ref())
        .map_err(|e| ApiError::Internal(e.to_string()))?;
    eprintln!("finished in {:.1} s", started.elapsed().as_secs_f64());

    std::fs::create_dir_all(&dir)
        .map_err(|e| ApiError::Io(format!("cannot create {dir:?}: {e}")))?;
    let report = result.report();
    for (name, contents) in [
        ("batch.json", result.to_json()),
        ("batch.csv", result.to_csv()),
        ("report.txt", report.clone()),
    ] {
        // Atomic write-then-rename, like the mid-run checkpoints: a
        // kill during the final write must not replace the last good
        // batch.json with a torn file.
        let path = dir.join(name);
        msn_scenario::write_atomic(&path, &contents)?;
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = profile_path {
        let record =
            ProfileRecord::from_batch(&result).map_err(|e| ApiError::Internal(e.to_string()))?;
        if let Some(parent) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| ApiError::Io(format!("cannot create {parent:?}: {e}")))?;
        }
        msn_scenario::write_atomic(&path, &record.to_json_string())?;
        eprintln!("wrote {}", path.display());
    }
    Ok(Response::RunFinished {
        job: JobInfo {
            digest: spec.job_digest(),
            scenario: spec.name.clone(),
            state: JobState::Done,
            total_runs: matrix_size,
            completed_runs: matrix_size,
        },
        out_dir: dir.display().to_string(),
        report,
    })
}

/// The default progress reporter: a completed/total line with
/// elapsed and ETA (same derivation as the NDJSON payload,
/// `eta_seconds`) — rewritten in place on a terminal, printed at
/// ~10 % milestones otherwise so logs stay readable.
fn human_progress_sink() -> ProgressSink {
    let tty = std::io::stderr().is_terminal();
    ProgressSink::new(move |event| {
        let &ProgressEvent::RunFinished {
            completed,
            total,
            elapsed_s,
            eta_s,
            ..
        } = &event
        else {
            return;
        };
        let eta = eta_s.map_or_else(|| "-".to_string(), |e| format!("{e:.1} s"));
        let line = format!("[{completed}/{total}] elapsed {elapsed_s:.1} s, eta {eta}");
        if tty {
            eprint!("\r{line}        ");
            if completed == total {
                eprintln!();
            }
        } else if completed == total || completed % (total / 10).max(1) == 0 {
            eprintln!("{line}");
        }
    })
}

fn cmd_diff(args: &[String]) -> Result<Response, ApiError> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = 0.0f64;
    let mut junit: Option<&str> = None;
    let mut socket: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it.next().ok_or_else(|| usage("--tol needs a number"))?;
                tol = parse_tol(v)?;
            }
            "--junit" => {
                junit = Some(it.next().ok_or_else(|| usage("--junit needs a path"))?);
            }
            "--socket" => {
                let v = it.next().ok_or_else(|| usage("--socket needs a path"))?;
                socket = Some(PathBuf::from(v));
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(usage(format!("unexpected argument '{other}'"))),
        }
    }
    let [a, b] = paths[..] else {
        return Err(usage(
            "diff needs exactly two batch.json files (or two job digests with --socket)",
        ));
    };
    if let Some(socket) = socket {
        if junit.is_some() {
            return Err(usage("--junit is not supported with --socket"));
        }
        return Client::new(socket).request(&Request::Diff {
            job_a: a.to_string(),
            job_b: b.to_string(),
            tol,
        });
    }
    let load = |path: &str| -> Result<BatchFile, ApiError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ApiError::Io(format!("cannot read {path}: {e}")))?;
        BatchFile::parse(&text).map_err(|e| ApiError::InvalidSpec(format!("{path}: {e}")))
    };
    let file_a = load(a)?;
    let file_b = load(b)?;
    let report = diff_batches(&file_a, &file_b, tol);
    if let Some(path) = junit {
        let suite = format!("scenario-diff:{}", file_a.scenario);
        std::fs::write(path, junit_xml(&report, &suite))
            .map_err(|e| ApiError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(Response::Diff {
        matches: report.is_match(),
        tol,
        report: report.render(),
    })
}

fn cmd_bench_diff(args: &[String]) -> Result<Response, ApiError> {
    let mut paths: Vec<&str> = Vec::new();
    let mut tol = 0.25f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let v = it.next().ok_or_else(|| usage("--tol needs a number"))?;
                tol = parse_tol(v)?;
            }
            other if !other.starts_with('-') => paths.push(other),
            other => return Err(usage(format!("unexpected argument '{other}'"))),
        }
    }
    let [base_path, cur_path] = paths[..] else {
        return Err(usage("bench-diff needs exactly two BENCH_*.json files"));
    };
    let load = |path: &str| -> Result<BenchRecord, ApiError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ApiError::Io(format!("cannot read {path}: {e}")))?;
        BenchRecord::parse(&text).map_err(|e| ApiError::InvalidSpec(format!("{path}: {e}")))
    };
    let baseline = load(base_path)?;
    let current = load(cur_path)?;
    let report = diff_bench(&baseline, &current, tol);
    Ok(Response::BenchDiff {
        matches: report.is_match(),
        tol,
        baseline: baseline.record.clone(),
        current: current.record.clone(),
        report: report.render(),
        annotations: report.annotations(),
    })
}

fn load_profile(path: &str) -> Result<ProfileRecord, ApiError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ApiError::Io(format!("cannot read {path}: {e}")))?;
    ProfileRecord::parse(&text).map_err(|e| ApiError::InvalidSpec(format!("{path}: {e}")))
}

fn cmd_profile_report(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "profile-report")?;
    let [target] = positionals[..] else {
        return Err(usage(
            "profile-report needs exactly one profile.json (or one job digest with --socket)",
        ));
    };
    if let Some(socket) = socket {
        return Client::new(socket).request(&Request::ProfileReport {
            job: target.to_string(),
        });
    }
    Ok(Response::Report {
        text: load_profile(target)?.render_report(),
    })
}

fn cmd_profile_diff(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, tol) = service_args(args, "profile-diff")?;
    let tol = tol.unwrap_or(0.25);
    let [base, cur] = positionals[..] else {
        return Err(usage(
            "profile-diff needs exactly two profile.json files (or two job digests with --socket)",
        ));
    };
    if let Some(socket) = socket {
        return Client::new(socket).request(&Request::ProfileDiff {
            job_a: base.to_string(),
            job_b: cur.to_string(),
            tol,
        });
    }
    let baseline = load_profile(base)?.to_bench_record(base);
    let current = load_profile(cur)?.to_bench_record(cur);
    let report = diff_bench(&baseline, &current, tol);
    Ok(Response::BenchDiff {
        matches: report.is_match(),
        tol,
        baseline: base.to_string(),
        current: cur.to_string(),
        report: report.render(),
        annotations: report.annotations(),
    })
}

/// Positionals plus the optional `--socket PATH` / `--tol T` shared
/// by the service-mode commands.
type ServiceArgs<'a> = (Vec<&'a str>, Option<PathBuf>, Option<f64>);

/// Shared parser for commands taking positionals plus optional
/// `--socket PATH` / `--tol T`.
fn service_args<'a>(args: &'a [String], cmd: &str) -> Result<ServiceArgs<'a>, ApiError> {
    let mut positionals = Vec::new();
    let mut socket = None;
    let mut tol = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let v = it.next().ok_or_else(|| usage("--socket needs a path"))?;
                socket = Some(PathBuf::from(v));
            }
            "--tol" => {
                let v = it.next().ok_or_else(|| usage("--tol needs a number"))?;
                tol = Some(parse_tol(v)?);
            }
            other if !other.starts_with('-') => positionals.push(other),
            other => return Err(usage(format!("unexpected {cmd} argument '{other}'"))),
        }
    }
    Ok((positionals, socket, tol))
}

fn cmd_list(args: &[String]) -> Result<Response, ApiError> {
    let dir = args.first().map(String::as_str).unwrap_or("scenarios");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| ApiError::Io(format!("cannot read directory {dir}: {e}")))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    entries.sort();
    let specs = entries
        .iter()
        .map(|path| {
            let display = path.display().to_string();
            match load_spec(&display) {
                Ok(spec) => msn_scenario::SpecEntry {
                    path: display,
                    scenario: spec.name.clone(),
                    runs: spec.matrix().len(),
                    summary: format!(
                        "{:<18} {:>5} runs  {}",
                        spec.field.kind(),
                        spec.matrix().len(),
                        spec.description
                    ),
                },
                Err(e) => msn_scenario::SpecEntry {
                    path: display,
                    scenario: String::new(),
                    runs: 0,
                    summary: format!("INVALID: {e}"),
                },
            }
        })
        .collect();
    Ok(Response::Specs { specs })
}

/// The field-by-field spec rendering `describe` prints for humans.
fn describe_text(spec: &ScenarioSpec) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "name:          {}", spec.name);
    if !spec.description.is_empty() {
        let _ = writeln!(out, "description:   {}", spec.description);
    }
    let _ = writeln!(out, "field:         {}", spec.field.kind());
    let _ = writeln!(out, "scatter:       {}", spec.scatter.kind());
    let _ = writeln!(
        out,
        "schemes:       {}",
        spec.schemes
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "sensor counts: {:?}", spec.sensor_counts);
    let _ = writeln!(
        out,
        "radios:        {}",
        spec.radios
            .iter()
            .map(|r| format!("({}, {})", r.rc, r.rs))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "duration:      {} s", spec.duration);
    let _ = writeln!(out, "coverage cell: {} m", spec.coverage_cell);
    let _ = writeln!(out, "repetitions:   {}", spec.repetitions);
    let _ = writeln!(out, "base seed:     {}", spec.seed);
    if !spec.params.is_default() {
        let _ = writeln!(out, "params:        scenario-wide overrides set");
    }
    if !spec.variants.is_empty() {
        let _ = writeln!(
            out,
            "variants:      {}",
            spec.variants
                .iter()
                .map(|v| v.label.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    let _ = writeln!(out, "matrix:        {} runs", spec.matrix().len());
    let _ = writeln!(out, "randomized:    {}", spec.field.is_randomized());
    out
}

fn cmd_describe(args: &[String]) -> Result<Response, ApiError> {
    let path = args
        .first()
        .ok_or_else(|| usage("describe needs a spec file"))?;
    let spec = load_spec(path)?;
    Ok(Response::Spec {
        scenario: spec.name.clone(),
        digest: spec.job_digest(),
        resume_digest: spec.resume_digest(),
        total_runs: spec.matrix().len(),
        spec_toml: spec.to_toml_string(),
    })
}

// ---------------------------------------------------------------------------
// Service transport
// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> Result<Response, ApiError> {
    let mut config = ServeConfig::new(default_socket(), "results/serve/jobs");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                let v = it.next().ok_or_else(|| usage("--socket needs a path"))?;
                config.socket = PathBuf::from(v);
            }
            "--jobs" => {
                let v = it.next().ok_or_else(|| usage("--jobs needs a directory"))?;
                config.jobs_root = PathBuf::from(v);
            }
            "--threads" => {
                let v = it.next().ok_or_else(|| usage("--threads needs a number"))?;
                config.threads = Some(
                    v.parse::<usize>()
                        .map_err(|_| ApiError::Usage(format!("invalid thread count '{v}'")))?
                        .max(1),
                );
            }
            "--queue" => {
                let v = it.next().ok_or_else(|| usage("--queue needs a number"))?;
                config.queue_capacity = parse_count(v, "queue capacity")?.max(1);
            }
            "--checkpoint-every" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--checkpoint-every needs a number"))?;
                config.checkpoint_every = parse_count(v, "checkpoint interval")?;
            }
            "--no-profile" => config.profiling = false,
            other => return Err(usage(format!("unexpected serve argument '{other}'"))),
        }
    }
    serve(config)?;
    Ok(Response::ShuttingDown)
}

fn cmd_submit(args: &[String]) -> Result<Response, ApiError> {
    let mut spec_path: Option<&str> = None;
    let mut socket = default_socket();
    let mut quick = false;
    let mut wait = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = PathBuf::from(it.next().ok_or_else(|| usage("--socket needs a path"))?);
            }
            "--quick" => quick = true,
            "--wait" => wait = true,
            other if !other.starts_with('-') && spec_path.is_none() => spec_path = Some(other),
            other => return Err(usage(format!("unexpected submit argument '{other}'"))),
        }
    }
    let spec_path = spec_path.ok_or_else(|| usage("submit needs a spec file"))?;
    let mut spec = load_spec(spec_path)?;
    if quick {
        spec = quick_spec(&spec);
    }
    let client = Client::new(socket);
    let submitted = client.request(&Request::Submit {
        spec_toml: spec.to_toml_string(),
    })?;
    let Response::Submitted { job, .. } = &submitted else {
        return Ok(submitted); // an error response passes through
    };
    if !wait {
        return Ok(submitted);
    }
    let digest = job.digest.clone();
    if !job.state.is_terminal() {
        stream_events(&client, &digest)?;
    }
    client.request(&Request::Status { job: digest })
}

/// Streams a job's NDJSON events to stderr until a terminal
/// `job-state` line arrives or the daemon closes the stream.
fn stream_events(client: &Client, digest: &str) -> Result<(), ApiError> {
    for line in client.subscribe(digest)? {
        let line = line?;
        eprintln!("{line}");
        if let Ok(event) = Json::parse(&line) {
            let is_state = event.get("event").and_then(Json::as_str) == Some("job-state");
            let terminal = matches!(
                event.get("state").and_then(Json::as_str),
                Some("done" | "failed")
            );
            if is_state && terminal {
                break;
            }
        }
    }
    Ok(())
}

fn cmd_subscribe(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "subscribe")?;
    let [digest] = positionals[..] else {
        return Err(usage("subscribe needs exactly one job digest"));
    };
    let client = Client::new(socket.unwrap_or_else(default_socket));
    // events go to stdout — subscription *is* this command's output
    for line in client.subscribe(digest)? {
        println!("{}", line?);
    }
    client.request(&Request::Status {
        job: digest.to_string(),
    })
}

fn cmd_job(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "job")?;
    let [digest] = positionals[..] else {
        return Err(usage("job needs exactly one job digest"));
    };
    Client::new(socket.unwrap_or_else(default_socket)).request(&Request::Status {
        job: digest.to_string(),
    })
}

fn cmd_jobs(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "jobs")?;
    if !positionals.is_empty() {
        return Err(usage("jobs takes no positional arguments"));
    }
    Client::new(socket.unwrap_or_else(default_socket)).request(&Request::List)
}

fn cmd_fetch(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "fetch")?;
    let [digest, name] = positionals[..] else {
        return Err(usage(
            "fetch needs a job digest and an artifact name (e.g. batch.json)",
        ));
    };
    Client::new(socket.unwrap_or_else(default_socket)).request(&Request::Artifact {
        job: digest.to_string(),
        name: name.to_string(),
    })
}

fn cmd_load_test(args: &[String]) -> Result<Response, ApiError> {
    let mut spec_path: Option<&str> = None;
    let mut socket = default_socket();
    let mut count = 50usize;
    let mut concurrency = 8usize;
    let mut quick = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => {
                socket = PathBuf::from(it.next().ok_or_else(|| usage("--socket needs a path"))?);
            }
            "--count" => {
                let v = it.next().ok_or_else(|| usage("--count needs a number"))?;
                count = parse_count(v, "count")?.max(1);
            }
            "--concurrency" => {
                let v = it
                    .next()
                    .ok_or_else(|| usage("--concurrency needs a number"))?;
                concurrency = parse_count(v, "concurrency")?.max(1);
            }
            "--quick" => quick = true,
            other if !other.starts_with('-') && spec_path.is_none() => spec_path = Some(other),
            other => return Err(usage(format!("unexpected load-test argument '{other}'"))),
        }
    }
    let spec_path = spec_path.ok_or_else(|| usage("load-test needs a spec file"))?;
    let mut spec = load_spec(spec_path)?;
    if quick {
        spec = quick_spec(&spec);
    }
    let report = load_test(&LoadTestConfig {
        socket,
        spec,
        count,
        concurrency,
    })?;
    Ok(Response::LoadTest { report })
}

fn cmd_ping(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "ping")?;
    if !positionals.is_empty() {
        return Err(usage("ping takes no positional arguments"));
    }
    Client::new(socket.unwrap_or_else(default_socket))
        .request_timeout(&Request::Ping, Duration::from_secs(5))
}

fn cmd_shutdown(args: &[String]) -> Result<Response, ApiError> {
    let (positionals, socket, _tol) = service_args(args, "shutdown")?;
    if !positionals.is_empty() {
        return Err(usage("shutdown takes no positional arguments"));
    }
    Client::new(socket.unwrap_or_else(default_socket)).request(&Request::Shutdown)
}
