//! The content-addressed job store behind `scenario serve`.
//!
//! Every submitted spec becomes a job directory
//! `<root>/<digest>/` — the digest is
//! [`ScenarioSpec::job_digest`], the FNV-1a address of the canonical
//! spec TOML — holding the spec itself, a `job.json` state record and
//! the batch artifacts (`batch.json`, `batch.csv`, `report.txt`,
//! `profile.json`). Identical resubmissions land on the same
//! directory, which is what makes dedup trivial: the address *is* the
//! spec.
//!
//! State lives in `job.json` and moves only along the edges
//! [`JobState::can_transition`] allows; every write is
//! write-then-rename so a killed daemon never leaves a torn record.
//! On restart [`JobStore::recover`] re-queues whatever was in flight —
//! the checkpointed `batch.json` next to it makes the rerun resume
//! instead of starting over.
//!
//! [`BatchLock`] is the same discipline for the standalone CLI:
//! `scenario run` takes a pid-stamped lock file next to `batch.json`
//! so two concurrent invocations can't interleave checkpoint writes.

use crate::api::{ApiError, JobInfo, JobState};
use crate::spec::ScenarioSpec;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Artifact files a job directory may serve.
pub const ARTIFACTS: &[&str] = &[
    "spec.toml",
    "job.json",
    "batch.json",
    "batch.csv",
    "report.txt",
    "profile.json",
];

/// Writes `contents` to `path` atomically (write-then-rename), so a
/// concurrent reader or a mid-write kill sees either the old file or
/// the new one, never a torn mix.
pub fn write_atomic(path: &Path, contents: &str) -> Result<(), ApiError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)
        .and_then(|()| std::fs::rename(&tmp, path))
        .map_err(|e| ApiError::Io(format!("cannot write {}: {e}", path.display())))
}

/// The on-disk job registry: digest-addressed directories plus an
/// in-memory index guarded by one mutex.
#[derive(Debug)]
pub struct JobStore {
    root: PathBuf,
    jobs: Mutex<BTreeMap<String, JobInfo>>,
}

impl JobStore {
    /// Opens (creating if needed) the store at `root` and indexes
    /// every job directory holding a parseable `job.json`.
    pub fn open(root: impl Into<PathBuf>) -> Result<JobStore, ApiError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| ApiError::Io(format!("cannot create {}: {e}", root.display())))?;
        let mut jobs = BTreeMap::new();
        for entry in std::fs::read_dir(&root)
            .map_err(|e| ApiError::Io(format!("cannot read {}: {e}", root.display())))?
        {
            let Ok(entry) = entry else { continue };
            let record = entry.path().join("job.json");
            let Ok(text) = std::fs::read_to_string(&record) else {
                continue;
            };
            let value = crate::json::Json::parse(&text)
                .map_err(|e| ApiError::Internal(format!("{}: {e}", record.display())))?;
            let info = JobInfo::from_json(&value)?;
            jobs.insert(info.digest.clone(), info);
        }
        Ok(JobStore {
            root,
            jobs: Mutex::new(jobs),
        })
    }

    /// The directory of job `digest` (whether or not it exists yet).
    pub fn job_dir(&self, digest: &str) -> PathBuf {
        self.root.join(digest)
    }

    /// One job's current description.
    pub fn get(&self, digest: &str) -> Option<JobInfo> {
        self.jobs.lock().unwrap().get(digest).cloned()
    }

    /// Every job, sorted by digest.
    pub fn list(&self) -> Vec<JobInfo> {
        self.jobs.lock().unwrap().values().cloned().collect()
    }

    /// Registers a new queued job for `spec`, writing its directory,
    /// canonical `spec.toml` and `job.json`. Fails with
    /// [`ApiError::Conflict`] if the digest already exists — callers
    /// dedup via [`JobStore::get`] first.
    pub fn create(&self, spec: &ScenarioSpec) -> Result<JobInfo, ApiError> {
        let digest = spec.job_digest();
        let mut jobs = self.jobs.lock().unwrap();
        if jobs.contains_key(&digest) {
            return Err(ApiError::Conflict(format!("job {digest} already exists")));
        }
        let dir = self.root.join(&digest);
        std::fs::create_dir_all(&dir)
            .map_err(|e| ApiError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let info = JobInfo {
            digest: digest.clone(),
            scenario: spec.name.clone(),
            state: JobState::Queued,
            total_runs: spec.matrix().len(),
            completed_runs: 0,
        };
        write_atomic(&dir.join("spec.toml"), &spec.to_toml_string())?;
        write_atomic(&dir.join("job.json"), &info.to_json().pretty())?;
        jobs.insert(digest, info.clone());
        Ok(info)
    }

    /// Moves job `digest` to `next`, enforcing the lifecycle edges and
    /// persisting the new record atomically. Progress counters sync
    /// with the state: `checkpointed { runs }` sets `completed_runs`
    /// to `runs`, `done` to the full matrix, `queued` keeps whatever a
    /// checkpoint already covers.
    pub fn transition(&self, digest: &str, next: JobState) -> Result<JobInfo, ApiError> {
        let mut jobs = self.jobs.lock().unwrap();
        let info = jobs
            .get_mut(digest)
            .ok_or_else(|| ApiError::NotFound(format!("job {digest}")))?;
        if !info.state.can_transition(&next) {
            return Err(ApiError::Internal(format!(
                "illegal job transition {} -> {} for {digest}",
                info.state.kind(),
                next.kind()
            )));
        }
        match &next {
            JobState::Checkpointed { runs } => info.completed_runs = *runs,
            JobState::Done => info.completed_runs = info.total_runs,
            JobState::Queued | JobState::Running => {}
            JobState::Failed { .. } => {}
        }
        info.state = next;
        write_atomic(
            &self.root.join(digest).join("job.json"),
            &info.to_json().pretty(),
        )?;
        Ok(info.clone())
    }

    /// Records in-memory run progress (not persisted — checkpoints
    /// are the durable marks) so `status` answers stay live mid-run.
    pub fn note_progress(&self, digest: &str, completed: usize) {
        if let Some(info) = self.jobs.lock().unwrap().get_mut(digest) {
            info.completed_runs = info.completed_runs.max(completed);
        }
    }

    /// Re-queues every non-terminal job (daemon restart recovery) and
    /// returns their digests in deterministic (sorted) order.
    pub fn recover(&self) -> Result<Vec<String>, ApiError> {
        let unfinished: Vec<String> = self
            .list()
            .into_iter()
            .filter(|j| !j.state.is_terminal())
            .map(|j| j.digest)
            .collect();
        for digest in &unfinished {
            let state = self.get(digest).expect("listed job exists").state;
            if state != JobState::Queued {
                self.transition(digest, JobState::Queued)?;
            }
        }
        Ok(unfinished)
    }

    /// Reads a stored artifact. Only the fixed [`ARTIFACTS`] names are
    /// served — the digest and name never form an arbitrary path.
    pub fn artifact(&self, digest: &str, name: &str) -> Result<String, ApiError> {
        if !ARTIFACTS.contains(&name) {
            return Err(ApiError::NotFound(format!(
                "artifact '{name}' (one of: {})",
                ARTIFACTS.join(", ")
            )));
        }
        if self.get(digest).is_none() {
            return Err(ApiError::NotFound(format!("job {digest}")));
        }
        let path = self.root.join(digest).join(name);
        std::fs::read_to_string(&path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::NotFound {
                ApiError::NotFound(format!("artifact '{name}' of job {digest} not written yet"))
            } else {
                ApiError::Io(format!("cannot read {}: {e}", path.display()))
            }
        })
    }
}

/// A pid-stamped exclusive lock on a batch output directory.
///
/// `scenario run` (and the daemon's executor) takes the lock before
/// touching `batch.json`; a second invocation against the same
/// directory fails with [`ApiError::Conflict`] instead of silently
/// interleaving checkpoint writes. A lock whose owner pid is no
/// longer alive (per `/proc`) is stale — left behind by a hard kill —
/// and is stolen.
#[derive(Debug)]
pub struct BatchLock {
    path: PathBuf,
}

impl BatchLock {
    /// Acquires the lock file `batch.json.lock` inside `dir`,
    /// creating the directory if needed.
    pub fn acquire(dir: &Path) -> Result<BatchLock, ApiError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| ApiError::Io(format!("cannot create {}: {e}", dir.display())))?;
        let path = dir.join("batch.json.lock");
        for attempt in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Ok(BatchLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let owner = std::fs::read_to_string(&path).unwrap_or_default();
                    let alive = owner
                        .trim()
                        .parse::<u32>()
                        .is_ok_and(|pid| Path::new(&format!("/proc/{pid}")).exists());
                    if alive || attempt > 0 {
                        return Err(ApiError::Conflict(format!(
                            "{} is locked by pid {} — another `scenario run` \
                             is writing this batch (remove the lock file if that \
                             process is gone)",
                            dir.display(),
                            owner.trim()
                        )));
                    }
                    // stale lock from a killed run: steal it
                    let _ = std::fs::remove_file(&path);
                }
                Err(e) => {
                    return Err(ApiError::Io(format!(
                        "cannot create lock {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        unreachable!("lock acquisition loops at most twice");
    }
}

impl Drop for BatchLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msn_deploy::SchemeKind;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("msn-jobstore-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("store-test")
            .with_schemes(vec![SchemeKind::Floor])
            .with_sensor_counts(vec![10])
            .with_duration(20.0)
            .with_coverage_cell(25.0)
    }

    #[test]
    fn create_get_list_and_dedup_by_digest() {
        let root = scratch("create");
        let store = JobStore::open(&root).unwrap();
        let spec = tiny_spec();
        let info = store.create(&spec).unwrap();
        assert_eq!(info.digest, spec.job_digest());
        assert_eq!(info.state, JobState::Queued);
        assert_eq!(info.total_runs, spec.matrix().len());
        assert!(root.join(&info.digest).join("spec.toml").exists());
        // second create of the same digest is a conflict; get() is how
        // callers dedup
        assert_eq!(store.create(&spec).unwrap_err().code(), "conflict");
        assert_eq!(store.get(&info.digest).unwrap(), info);
        assert_eq!(store.list().len(), 1);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn transitions_follow_the_state_machine_and_persist() {
        let root = scratch("transition");
        let store = JobStore::open(&root).unwrap();
        let spec = tiny_spec();
        let digest = store.create(&spec).unwrap().digest;
        assert_eq!(
            store
                .transition(&digest, JobState::Done)
                .unwrap_err()
                .code(),
            "internal",
            "queued -> done skips running"
        );
        store.transition(&digest, JobState::Running).unwrap();
        let info = store
            .transition(&digest, JobState::Checkpointed { runs: 1 })
            .unwrap();
        assert_eq!(info.completed_runs, 1);
        store.transition(&digest, JobState::Done).unwrap();
        // a fresh open() sees the persisted terminal state
        let reopened = JobStore::open(&root).unwrap();
        let info = reopened.get(&digest).unwrap();
        assert_eq!(info.state, JobState::Done);
        assert_eq!(info.completed_runs, info.total_runs);
        assert_eq!(
            store
                .transition("nope", JobState::Running)
                .unwrap_err()
                .code(),
            "not-found"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn recovery_requeues_unfinished_jobs() {
        let root = scratch("recover");
        let store = JobStore::open(&root).unwrap();
        let a = store.create(&tiny_spec()).unwrap().digest;
        let b = store.create(&tiny_spec().with_seed(7)).unwrap().digest;
        let c = store.create(&tiny_spec().with_seed(8)).unwrap().digest;
        store.transition(&a, JobState::Running).unwrap();
        store.transition(&b, JobState::Running).unwrap();
        store.transition(&b, JobState::Done).unwrap();
        // reopen as a restarted daemon would
        let store = JobStore::open(&root).unwrap();
        let requeued = store.recover().unwrap();
        let mut expected = vec![a.clone(), c.clone()];
        expected.sort();
        assert_eq!(requeued, expected);
        assert_eq!(store.get(&a).unwrap().state, JobState::Queued);
        assert_eq!(store.get(&b).unwrap().state, JobState::Done);
        assert_eq!(store.get(&c).unwrap().state, JobState::Queued);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn artifacts_are_whitelisted() {
        let root = scratch("artifact");
        let store = JobStore::open(&root).unwrap();
        let digest = store.create(&tiny_spec()).unwrap().digest;
        assert!(store.artifact(&digest, "spec.toml").is_ok());
        assert_eq!(
            store.artifact(&digest, "batch.json").unwrap_err().code(),
            "not-found",
            "not written yet"
        );
        assert_eq!(
            store
                .artifact(&digest, "../../etc/passwd")
                .unwrap_err()
                .code(),
            "not-found",
            "names outside the whitelist never touch the filesystem"
        );
        assert_eq!(
            store.artifact("missing", "spec.toml").unwrap_err().code(),
            "not-found"
        );
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn batch_lock_excludes_and_steals_stale() {
        let dir = scratch("lock");
        let lock = BatchLock::acquire(&dir).unwrap();
        let err = BatchLock::acquire(&dir).unwrap_err();
        assert_eq!(err.code(), "conflict");
        assert!(err.to_string().contains("locked by pid"));
        drop(lock);
        // lock released on drop: reacquire works
        let lock = BatchLock::acquire(&dir).unwrap();
        drop(lock);
        // a lock held by a dead pid is stale and stolen
        std::fs::write(dir.join("batch.json.lock"), "4294000000").unwrap();
        let _lock = BatchLock::acquire(&dir).unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }
}
