//! Per-cell aggregated profile records (`scenario run --profile`).
//!
//! When profiling is enabled the runner installs an [`msn_obs`]
//! collector around every run it executes (each run lives wholly on
//! one worker thread, so thread-local collection is exact) and the
//! per-run [`msn_obs::Report`]s aggregate here into one
//! [`ProfileCell`] per (radio, n, scheme, variant) matrix cell —
//! span trees with totals/counts/max, counter sums and value stats.
//!
//! The record serializes as deterministic-schema JSON (timings vary
//! run to run, the member layout never does), parses back for
//! `scenario profile-report` (a sorted self-time table) and
//! `scenario profile-diff` (per-span deltas through the same
//! Ok/Improved/Regression machinery as `bench-diff`).
//!
//! Profiling is strictly zero-perturbation: `batch.json` from a
//! profiled run is byte-identical to an unprofiled one — the profile
//! is a side artifact, never an input.

use crate::bench::{BenchKernel, BenchRecord};
use crate::json::Json;
use crate::runner::{BatchResult, ScenarioError};
use msn_obs::{Counter, Report, SpanNode, ValueStat};
use std::fmt::Write as _;

/// Aggregated profile of one (radio, n, scheme, variant) matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileCell {
    /// Communication radius.
    pub rc: f64,
    /// Sensing radius.
    pub rs: f64,
    /// Sensor count.
    pub n: usize,
    /// Scheme name.
    pub scheme: String,
    /// Variant label (empty without variants).
    pub variant: String,
    /// Profiled runs merged into this cell (cells restored by resume
    /// carry no profile and are not counted).
    pub runs: usize,
    /// Merged observation report of those runs.
    pub report: Report,
}

/// A parsed (or freshly aggregated) profile record — the
/// `--profile out.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    /// Scenario name the profile was taken from.
    pub scenario: String,
    /// Per-cell profiles, in matrix order.
    pub cells: Vec<ProfileCell>,
}

impl ProfileRecord {
    /// Aggregates a profiled batch into per-cell profiles, grouping
    /// in matrix order (deterministic at any thread count). Returns
    /// an error when the batch was executed without profiling.
    pub fn from_batch(result: &BatchResult) -> Result<ProfileRecord, ScenarioError> {
        if result.profiles.len() != result.records.len() {
            return Err(ScenarioError(
                "batch carries no profiles: run it with profiling enabled \
                 (RunConfig::profiling)"
                    .into(),
            ));
        }
        let mut cells: Vec<ProfileCell> = Vec::new();
        for (record, profile) in result.records.iter().zip(&result.profiles) {
            let Some(profile) = profile else { continue };
            let cell = &record.cell;
            let key = (
                cell.radio.rc,
                cell.radio.rs,
                cell.n,
                cell.scheme.name(),
                result.spec.variant_label(cell.variant),
            );
            let slot = match cells
                .iter_mut()
                .find(|c| (c.rc, c.rs, c.n, c.scheme.as_str(), c.variant.as_str()) == key)
            {
                Some(slot) => slot,
                None => {
                    cells.push(ProfileCell {
                        rc: key.0,
                        rs: key.1,
                        n: key.2,
                        scheme: key.3.to_string(),
                        variant: key.4.to_string(),
                        runs: 0,
                        report: Report::default(),
                    });
                    cells.last_mut().expect("just pushed")
                }
            };
            slot.runs += 1;
            slot.report.merge(profile);
        }
        Ok(ProfileRecord {
            scenario: result.spec.name.clone(),
            cells,
        })
    }

    /// Serializes the record as the `--profile` JSON document.
    pub fn to_json_string(&self) -> String {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .map(|c| {
                Json::obj()
                    .field("rc", c.rc)
                    .field("rs", c.rs)
                    .field("n", c.n)
                    .field("scheme", c.scheme.as_str())
                    .field("variant", c.variant.as_str())
                    .field("runs", c.runs)
                    .field("wall_ns", c.report.wall_ns)
                    .field(
                        "spans",
                        Json::Arr(c.report.spans.iter().map(span_json).collect()),
                    )
                    .field(
                        "counters",
                        Json::Arr(
                            c.report
                                .counters
                                .iter()
                                .map(|ctr| {
                                    Json::obj()
                                        .field("name", ctr.name.as_str())
                                        .field("total", ctr.total)
                                })
                                .collect(),
                        ),
                    )
                    .field(
                        "values",
                        Json::Arr(
                            c.report
                                .values
                                .iter()
                                .map(|v| {
                                    Json::obj()
                                        .field("name", v.name.as_str())
                                        .field("count", v.count)
                                        .field("sum", finite(v.sum))
                                        .field("min", finite(v.min))
                                        .field("max", finite(v.max))
                                })
                                .collect(),
                        ),
                    )
            })
            .collect();
        Json::obj()
            .field("record", "profile")
            .field("schema", 1u64)
            .field("scenario", self.scenario.as_str())
            .field("cells", Json::Arr(cells))
            .pretty()
    }

    /// Parses a `--profile` JSON document back.
    pub fn parse(text: &str) -> Result<ProfileRecord, ScenarioError> {
        let root = Json::parse(text).map_err(|e| ScenarioError(e.to_string()))?;
        if root.get("record").and_then(Json::as_str) != Some("profile") {
            return Err(ScenarioError(
                "not a profile record (missing record: \"profile\")".into(),
            ));
        }
        let scenario = root
            .get("scenario")
            .and_then(Json::as_str)
            .ok_or_else(|| ScenarioError("profile record: missing 'scenario'".into()))?
            .to_string();
        let mut cells = Vec::new();
        for item in root
            .get("cells")
            .and_then(Json::as_array)
            .ok_or_else(|| ScenarioError("profile record: missing 'cells' array".into()))?
        {
            let num = |key: &str| {
                item.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ScenarioError(format!("profile cell: missing '{key}'")))
            };
            let report = Report {
                wall_ns: item.get("wall_ns").and_then(Json::as_u64).unwrap_or(0),
                spans: item
                    .get("spans")
                    .and_then(Json::as_array)
                    .map(parse_spans)
                    .transpose()?
                    .unwrap_or_default(),
                counters: item
                    .get("counters")
                    .and_then(Json::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .map(|c| {
                                Ok(Counter {
                                    name: c
                                        .get("name")
                                        .and_then(Json::as_str)
                                        .ok_or_else(|| {
                                            ScenarioError("profile counter: missing 'name'".into())
                                        })?
                                        .to_string(),
                                    total: c.get("total").and_then(Json::as_u64).unwrap_or(0),
                                })
                            })
                            .collect::<Result<Vec<_>, ScenarioError>>()
                    })
                    .transpose()?
                    .unwrap_or_default(),
                values: item
                    .get("values")
                    .and_then(Json::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .map(|v| {
                                Ok(ValueStat {
                                    name: v
                                        .get("name")
                                        .and_then(Json::as_str)
                                        .ok_or_else(|| {
                                            ScenarioError("profile value: missing 'name'".into())
                                        })?
                                        .to_string(),
                                    count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
                                    sum: v.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                                    min: v.get("min").and_then(Json::as_f64).unwrap_or(0.0),
                                    max: v.get("max").and_then(Json::as_f64).unwrap_or(0.0),
                                })
                            })
                            .collect::<Result<Vec<_>, ScenarioError>>()
                    })
                    .transpose()?
                    .unwrap_or_default(),
            };
            cells.push(ProfileCell {
                rc: num("rc")?,
                rs: num("rs")?,
                n: num("n")? as usize,
                scheme: item
                    .get("scheme")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ScenarioError("profile cell: missing 'scheme'".into()))?
                    .to_string(),
                variant: item
                    .get("variant")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                runs: item.get("runs").and_then(Json::as_usize).unwrap_or(0),
                report,
            });
        }
        Ok(ProfileRecord { scenario, cells })
    }

    /// All cells merged into one report (the whole-batch view the
    /// self-time table renders).
    pub fn merged(&self) -> Report {
        let mut merged = Report::default();
        for cell in &self.cells {
            merged.merge(&cell.report);
        }
        merged
    }

    /// Fraction of profiled wall time accounted for by phase spans
    /// (children of the top-level scheme spans): the observability
    /// coverage of the instrumentation itself.
    pub fn phase_coverage(&self) -> f64 {
        let merged = self.merged();
        if merged.wall_ns == 0 {
            return 0.0;
        }
        let phases: u64 = merged
            .spans
            .iter()
            .flat_map(|root| root.children.iter().map(|c| c.total_ns))
            .sum();
        phases as f64 / merged.wall_ns as f64
    }

    /// The merged span tree flattened into a perf record (one kernel
    /// per span path, mean self-nanoseconds per entry), so
    /// `profile-diff` can reuse the bench delta machinery.
    pub fn to_bench_record(&self, label: &str) -> BenchRecord {
        let merged = self.merged();
        let mut kernels = Vec::new();
        flatten(&merged.spans, "", &mut |path, node| {
            if node.count > 0 {
                kernels.push(BenchKernel {
                    name: path.to_string(),
                    ns_per_iter: node.self_ns() as f64 / node.count as f64,
                    iters: node.count,
                });
            }
        });
        BenchRecord {
            record: label.to_string(),
            suite: "profile".to_string(),
            kernels,
        }
    }

    /// Renders the sorted self-time table (`scenario profile-report`).
    pub fn render_report(&self) -> String {
        let merged = self.merged();
        let total_runs: usize = self.cells.iter().map(|c| c.runs).sum();
        let mut out = format!(
            "profile: {} — {} profiled run(s), {} cell(s), wall {:.3} s\n",
            self.scenario,
            total_runs,
            self.cells.len(),
            merged.wall_ns as f64 / 1e9,
        );
        let _ = writeln!(
            out,
            "phase self-time coverage: {:.1}% of wall",
            self.phase_coverage() * 100.0
        );
        let mut rows: Vec<(String, &SpanNode)> = Vec::new();
        flatten(&merged.spans, "", &mut |path, node| {
            rows.push((path.to_string(), node));
        });
        rows.sort_by_key(|(_, node)| std::cmp::Reverse(node.self_ns()));
        let wall = merged.wall_ns.max(1) as f64;
        let _ = writeln!(
            out,
            "{:>12} {:>7} {:>12} {:>10} {:>10}  span",
            "self ms", "% wall", "total ms", "count", "max µs"
        );
        for (path, node) in rows {
            let _ = writeln!(
                out,
                "{:>12.3} {:>7.1} {:>12.3} {:>10} {:>10.1}  {}",
                node.self_ns() as f64 / 1e6,
                node.self_ns() as f64 / wall * 100.0,
                node.total_ns as f64 / 1e6,
                node.count,
                node.max_ns as f64 / 1e3,
                path,
            );
        }
        if !merged.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for ctr in &merged.counters {
                let _ = writeln!(out, "{:>16}  {}", ctr.total, ctr.name);
            }
        }
        if !merged.values.is_empty() {
            out.push_str("\nvalues (count / mean / min / max):\n");
            for v in &merged.values {
                let _ = writeln!(
                    out,
                    "{:>12} {:>12.2} {:>12.2} {:>12.2}  {}",
                    v.count,
                    v.mean(),
                    v.min,
                    v.max,
                    v.name,
                );
            }
        }
        out
    }
}

/// Serialization maps non-finite stats (e.g. min/max of an empty
/// stream) to null; parsing maps them back to 0.
fn finite(v: f64) -> Json {
    if v.is_finite() {
        Json::Num(v)
    } else {
        Json::Null
    }
}

fn span_json(node: &SpanNode) -> Json {
    let mut obj = Json::obj()
        .field("name", node.name.as_str())
        .field("total_ns", node.total_ns)
        .field("count", node.count)
        .field("max_ns", node.max_ns);
    if !node.children.is_empty() {
        obj = obj.field(
            "children",
            Json::Arr(node.children.iter().map(span_json).collect()),
        );
    }
    obj
}

fn parse_spans(items: &[Json]) -> Result<Vec<SpanNode>, ScenarioError> {
    items
        .iter()
        .map(|item| {
            Ok(SpanNode {
                name: item
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ScenarioError("profile span: missing 'name'".into()))?
                    .to_string(),
                total_ns: item.get("total_ns").and_then(Json::as_u64).unwrap_or(0),
                count: item.get("count").and_then(Json::as_u64).unwrap_or(0),
                max_ns: item.get("max_ns").and_then(Json::as_u64).unwrap_or(0),
                children: item
                    .get("children")
                    .and_then(Json::as_array)
                    .map(parse_spans)
                    .transpose()?
                    .unwrap_or_default(),
            })
        })
        .collect()
}

/// Depth-first walk with `/`-joined span paths.
fn flatten<'a>(spans: &'a [SpanNode], prefix: &str, f: &mut impl FnMut(&str, &'a SpanNode)) {
    for node in spans {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix}/{}", node.name)
        };
        f(&path, node);
        flatten(&node.children, &path, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileRecord {
        ProfileRecord {
            scenario: "sample".into(),
            cells: vec![ProfileCell {
                rc: 60.0,
                rs: 40.0,
                n: 20,
                scheme: "FLOOR".into(),
                variant: "defaults".into(),
                runs: 2,
                report: Report {
                    wall_ns: 1_000_000,
                    spans: vec![SpanNode {
                        name: "floor.run".into(),
                        total_ns: 990_000,
                        count: 2,
                        max_ns: 500_000,
                        children: vec![
                            SpanNode {
                                name: "floor.plan".into(),
                                total_ns: 600_000,
                                count: 200,
                                max_ns: 9_000,
                                children: Vec::new(),
                            },
                            SpanNode {
                                name: "floor.motion".into(),
                                total_ns: 350_000,
                                count: 200,
                                max_ns: 4_000,
                                children: Vec::new(),
                            },
                        ],
                    }],
                    counters: vec![Counter {
                        name: "cov.restamps".into(),
                        total: 420,
                    }],
                    values: vec![ValueStat {
                        name: "cov.dirty".into(),
                        count: 10,
                        sum: 55.0,
                        min: 1.0,
                        max: 10.0,
                    }],
                },
            }],
        }
    }

    #[test]
    fn json_round_trips() {
        let record = sample();
        let text = record.to_json_string();
        let parsed = ProfileRecord::parse(&text).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn parse_rejects_non_profiles() {
        assert!(ProfileRecord::parse("{\"record\": \"bench\"}").is_err());
        assert!(ProfileRecord::parse("not json").is_err());
    }

    #[test]
    fn report_sorts_by_self_time() {
        let text = sample().render_report();
        let plan = text.find("floor.run/floor.plan").unwrap();
        let motion = text.find("floor.run/floor.motion").unwrap();
        let root = text.find(" floor.run\n").unwrap();
        assert!(plan < motion && motion < root, "{text}");
        assert!(text.contains("phase self-time coverage: 95.0% of wall"));
        assert!(text.contains("cov.restamps"));
        assert!(text.contains("cov.dirty"));
    }

    #[test]
    fn phase_coverage_is_children_over_wall() {
        assert!((sample().phase_coverage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn bench_record_uses_self_ns_per_entry() {
        let bench = sample().to_bench_record("a");
        let plan = bench.kernel("floor.run/floor.plan").unwrap();
        assert_eq!(plan.iters, 200);
        assert!((plan.ns_per_iter - 3_000.0).abs() < 1e-9);
        let root = bench.kernel("floor.run").unwrap();
        // self = 990k - 950k = 40k over 2 entries
        assert!((root.ns_per_iter - 20_000.0).abs() < 1e-9);
    }
}
