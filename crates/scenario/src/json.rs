//! A minimal, deterministic JSON writer.
//!
//! Batch results are exported as JSON without serde (no crates.io
//! access). Output is fully deterministic: object members keep
//! insertion order, floats print in their shortest round-trippable
//! form (`{:?}`), and there is no whitespace variation — the
//! determinism tests compare documents byte-for-byte.

use std::fmt::Write as _;

/// A JSON value being built for serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer; keeps `u64` values above `i64::MAX` (e.g.
    /// environment seeds) exact instead of wrapping negative.
    UInt(u64),
    /// A finite float.
    ///
    /// Serialization panics on NaN/infinity — callers map those to
    /// [`Json::Null`] explicitly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object builder starting empty.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a member to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("field() requires an object"),
        }
        self
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                assert!(f.is_finite(), "JSON numbers must be finite, got {f}");
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    let _ = write!(out, "\"{key}\": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::UInt(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::UInt(i as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let doc = Json::obj()
            .field("name", "x\"y")
            .field("n", 3usize)
            .field("ok", true)
            .field("missing", Json::Null)
            .field("xs", vec![1.5f64, 2.0])
            .field("empty", Json::Arr(vec![]))
            .field("t", Json::obj().field("k", Option::<f64>::None));
        let text = doc.pretty();
        assert!(text.contains("\"name\": \"x\\\"y\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.contains("\"xs\": [\n    1.5,\n    2.0\n  ]"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"k\": null"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn u64_values_above_i64_max_stay_exact() {
        let doc = Json::obj().field("seed", u64::MAX);
        assert!(doc.pretty().contains("\"seed\": 18446744073709551615"));
    }

    #[test]
    fn floats_keep_shortest_roundtrip_form() {
        assert_eq!(Json::Num(0.1).pretty(), "0.1\n");
        assert_eq!(Json::Num(42.0).pretty(), "42.0\n");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_floats_rejected() {
        let _ = Json::Num(f64::NAN).pretty();
    }
}
