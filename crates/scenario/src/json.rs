//! A minimal, deterministic JSON reader/writer.
//!
//! Batch results are exported as JSON without serde (no crates.io
//! access). Output is fully deterministic: object members keep
//! insertion order, floats print in their shortest round-trippable
//! form (`{:?}`), and there is no whitespace variation — the
//! determinism tests compare documents byte-for-byte.
//!
//! [`Json::parse`] reads documents back (for batch resume and
//! `scenario diff`). Numbers without `.`/`e` parse as integers and
//! floats parse exactly from their shortest round-trippable form, so
//! parse → serialize reproduces a document byte-for-byte.

use std::fmt::Write as _;

/// A JSON value being built for serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer; keeps `u64` values above `i64::MAX` (e.g.
    /// environment seeds) exact instead of wrapping negative.
    UInt(u64),
    /// A finite float.
    ///
    /// Serialization panics on NaN/infinity — callers map those to
    /// [`Json::Null`] explicitly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A JSON parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An object builder starting empty.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let chars: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let value = parse_value(&chars, &mut pos)?;
        skip_ws(&chars, &mut pos);
        if pos != chars.len() {
            return Err(JsonError(format!(
                "trailing characters at offset {pos} after value"
            )));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as f64 (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The integer payload as u64, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The integer payload as usize, if non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Appends a member to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("field() requires an object"),
        }
        self
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace (NDJSON event
    /// streams: one value per line). No trailing newline.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{key}\":");
                    value.write_compact(out);
                }
                out.push('}');
            }
            // scalars render identically in both modes
            other => other.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(f) => {
                assert!(f.is_finite(), "JSON numbers must be finite, got {f}");
                let _ = write!(out, "{f:?}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    let _ = write!(out, "\"{key}\": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn jerr<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), JsonError> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        jerr(format!("expected '{c}' at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(chars, pos);
    let Some(&c) = chars.get(*pos) else {
        return jerr("unexpected end of document");
    };
    match c {
        '{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(chars, pos);
                let Json::Str(key) = parse_string(chars, pos)? else {
                    unreachable!()
                };
                expect(chars, pos, ':')?;
                members.push((key, parse_value(chars, pos)?));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return jerr(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return jerr(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        '"' => parse_string(chars, pos),
        _ => {
            let start = *pos;
            while *pos < chars.len()
                && matches!(chars[*pos], '-' | '+' | '.' | '0'..='9' | 'e' | 'E' | 'a'..='z')
            {
                *pos += 1;
            }
            let token: String = chars[start..*pos].iter().collect();
            match token.as_str() {
                "null" => Ok(Json::Null),
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                t if !t.contains(['.', 'e', 'E']) => {
                    if let Ok(i) = t.parse::<i64>() {
                        Ok(Json::Int(i))
                    } else if let Ok(u) = t.parse::<u64>() {
                        Ok(Json::UInt(u))
                    } else {
                        jerr(format!("cannot parse number '{t}'"))
                    }
                }
                t => match t.parse::<f64>() {
                    Ok(f) if f.is_finite() => Ok(Json::Num(f)),
                    _ => jerr(format!("cannot parse value '{t}'")),
                },
            }
        }
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<Json, JsonError> {
    if chars.get(*pos) != Some(&'"') {
        return jerr(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut s = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(Json::Str(s)),
            '\\' => {
                let Some(&esc) = chars.get(*pos) else {
                    return jerr("dangling escape");
                };
                *pos += 1;
                match esc {
                    '"' => s.push('"'),
                    '\\' => s.push('\\'),
                    '/' => s.push('/'),
                    'n' => s.push('\n'),
                    't' => s.push('\t'),
                    'r' => s.push('\r'),
                    'u' => {
                        let hex: String = chars.get(*pos..*pos + 4).unwrap_or(&[]).iter().collect();
                        let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32)
                        else {
                            return jerr(format!("bad unicode escape '\\u{hex}'"));
                        };
                        *pos += 4;
                        s.push(c);
                    }
                    other => return jerr(format!("unsupported escape '\\{other}'")),
                }
            }
            other => s.push(other),
        }
    }
    jerr("unterminated string")
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::UInt(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::UInt(i as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Num(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map_or(Json::Null, Into::into)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_nested_structures() {
        let doc = Json::obj()
            .field("name", "x\"y")
            .field("n", 3usize)
            .field("ok", true)
            .field("missing", Json::Null)
            .field("xs", vec![1.5f64, 2.0])
            .field("empty", Json::Arr(vec![]))
            .field("t", Json::obj().field("k", Option::<f64>::None));
        let text = doc.pretty();
        assert!(text.contains("\"name\": \"x\\\"y\""));
        assert!(text.contains("\"n\": 3"));
        assert!(text.contains("\"xs\": [\n    1.5,\n    2.0\n  ]"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.contains("\"k\": null"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn u64_values_above_i64_max_stay_exact() {
        let doc = Json::obj().field("seed", u64::MAX);
        assert!(doc.pretty().contains("\"seed\": 18446744073709551615"));
    }

    #[test]
    fn floats_keep_shortest_roundtrip_form() {
        assert_eq!(Json::Num(0.1).pretty(), "0.1\n");
        assert_eq!(Json::Num(42.0).pretty(), "42.0\n");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_floats_rejected() {
        let _ = Json::Num(f64::NAN).pretty();
    }

    #[test]
    fn parse_roundtrips_serialized_documents() {
        let doc = Json::obj()
            .field("name", "x\"y\nz")
            .field("n", 3usize)
            .field("neg", -7i64)
            .field("big", u64::MAX)
            .field("f", 0.30000000000000004)
            .field("whole", 42.0)
            .field("ok", true)
            .field("missing", Json::Null)
            .field("xs", vec![1.5f64, 2.0])
            .field("empty", Json::Arr(vec![]))
            .field("t", Json::obj().field("k", Option::<f64>::None));
        let text = doc.pretty();
        let parsed = Json::parse(&text).unwrap();
        // parse -> serialize is byte-identical (resume depends on it)
        assert_eq!(parsed.pretty(), text);
        assert_eq!(parsed.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("big").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(parsed.get("f").unwrap().as_f64(), Some(0.30000000000000004));
        assert_eq!(parsed.get("missing"), Some(&Json::Null));
        assert_eq!(parsed.get("xs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn parse_distinguishes_ints_and_floats() {
        let v = Json::parse("{\"i\": 3, \"f\": 3.0, \"e\": 1e3}").unwrap();
        assert_eq!(v.get("i"), Some(&Json::Int(3)));
        assert_eq!(v.get("f"), Some(&Json::Num(3.0)));
        assert_eq!(v.get("e"), Some(&Json::Num(1000.0)));
        assert_eq!(v.get("i").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn parse_reports_errors() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nope").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite float rejected");
    }

    #[test]
    fn parse_handles_escapes() {
        let v = Json::parse("{\"s\": \"a\\\"b\\\\c\\nd\\u0041\"}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\ndA"));
    }
}
