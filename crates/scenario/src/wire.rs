//! Wire framing for the `scenario serve` Unix-socket protocol.
//!
//! Frames are minimal HTTP/1.1: a request is
//!
//! ```text
//! POST /api HTTP/1.1\r\n
//! Content-Length: <n>\r\n
//! \r\n
//! <n bytes of Request JSON>
//! ```
//!
//! and a response is
//!
//! ```text
//! HTTP/1.1 <status> <reason>\r\n
//! Content-Type: application/json\r\n
//! Content-Length: <n>\r\n
//! \r\n
//! <n bytes of Response JSON>
//! ```
//!
//! except for [`Request::Subscribe`], which is answered with
//! `Content-Type: application/x-ndjson`, no `Content-Length`, and a
//! stream of event lines until the job finishes and the daemon closes
//! the connection. One request per connection; headers are bounded by
//! [`MAX_HEADER`] and bodies by [`MAX_BODY`] — oversized frames are
//! rejected before the body is read, truncated frames surface as
//! [`ApiError::Protocol`]. The framing is hand-rolled (and
//! curl-compatible in spirit) so the daemon works with zero
//! dependencies and offline.

use crate::api::{ApiError, Request, Response};
use crate::json::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Largest accepted frame body (the JSON payload), in bytes.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Largest accepted header block (request/status line included), in
/// bytes.
pub const MAX_HEADER: usize = 8 * 1024;

/// The canonical reason phrase for the status codes the API emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one request frame.
pub fn write_request(w: &mut impl Write, request: &Request) -> Result<(), ApiError> {
    let body = request.to_json().compact();
    write!(
        w,
        "POST /api HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )?;
    w.flush()?;
    Ok(())
}

/// Reads one request frame ([`write_request`]'s inverse).
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ApiError> {
    let (first, headers) = read_head(r)?;
    if !first.starts_with("POST ") {
        return Err(ApiError::Protocol(format!(
            "expected 'POST <path> HTTP/1.1' request line, got '{first}'"
        )));
    }
    let body = read_sized_body(r, &headers)?;
    Request::from_json(&parse_body(&body)?)
}

/// Writes one response frame. The status code derives from the
/// response itself ([`ApiError::http_status`] for errors, 200
/// otherwise).
pub fn write_response(w: &mut impl Write, response: &Response) -> Result<(), ApiError> {
    let status = match response {
        Response::Error { error } => error.http_status(),
        _ => 200,
    };
    let body = response.to_json().compact();
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        reason_phrase(status),
        body.len(),
        body
    )?;
    w.flush()?;
    Ok(())
}

/// Writes the header block opening an NDJSON subscription stream;
/// event lines follow until the server closes the connection.
pub fn write_ndjson_header(w: &mut impl Write) -> Result<(), ApiError> {
    write!(
        w,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n"
    )?;
    w.flush()?;
    Ok(())
}

/// Reads one response frame ([`write_response`]'s inverse). Rejects
/// NDJSON streams — those are read via [`Client::subscribe`].
pub fn read_response(r: &mut impl BufRead) -> Result<Response, ApiError> {
    let (first, headers) = read_head(r)?;
    if !first.starts_with("HTTP/1.1 ") {
        return Err(ApiError::Protocol(format!(
            "expected 'HTTP/1.1 <status>' status line, got '{first}'"
        )));
    }
    if content_type(&headers).is_some_and(|t| t.contains("ndjson")) {
        return Err(ApiError::Protocol(
            "unexpected NDJSON stream (use subscribe)".into(),
        ));
    }
    let body = read_sized_body(r, &headers)?;
    Response::from_json(&parse_body(&body)?)
}

/// Reads the request/status line plus headers, enforcing
/// [`MAX_HEADER`]. Returns the first line and the header lines.
fn read_head(r: &mut impl BufRead) -> Result<(String, Vec<String>), ApiError> {
    let mut total = 0usize;
    let mut first = String::new();
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        let n = r
            .read_line(&mut line)
            .map_err(|e| ApiError::Protocol(format!("reading frame head: {e}")))?;
        if n == 0 {
            return Err(ApiError::Protocol("truncated frame head".into()));
        }
        total += n;
        if total > MAX_HEADER {
            return Err(ApiError::Protocol(format!(
                "frame head exceeds {MAX_HEADER} bytes"
            )));
        }
        let line = line.trim_end_matches(['\r', '\n']).to_string();
        if first.is_empty() {
            if line.is_empty() {
                return Err(ApiError::Protocol("empty request line".into()));
            }
            first = line;
        } else if line.is_empty() {
            return Ok((first, headers));
        } else {
            headers.push(line);
        }
    }
}

/// Case-insensitive header lookup.
fn header<'a>(headers: &'a [String], name: &str) -> Option<&'a str> {
    headers.iter().find_map(|line| {
        let (key, value) = line.split_once(':')?;
        key.trim().eq_ignore_ascii_case(name).then(|| value.trim())
    })
}

fn content_type(headers: &[String]) -> Option<&str> {
    header(headers, "Content-Type")
}

/// Reads a `Content-Length`-delimited body, enforcing [`MAX_BODY`]
/// before any body byte is consumed.
fn read_sized_body(r: &mut impl BufRead, headers: &[String]) -> Result<Vec<u8>, ApiError> {
    let length: usize = header(headers, "Content-Length")
        .ok_or_else(|| ApiError::Protocol("missing Content-Length".into()))?
        .parse()
        .map_err(|_| ApiError::Protocol("unparseable Content-Length".into()))?;
    if length > MAX_BODY {
        return Err(ApiError::Protocol(format!(
            "frame body of {length} bytes exceeds the {MAX_BODY}-byte limit"
        )));
    }
    let mut body = vec![0u8; length];
    r.read_exact(&mut body)
        .map_err(|e| ApiError::Protocol(format!("truncated frame body: {e}")))?;
    Ok(body)
}

fn parse_body(body: &[u8]) -> Result<Json, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::Protocol("frame body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ApiError::Protocol(format!("frame body: {e}")))
}

/// A blocking client for the daemon's Unix socket: one connection per
/// request, matching the one-request-per-connection framing.
#[derive(Debug, Clone)]
pub struct Client {
    socket: PathBuf,
}

impl Client {
    /// A client targeting the daemon socket at `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> Client {
        Client {
            socket: socket.into(),
        }
    }

    /// The socket path this client targets.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    fn connect(&self) -> Result<UnixStream, ApiError> {
        UnixStream::connect(&self.socket).map_err(|e| {
            ApiError::Io(format!(
                "connecting to {}: {e} (is `scenario serve` running?)",
                self.socket.display()
            ))
        })
    }

    /// Sends one request and reads the single response.
    pub fn request(&self, request: &Request) -> Result<Response, ApiError> {
        let stream = self.connect()?;
        write_request(&mut &stream, request)?;
        read_response(&mut BufReader::new(stream))
    }

    /// Sends one request with a read timeout; `Err(Io)` on expiry.
    /// Used by liveness polls that must not hang on a wedged daemon.
    pub fn request_timeout(
        &self,
        request: &Request,
        timeout: Duration,
    ) -> Result<Response, ApiError> {
        let stream = self.connect()?;
        stream.set_read_timeout(Some(timeout))?;
        write_request(&mut &stream, request)?;
        read_response(&mut BufReader::new(stream))
    }

    /// Opens a subscription stream for `job`: sends the request and, on
    /// a `200` NDJSON answer, returns an iterator over event lines
    /// (ending when the daemon closes the stream). A JSON answer is
    /// decoded and returned as the error it carries.
    pub fn subscribe(&self, job: &str) -> Result<Subscription, ApiError> {
        let stream = self.connect()?;
        write_request(
            &mut &stream,
            &Request::Subscribe {
                job: job.to_string(),
            },
        )?;
        let mut reader = BufReader::new(stream);
        let (first, headers) = read_head(&mut reader)?;
        if !first.starts_with("HTTP/1.1 ") {
            return Err(ApiError::Protocol(format!(
                "expected status line, got '{first}'"
            )));
        }
        if content_type(&headers).is_some_and(|t| t.contains("ndjson")) {
            return Ok(Subscription { reader });
        }
        let body = read_sized_body(&mut reader, &headers)?;
        match Response::from_json(&parse_body(&body)?)? {
            Response::Error { error } => Err(error),
            other => Err(ApiError::Protocol(format!(
                "unexpected subscribe answer: {:?}",
                other.to_json().compact()
            ))),
        }
    }
}

/// An open NDJSON subscription; iterate to receive event lines.
#[derive(Debug)]
pub struct Subscription {
    reader: BufReader<UnixStream>,
}

impl Iterator for Subscription {
    type Item = Result<String, ApiError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Ok(line.trim_end_matches(['\r', '\n']).to_string())),
            Err(e) => Some(Err(ApiError::Io(format!("subscription stream: {e}")))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{JobInfo, JobState};
    use std::io::Cursor;

    #[test]
    fn request_frames_round_trip() {
        let request = Request::Submit {
            spec_toml: "name = \"smoke\"\nduration = 100.0\n".into(),
        };
        let mut frame = Vec::new();
        write_request(&mut frame, &request).unwrap();
        let text = String::from_utf8(frame.clone()).unwrap();
        assert!(text.starts_with("POST /api HTTP/1.1\r\nContent-Length: "));
        let parsed = read_request(&mut Cursor::new(frame)).unwrap();
        assert_eq!(parsed, request);
    }

    #[test]
    fn response_frames_round_trip_with_status() {
        let response = Response::Job {
            job: JobInfo {
                digest: "ab".into(),
                scenario: "smoke".into(),
                state: JobState::Done,
                total_runs: 8,
                completed_runs: 8,
            },
        };
        let mut frame = Vec::new();
        write_response(&mut frame, &response).unwrap();
        assert!(String::from_utf8(frame.clone())
            .unwrap()
            .starts_with("HTTP/1.1 200 OK\r\n"));
        assert_eq!(read_response(&mut Cursor::new(frame)).unwrap(), response);

        let error = Response::Error {
            error: ApiError::QueueFull { capacity: 2 },
        };
        let mut frame = Vec::new();
        write_response(&mut frame, &error).unwrap();
        assert!(String::from_utf8(frame.clone())
            .unwrap()
            .starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert_eq!(read_response(&mut Cursor::new(frame)).unwrap(), error);
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let head = format!(
            "POST /api HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = read_request(&mut Cursor::new(head.into_bytes())).unwrap_err();
        assert_eq!(err.code(), "protocol");
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut head = String::from("POST /api HTTP/1.1\r\n");
        while head.len() <= MAX_HEADER {
            head.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let err = read_request(&mut Cursor::new(head.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("head exceeds"));
    }

    #[test]
    fn truncated_frames_are_protocol_errors() {
        // head cut off mid-header
        let err =
            read_request(&mut Cursor::new(b"POST /api HTTP/1.1\r\nContent-".to_vec())).unwrap_err();
        assert_eq!(err.code(), "protocol");
        // body shorter than Content-Length
        let err = read_request(&mut Cursor::new(
            b"POST /api HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"request\"".to_vec(),
        ))
        .unwrap_err();
        assert!(err.to_string().contains("truncated frame body"));
        // empty connection
        let err = read_request(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.code(), "protocol");
    }

    #[test]
    fn malformed_bodies_are_protocol_errors() {
        let frame = b"POST /api HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!".to_vec();
        assert_eq!(
            read_request(&mut Cursor::new(frame)).unwrap_err().code(),
            "protocol"
        );
        let frame = b"GET /api HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        assert!(read_request(&mut Cursor::new(frame))
            .unwrap_err()
            .to_string()
            .contains("POST"));
    }

    #[test]
    fn headers_are_case_insensitive() {
        let frame =
            b"POST /api HTTP/1.1\r\ncontent-length: 18\r\n\r\n{\"request\":\"ping\"}".to_vec();
        assert_eq!(
            read_request(&mut Cursor::new(frame)).unwrap(),
            Request::Ping
        );
    }
}
